"""Table V — severity of bugs vs. number detected by RABIT.

Paper (modified RABIT): Low 3/1, Medium-Low 1/1, Medium-High 6/4,
High 6/6 — 12 of 16 overall.  The bench regenerates the table from the
campaign and asserts every row.  The timed kernel is one representative
bug run end to end (fresh deck, mutation, monitored execution).
"""


from repro.analysis.metrics import severity_rows
from repro.analysis.report import format_severity_table
from repro.faults.campaign import CAMPAIGN_BUGS, run_bug

PAPER_ROWS = {
    "low": (3, 1),
    "medium_low": (1, 1),
    "medium_high": (6, 4),
    "high": (6, 6),
}


def test_table5_regenerates(emit, campaign_result, benchmark):
    rows = severity_rows(campaign_result, "modified")
    rendered = format_severity_table(rows)
    emit("table5_severity", rendered)

    for severity, total, detected in rows:
        assert (total, detected) == PAPER_ROWS[severity], severity

    assert campaign_result.detected_count("modified") == 12

    # Timed kernel: Bug A (H1) end to end under the modified revision.
    bug_a = next(b for b in CAMPAIGN_BUGS if b.bug_id == "H1")
    outcome = benchmark.pedantic(
        lambda: run_bug(bug_a, "modified"), rounds=3, iterations=1
    )
    assert outcome.detected
    benchmark.extra_info["table_v"] = {s: f"{d}/{t}" for s, t, d in rows}
