"""Extension — the §V-B proximity-sensor device class.

Not a paper table: the paper *proposes* "incorporating sensors, which
could be treated as a new device class ... to respond to sensor inputs
that indicate a robot arm is approaching the area that is occupied".
This bench implements the proposal and measures it: the S1 rule vetoes
moves into/through an occupied zone, costs nothing when the zone is
empty, and reproduces the Berlinguette Lab's false-alarm complaint when
the sensor is flaky.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.errors import SafetyViolation
from repro.core.sensor_rule import make_proximity_rule
from repro.devices.sensor import ProximitySensor
from repro.geometry.shapes import Cuboid
from repro.lab.hein import build_hein_deck, make_hein_rabit

ZONE = Cuboid((0.2, -0.2, 0.0), (0.5, 0.2, 0.5), name="shared_zone")


def _wired_with_sensor():
    deck = build_hein_deck()
    rabit, proxies, _ = make_hein_rabit(deck)
    sensor = ProximitySensor("curtain", zones={"ur3e": ZONE})
    deck.world.add_device(sensor)
    rabit.devices["curtain"] = sensor
    rabit.rulebase.add(
        make_proximity_rule({"curtain": sensor}, robots={"ur3e": deck.ur3e})
    )
    rabit.initialize()
    return deck, rabit, proxies, sensor


def test_sensor_extension(emit, benchmark):
    rows = []

    # Empty zone: the grid move (inside the zone) is allowed.
    deck, rabit, proxies, sensor = _wired_with_sensor()
    proxies["ur3e"].move_to_location("grid_a1_safe")
    assert rabit.alert_count == 0
    rows.append(["zone empty", "move into zone", "allowed"])

    # Occupied zone: the same move is vetoed by S1, preemptively.
    deck, rabit, proxies, sensor = _wired_with_sensor()
    sensor.person_enters()
    with pytest.raises(SafetyViolation) as excinfo:
        proxies["ur3e"].move_to_location("grid_a1_safe")
    assert excinfo.value.alert.rule_id == "S1"
    assert deck.world.damage_log == ()
    rows.append(["zone occupied", "move into zone", f"vetoed: {excinfo.value.alert}"])

    # Flaky sensor: stuck-on reading = the false alarms that made the
    # Berlinguette Lab abandon its sensors.
    deck, rabit, proxies, sensor = _wired_with_sensor()
    sensor.stick_reading(True)
    with pytest.raises(SafetyViolation):
        proxies["ur3e"].move_to_location("grid_a1_safe")
    rows.append(["sensor stuck on (zone empty)", "move into zone", "false alarm (the §V-B trade-off)"])

    rendered = format_table(
        ["sensor state", "command", "outcome"],
        rows,
        title="Extension: proximity sensors as a fifth device class (§V-B)",
    )
    emit("extension_sensor", rendered)

    # Timed kernel: the marginal cost of the S1 check on an allowed move.
    deck, rabit, proxies, sensor = _wired_with_sensor()

    def guarded_move_pair():
        proxies["ur3e"].move_to_location("grid_a1_safe")
        proxies["ur3e"].move_to_location([0.1, -0.3, 0.3])

    benchmark(guarded_move_pair)
    benchmark.extra_info["rule"] = "S1 (runtime-registered custom rule)"
