"""Ablation — time vs. space multiplexing throughput.

§IV presents space multiplexing as the policy that keeps both arms
moving concurrently ("while pushing for more concurrency in their
experiments").  This ablation runs the dual-arm Fig. 5 workload, splits
the traced commands per arm, and compares the virtual makespan under the
two policies — the quantitative version of the paper's qualitative
trade-off.  Safety is identical (both policies stop Bug B; see
``test_multiplexing``); only throughput differs.
"""


from repro.analysis.concurrency import compare_makespans
from repro.analysis.report import format_table
from repro.lab.workflows import build_testbed_workflow, run_workflow
from repro.testbed.deck import (
    attach_space_multiplexing,
    build_testbed_deck,
    make_testbed_rabit,
)


def test_multiplexing_throughput(emit, benchmark):
    # Record the dual-arm workload once (under space multiplexing so the
    # trace itself is legal for the concurrent policy too).
    deck = build_testbed_deck(noise_sigma=0.003)
    rabit, proxies, trace = make_testbed_rabit(deck)
    attach_space_multiplexing(rabit, deck)
    result = run_workflow(build_testbed_workflow(proxies))
    assert result.completed and rabit.alert_count == 0

    comparison = compare_makespans(trace, ("viperx", "ned2"), handoffs=1)

    assert comparison.per_arm_busy["viperx"] > comparison.per_arm_busy["ned2"] > 0
    assert comparison.time_multiplexed > comparison.space_multiplexed
    assert comparison.speedup > 1.1  # concurrency must actually pay

    rows = [
        ["viperx busy time", f"{comparison.per_arm_busy['viperx']:.1f} s", ""],
        ["ned2 busy time", f"{comparison.per_arm_busy['ned2']:.1f} s", ""],
        ["handoff cost (sleep/wake)", f"{comparison.handoff_seconds:.1f} s", "time multiplexing only"],
        [
            "makespan, time multiplexing",
            f"{comparison.time_multiplexed:.1f} s",
            "arms serialized",
        ],
        [
            "makespan, space multiplexing",
            f"{comparison.space_multiplexed:.1f} s",
            "arms concurrent",
        ],
        ["speedup from concurrency", f"{comparison.speedup:.2f}x", "the §IV motivation"],
    ]
    rendered = format_table(
        ["quantity", "value", "note"],
        rows,
        title="Ablation: time vs. space multiplexing throughput (Fig. 5 workload)",
    )
    emit("ablation_multiplexing", rendered)

    benchmark(lambda: compare_makespans(trace, ("viperx", "ned2")))
    benchmark.extra_info["speedup"] = round(comparison.speedup, 2)
