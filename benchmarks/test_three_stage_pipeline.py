"""§II / Table I as a process — the three-stage validation pipeline.

Measures what the staging methodology buys: a defective workflow edit is
rejected at the simulator stage with zero risk exposure, while the
counterfactual (running the same defect straight in production with the
monitor in fail-safe logging mode) accrues damage weighted by the
production damage cost.
"""


from repro.analysis.report import format_table
from repro.lab.hein import build_hein_deck
from repro.lab.pipeline import ThreeStageValidator
from repro.lab.stage import STAGE_PROFILES, Stage
from repro.lab.workflows import build_solubility_workflow, run_workflow


def _bad_edit(deck):
    deck.world.locations.get("grid_a1").set_coord("ur3e", [0.30, -0.05, 0.02])


def test_three_stage_pipeline(emit, benchmark):
    validator = ThreeStageValidator()

    safe = validator.validate(build_solubility_workflow)
    assert safe.promoted_to_production and safe.total_risk_exposure == 0.0

    defective = validator.validate(build_solubility_workflow, mutate_deck=_bad_edit)
    assert defective.rejected_at is Stage.SIMULATOR
    assert defective.total_risk_exposure == 0.0

    # Counterfactual: the same defect pushed straight to production with
    # no monitor at all (the pre-RABIT world the paper motivates).
    deck = build_hein_deck()
    _bad_edit(deck)
    from repro.core.interceptor import instrument

    proxies, _ = instrument(deck.devices, rabit=None)
    run_workflow(build_solubility_workflow(proxies))
    unmonitored_damage = len(deck.world.damage_log)
    production_cost = STAGE_PROFILES[Stage.PRODUCTION].damage_cost
    counterfactual_risk = unmonitored_damage * production_cost
    assert unmonitored_damage > 0

    rows = [
        ["safe workflow", " -> ".join(o.describe() for o in safe.outcomes), "0"],
        [
            "defective edit (staged)",
            defective.outcomes[0].describe(),
            f"{defective.total_risk_exposure:g}",
        ],
        [
            "defective edit (straight to production, no monitor)",
            f"{unmonitored_damage} damage event(s)",
            f"{counterfactual_risk:g}",
        ],
    ]
    rendered = format_table(
        ["candidate change", "pipeline outcome", "risk exposure"],
        rows,
        title="Three-stage validation pipeline (Table I as a process)",
    )
    emit("three_stage_pipeline", rendered)

    # Timed kernel: one simulator-stage gate check of the safe workflow.
    sim_only = ThreeStageValidator(stages=(Stage.SIMULATOR,))
    result = benchmark.pedantic(
        lambda: sim_only.validate(build_solubility_workflow), rounds=2, iterations=1
    )
    assert result.promoted_to_production
    benchmark.extra_info["risk_avoided"] = counterfactual_risk
