#!/usr/bin/env python3
"""Gate the perf trend log against a committed baseline.

``benchmarks/results/trend.jsonl`` accumulates one JSON line per metric
per benchmark run (see ``benchmarks/conftest.py``); this script compares
the **latest** record of each gated metric against
``benchmarks/trend_baseline.json`` and exits nonzero on a regression —
so a PR that quietly halves the collision-kernel speedup or doubles the
guard latency fails CI instead of merging a slow build.

Baseline entries name a dotted field path inside the metric record, a
direction, a reference value, and a tolerance:

- ``higher`` — regression when ``value < baseline * (1 - tolerance)``;
- ``lower``  — regression when ``value > baseline * (1 + tolerance)``.

Deterministic metrics (virtual-clock latency, rule-visit ratios) carry
the strict default tolerance (20 %); machine-dependent wall-clock
speedups carry wider tolerances so the gate only fires on collapse, not
on runner jitter.  Records stamped ``"gated": false`` (e.g. the Monte
Carlo sweep on starved 2-core runners) are skipped.

Usage::

    python benchmarks/check_trend.py              # gate against baseline
    python benchmarks/check_trend.py --write-baseline   # refresh values
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
DEFAULT_TREND = HERE / "results" / "trend.jsonl"
DEFAULT_BASELINE = HERE / "trend_baseline.json"

#: Strict default for deterministic metrics.
DEFAULT_TOLERANCE = 0.20


def load_latest(trend_path: Path) -> dict:
    """Latest record per metric (later lines win)."""
    latest: dict = {}
    with trend_path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"error: {trend_path}:{lineno} is not valid JSON ({exc.msg})"
                )
            metric = record.get("metric")
            if metric:
                latest[metric] = record
    return latest


def dig(record: dict, path: str):
    """Resolve a dotted field path, or None when absent."""
    value = record
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check(gates: list, latest: dict) -> list:
    """All failures as human-readable strings (empty = pass)."""
    failures = []
    for gate in gates:
        metric, field = gate["metric"], gate["field"]
        record = latest.get(metric)
        if record is None:
            failures.append(
                f"{metric}: no record in the trend log (benchmark not run?)"
            )
            continue
        if record.get("gated") is False:
            print(f"  skip  {metric}.{field} (record marked gated: false)")
            continue
        value = dig(record, field)
        if not isinstance(value, (int, float)):
            failures.append(f"{metric}.{field}: missing or non-numeric ({value!r})")
            continue
        baseline = gate["baseline"]
        tolerance = gate.get("tolerance", DEFAULT_TOLERANCE)
        if gate["direction"] == "higher":
            floor = baseline * (1.0 - tolerance)
            ok = value >= floor
            bound = f">= {floor:.4g}"
        else:
            ceiling = baseline * (1.0 + tolerance)
            ok = value <= ceiling
            bound = f"<= {ceiling:.4g}"
        status = "ok" if ok else "FAIL"
        print(
            f"  {status:4}  {metric}.{field} = {value:.4g} "
            f"(baseline {baseline:.4g}, need {bound})"
        )
        if not ok:
            failures.append(
                f"{metric}.{field} regressed: {value:.4g} vs baseline "
                f"{baseline:.4g} (tolerance {tolerance:.0%})"
            )
    return failures


def write_baseline(gates: list, latest: dict, baseline_path: Path) -> int:
    """Refresh every gate's baseline value from the current trend log."""
    refreshed = 0
    for gate in gates:
        record = latest.get(gate["metric"])
        if record is None or record.get("gated") is False:
            continue
        value = dig(record, gate["field"])
        if isinstance(value, (int, float)):
            gate["baseline"] = round(float(value), 6)
            refreshed += 1
    baseline_path.write_text(json.dumps({"gates": gates}, indent=2) + "\n")
    print(f"wrote {refreshed}/{len(gates)} refreshed baselines to {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trend", type=Path, default=DEFAULT_TREND)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="refresh baseline values from the current trend log and exit",
    )
    args = parser.parse_args(argv)

    if not args.trend.exists():
        print(f"error: trend log {args.trend} not found (run the benchmarks first)",
              file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2

    gates = json.loads(args.baseline.read_text())["gates"]
    latest = load_latest(args.trend)

    if args.write_baseline:
        return write_baseline(gates, latest, args.baseline)

    print(f"perf trend gate: {len(gates)} gated fields, trend log {args.trend}")
    failures = check(gates, latest)
    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all perf trend gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
