"""§V-B — generalizing RABIT to the Berlinguette Lab.

Regenerates the device-categorization mapping (every device fits the four
types), runs a spray-coating workflow under the unchanged *general*
rulebase with zero alerts, and confirms general rules still fire on
demand in the new lab.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.errors import SafetyViolation
from repro.lab.berlinguette import (
    build_berlinguette_deck,
    build_spray_coating_workflow,
    make_berlinguette_rabit,
)
from repro.lab.workflows import run_workflow

PAPER_MAPPING = {
    "ur5e": "robot_arm",
    "dosing_device": "dosing_system",
    "decapper": "action_device",
    "spin_coater": "action_device",
    "hotplate": "action_device",
    "syringe_pump": "dosing_system",
    "nozzle": "action_device",
    "xrf": "action_device",
}


def test_berlinguette_generalization(emit, benchmark):
    deck = build_berlinguette_deck()
    mapping = deck.categorization()
    for device, kind in PAPER_MAPPING.items():
        assert mapping[device] == kind, device

    rows = [[d, k, PAPER_MAPPING.get(d, "(container)")] for d, k in sorted(mapping.items())]
    table = format_table(
        ["device", "categorized as", "paper's categorization"],
        rows,
        title="§V-B Berlinguette device categorization (four predefined types)",
    )

    # Safe workflow under general rules only.
    rabit, proxies, _ = make_berlinguette_rabit(deck)
    assert deck.model.custom_rule_ids == []
    result = run_workflow(build_spray_coating_workflow(proxies))
    assert result.completed and rabit.alert_count == 0

    # And the general rules transfer: the door rule fires unchanged.
    deck2 = build_berlinguette_deck()
    rabit2, proxies2, _ = make_berlinguette_rabit(deck2)
    with pytest.raises(SafetyViolation) as excinfo:
        proxies2["ur5e"].move_to_location("bdosing_interior")
    assert excinfo.value.alert.rule_id == "G1"

    summary = format_table(
        ["check", "outcome"],
        [
            ["spray-coating workflow under general rules", "completed, 0 alerts"],
            ["G1 (door) fires in the new lab", str(excinfo.value.alert)[:64]],
            ["custom Hein rules enabled", "none (general/custom split)"],
        ],
        title="Generalization checks",
    )
    emit("berlinguette", table + "\n\n" + summary)

    # Timed kernel: one full spray-coating run (deck + monitor + workflow).
    def one_run():
        d = build_berlinguette_deck()
        r, px, _ = make_berlinguette_rabit(d)
        return run_workflow(build_spray_coating_workflow(px))

    result = benchmark.pedantic(one_run, rounds=2, iterations=1)
    assert result.completed
    benchmark.extra_info["devices_categorized"] = len(mapping)
