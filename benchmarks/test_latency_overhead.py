"""§II-C — RABIT's latency overhead.

Paper: "Without the Extended Simulator, RABIT incurs approximately 0.03 s
overhead (1.5 %) ... with the Extended Simulator, RABIT incurs
approximately 2 s overhead (112 %)", dominated by the simulator GUI that
the deployment plan bypasses.

Virtual-clock accounting reproduces the ratios deterministically; the
pytest-benchmark kernel additionally measures the *real* CPU cost of one
full Fig. 2 guard round-trip (validate + execute + fetch + compare).
"""


from repro.analysis.latency import measure_workflow_latency
from repro.analysis.report import format_table
from repro.lab.hein import build_hein_deck, make_hein_rabit

PAPER = {
    "rabit": {"per_command": 0.03, "percent": 1.5},
    "rabit+es": {"per_command": 2.0, "percent": 112.0},
}


def test_latency_overhead(emit, trend, benchmark):
    reports = measure_workflow_latency()

    rows = []
    for name in ("unmonitored", "rabit", "rabit+es", "rabit+es-headless"):
        report = reports[name]
        paper = PAPER.get(name)
        rows.append(
            [
                name,
                report.commands,
                f"{report.experiment_seconds:.1f} s",
                f"{report.overhead_per_command:.4f} s",
                f"{report.overhead_percent:.1f} %",
                f"{paper['per_command']:.2f} s / {paper['percent']:.1f} %" if paper else "-",
            ]
        )
    rendered = format_table(
        ["configuration", "commands", "baseline", "overhead/cmd", "overhead %", "paper"],
        rows,
        title="§II-C latency overhead (virtual-clock accounting)",
    )
    emit("latency_overhead", rendered)
    trend(
        "latency_overhead",
        {
            name: {
                "overhead_per_command_s": round(report.overhead_per_command, 6),
                "overhead_percent": round(report.overhead_percent, 3),
            }
            for name, report in reports.items()
        },
    )

    # Shape assertions against the paper's numbers.
    assert 0.02 <= reports["rabit"].overhead_per_command <= 0.04
    assert 1.0 <= reports["rabit"].overhead_percent <= 2.5
    assert 1.8 <= reports["rabit+es"].overhead_per_command <= 2.2
    assert 95.0 <= reports["rabit+es"].overhead_percent <= 130.0
    assert reports["rabit+es-headless"].overhead_percent < 3.0

    # Real-CPU kernel: one guarded door cycle (validate/execute/fetch).
    deck = build_hein_deck()
    rabit, proxies, _ = make_hein_rabit(deck)

    def guard_round_trip():
        proxies["dosing_device"].open_door()
        proxies["dosing_device"].close_door()

    benchmark(guard_round_trip)
    benchmark.extra_info["virtual_overheads"] = {
        name: f"{reports[name].overhead_per_command:.4f}s ({reports[name].overhead_percent:.1f}%)"
        for name in reports
    }
    # Real-CPU effect of the rule-verdict cache on the repeated kernel
    # (virtual-clock charges above are unaffected by memoization).
    if rabit.rule_cache is not None:
        benchmark.extra_info["rule_cache"] = rabit.rule_cache.stats()
