"""§V-A pilot study — configuration-authoring error classes.

Participant P spent ~3 h entering device information and ~4 h debugging
it; the observed error classes were JSON syntax errors and sign errors.
The paper concludes a JSON-aware editor and "more precise JSON schema
specifications could have helped".  This bench injects each pilot-study
error class into a known-good configuration and reports which ones the
shipped validator now catches.
"""

import json


from repro.analysis.report import format_table
from repro.core.config import ConfigError, parse_config_text, validate_config
from repro.lab.hein import build_hein_deck


def _inject_syntax_error(text: str) -> str:
    return text.replace("{", "{,", 1)


ERROR_CLASSES = [
    (
        "JSON syntax error (missing bracket/comma)",
        "syntax",
        None,
    ),
    (
        "sign error in a location coordinate (z negated)",
        "semantic",
        lambda cfg: cfg["locations"][0]["coords"].update(
            {"ur3e": [0.30, -0.05, -0.12]}
        ),
    ),
    (
        "inverted obstacle cuboid (min/max swapped by sign error)",
        "semantic",
        lambda cfg: cfg["obstacles"][1]["frames"]["ur3e"].update(
            {"min": [0.45, -0.15, 0.0], "max": [0.25, 0.05, 0.05]}
        ),
    ),
    (
        "wrong device class name (typo in wrapper class)",
        "semantic",
        lambda cfg: cfg["devices"][1].update({"class": "SolidDoserDevice"}),
    ),
    (
        "unknown device type (miscategorized device)",
        "semantic",
        lambda cfg: cfg["devices"][3].update({"type": "heating_device"}),
    ),
    (
        "coordinate with missing component",
        "semantic",
        lambda cfg: cfg["locations"][2]["coords"].update({"ur3e": [0.38, -0.05]}),
    ),
]


def test_pilot_error_classes_caught(emit, benchmark):
    rows = []
    for description, kind, mutate in ERROR_CLASSES:
        if kind == "syntax":
            text = _inject_syntax_error(json.dumps(build_hein_deck().config))
            try:
                parse_config_text(text)
                caught = False
            except ConfigError:
                caught = True
        else:
            config = build_hein_deck().config
            mutate(config)
            issues = validate_config(config)
            caught = any(issues)
        rows.append([description, "caught" if caught else "MISSED"])
        assert caught, description

    rendered = format_table(
        ["pilot-study error class", "validator outcome"],
        rows,
        title="§V-A pilot study — config error classes vs. the schema validator",
    )
    emit("pilot_config_errors", rendered)

    # Timed kernel: full validation of the Hein configuration (the cost
    # participant P's editing loop would pay per save).
    config = build_hein_deck().config
    benchmark(lambda: validate_config(config))
    benchmark.extra_info["error_classes_caught"] = f"{len(rows)}/{len(rows)}"
