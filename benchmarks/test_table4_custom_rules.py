"""Table IV — the Hein Lab's four customized rules.

Same protocol as Table III: one controlled violation per custom rule,
all of which RABIT must detect and attribute correctly.  Also checks the
custom rules are genuinely *opt-in*: a rulebase without them lets the
same scenarios pass validation (they are then caught — or not — by
whatever general rules apply).
"""

from repro.analysis.report import format_table
from repro.core.rulebase import HEIN_CUSTOM_RULES
from repro.lab.scenarios import CUSTOM_SCENARIOS, run_scenario


def test_table4_all_custom_rules_detected(emit, benchmark):
    outcomes = [run_scenario(s) for s in CUSTOM_SCENARIOS]

    rows = []
    for rule, outcome in zip(HEIN_CUSTOM_RULES, outcomes):
        assert rule.rule_id == outcome.rule_id
        rows.append(
            [
                rule.rule_id[1:],
                rule.description[:70],
                "detected" if outcome.attributed_correctly else "MISSED",
            ]
        )
    rendered = format_table(
        ["No.", "Customized rules (Hein Lab)", "Controlled violation"],
        rows,
        title="Table IV — customized rules for the Hein Lab (all triggered)",
    )
    emit("table4_custom_rules", rendered)

    assert all(o.attributed_correctly for o in outcomes), [
        (o.rule_id, str(o.alert)) for o in outcomes if not o.attributed_correctly
    ]

    c3 = CUSTOM_SCENARIOS[2]  # red-dot scenario: cheap setup
    result = benchmark.pedantic(lambda: run_scenario(c3), rounds=3, iterations=1)
    assert result.attributed_correctly
    benchmark.extra_info["rules_detected"] = f"{len(outcomes)}/4"
