"""Table I — capabilities of RABIT's three stages.

The paper gives qualitative High/Medium/Low bands per capability axis.
This bench measures the quantitative stage parameters (exploration speed,
positioning precision, result accuracy, damage risk), maps them back to
bands, and regenerates the table.  The timed kernel is one monitored
command on the production deck — the unit of "exploration" the speed axis
counts.
"""


from repro.analysis.report import format_table
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.stage import STAGE_PROFILES, Stage

PAPER_BANDS = {
    "speed": {"simulator": "High", "testbed": "Medium", "production": "Low"},
    "precision": {"simulator": "Low", "testbed": "Medium", "production": "High"},
    "accuracy": {"simulator": "Low", "testbed": "Medium", "production": "High"},
    "risk": {"simulator": "Low", "testbed": "Medium", "production": "High"},
}

AXIS_TITLES = {
    "speed": "Speed of exploration / testing",
    "precision": "Device precision and quality",
    "accuracy": "Accuracy of results",
    "risk": "Risk of damage",
}


def test_table1_regenerates(emit, benchmark):
    rows = []
    for axis in ("speed", "precision", "accuracy", "risk"):
        row = [AXIS_TITLES[axis]]
        for stage in (Stage.SIMULATOR, Stage.TESTBED, Stage.PRODUCTION):
            band = STAGE_PROFILES[stage].band(axis)
            assert band == PAPER_BANDS[axis][stage.value], (axis, stage)
            row.append(band)
        rows.append(row)
    table = format_table(
        ["Capabilities", "Simulator", "Testbed", "Production"],
        rows,
        title="Table I — comparing the capabilities of RABIT's three stages",
    )

    quant_rows = [
        [
            profile.stage.value,
            f"{1.0 / profile.time_scale:.0f}x realtime",
            f"{profile.position_noise_sigma * 1000:.2f} mm",
            f"{profile.result_accuracy * 100:.0f} %",
            f"{profile.damage_cost:g}",
        ]
        for profile in STAGE_PROFILES.values()
    ]
    quant = format_table(
        ["stage", "exploration speed", "position sigma", "result accuracy", "damage cost"],
        quant_rows,
        title="Quantitative stage parameters backing the bands",
    )
    emit("table1_stages", table + "\n\n" + quant)

    # Timed kernel: one guarded command (the unit the speed axis counts).
    deck = build_hein_deck()
    rabit, proxies, _ = make_hein_rabit(deck)

    def one_monitored_command():
        proxies["dosing_device"].open_door()
        proxies["dosing_device"].close_door()

    benchmark(one_monitored_command)
    benchmark.extra_info["paper_bands_reproduced"] = True
