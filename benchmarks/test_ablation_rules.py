"""Ablation — which rule carries which campaign detection.

The rulebase is the design artifact DESIGN.md calls out: every detected
campaign bug should be attributable to exactly the rule its alert names,
and knocking that rule out should turn the detection into a miss (no
hidden redundancy) — except where a second rule covers the same hazard,
which the ablation makes visible.
"""

import re


from repro.analysis.report import format_table
from repro.faults.campaign import CAMPAIGN_BUGS, run_bug
from repro.parallel import run_bug_matrix

#: bug id -> rule its modified-RABIT alert names (from the campaign).
EXPECTED_CARRIER = {
    "L1": "G8",
    "ML1": "G3",
    "MH1": "G3",
    "MH2": "G3",
    "MH5": "G3",
    "MH6": "G3",
    "H1": "G1",
    "H2": "G2",
    "H3": "G9",
    "H4": "G10",
    "H5": "G11",
    "H6": "C4",
}


def test_rule_knockout_ablation(emit, campaign_result, benchmark):
    detected = {
        o.bug.bug_id: o
        for o in campaign_result.outcomes
        if o.config == "modified" and o.detected
    }
    assert set(detected) == set(EXPECTED_CARRIER)

    carriers = {}
    for bug_id, outcome in sorted(detected.items()):
        match = re.search(r"\[([A-Z0-9-]+)\]", outcome.alert or "")
        carrier = match.group(1) if match else "?"
        assert carrier == EXPECTED_CARRIER[bug_id], (bug_id, outcome.alert)
        carriers[bug_id] = carrier

    # The knockout runs are independent (bug, config, exclude_rules)
    # triples — the ablation shape the sharded engine fans out.  One
    # worker per CPU; results come back in spec order either way.
    specs = [
        (next(b for b in CAMPAIGN_BUGS if b.bug_id == bug_id), "modified",
         (carrier,))
        for bug_id, carrier in sorted(carriers.items())
    ]
    knockouts = run_bug_matrix(specs, workers=None)

    rows = []
    for (bug_id, carrier), knocked in zip(sorted(carriers.items()), knockouts):
        if knocked.detected:
            # Defense in depth: another layer covers the hazard; name it.
            other = re.search(r"\[([A-Z0-9-]+)\]", knocked.alert or "")
            if other:
                result = f"still detected by {other.group(1)}"
            elif "device_malfunction" in (knocked.alert or ""):
                result = "still detected by the expected-vs-actual check"
            else:
                result = "still detected (trajectory check)"
        else:
            result = "missed (rule is load-bearing)"
        rows.append([bug_id, carrier, result])

    rendered = format_table(
        ["bug", "detecting rule", "after knocking the rule out"],
        rows,
        title="Ablation: rule knockout vs. campaign detections (modified RABIT)",
    )
    emit("ablation_rules", rendered)

    # Every knockout must at minimum change the attribution; most should
    # become outright misses.
    missed = [r for r in rows if "missed" in r[2]]
    assert len(missed) >= 8, rows

    # Timed kernel: one knockout run.
    bug_h1 = next(b for b in CAMPAIGN_BUGS if b.bug_id == "H1")
    outcome = benchmark.pedantic(
        lambda: run_bug(bug_h1, "modified", exclude_rules=("G1",)),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["load_bearing_rules"] = len(missed)
