"""Shared benchmark fixtures, table emission, and the perf trend log.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered tables are printed (visible with ``pytest -s``) **and** written
to ``benchmarks/results/<name>.txt`` so a run always leaves comparable
artifacts behind, and key paper-vs-measured values are attached to the
pytest-benchmark ``extra_info`` of the timed kernel.

The ``trend`` fixture additionally appends one machine-readable JSON line
per headline number to ``benchmarks/results/trend.jsonl``; CI uploads the
directory as an artifact, so collision-throughput and latency figures are
comparable across PRs without digging through logs.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from pathlib import Path

import numpy as np
import pytest

from repro.faults.campaign import CampaignResult, run_campaign

RESULTS_DIR = Path(__file__).parent / "results"
TREND_PATH = RESULTS_DIR / "trend.jsonl"


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture(scope="session")
def trend():
    """Append one timestamped JSON line per metric to trend.jsonl."""
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
    }

    def _append(metric: str, values: dict) -> None:
        record = {"metric": metric, **stamp, **values}
        with TREND_PATH.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    return _append


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def campaign_result() -> CampaignResult:
    """The full 16-bug x 3-configuration campaign (run once per session)."""
    return run_campaign()
