"""Shared benchmark fixtures and table emission.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered tables are printed (visible with ``pytest -s``) **and** written
to ``benchmarks/results/<name>.txt`` so a run always leaves comparable
artifacts behind, and key paper-vs-measured values are attached to the
pytest-benchmark ``extra_info`` of the timed kernel.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults.campaign import CampaignResult, run_campaign

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def campaign_result() -> CampaignResult:
    """The full 16-bug x 3-configuration campaign (run once per session)."""
    return run_campaign()
