"""Monte Carlo sweep throughput: sequential loop vs sharded process pool.

The sweep is the repo's heaviest workload (every mutant is two full
workflow runs), and its samples share nothing — the shape the
``repro.parallel`` engine exists for.  This benchmark runs the same
seeded sweep sequentially and under a 4-worker pool, re-checks the
differential suite's invariant on the benchmark population (identical
reports), and gates the speedup at ≥ 1.8x on CI-class hardware (4+
cores).  On smaller machines the numbers are still measured, emitted,
and appended to the perf trend, but a pool cannot beat one core with
pure-Python workers, so the gate would only measure the host.
"""

import os
import time

from repro.analysis.report import format_table
from repro.faults.montecarlo import run_monte_carlo

SAMPLES = 8
SEED = 2024
WORKERS = 4
MIN_SPEEDUP = 1.8
#: Cores below which the speedup gate is informational only.
GATE_MIN_CPUS = 4


def test_montecarlo_throughput(emit, trend, benchmark):
    t0 = time.perf_counter()
    sequential = run_monte_carlo(samples=SAMPLES, seed=SEED, workers=1)
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_monte_carlo(samples=SAMPLES, seed=SEED, workers=WORKERS)
    t_par = time.perf_counter() - t0

    # Correctness first: the timings only mean something if the sharded
    # sweep reproduced the sequential report exactly.
    assert parallel.canonical_bytes() == sequential.canonical_bytes()

    speedup = t_seq / t_par
    cpus = os.cpu_count() or 1
    gated = cpus >= GATE_MIN_CPUS
    rows = [
        ["sequential", f"{t_seq:.1f} s", f"{SAMPLES / t_seq:.2f}", "1.0x"],
        [
            f"parallel ({WORKERS} workers)",
            f"{t_par:.1f} s",
            f"{SAMPLES / t_par:.2f}",
            f"{speedup:.2f}x",
        ],
    ]
    rendered = format_table(
        ["execution", "sweep time", "mutants/s", "speedup"],
        rows,
        title=(
            f"Monte Carlo sweep throughput ({SAMPLES} mutants, seed {SEED}, "
            f"{cpus} CPUs, identical reports; "
            f"gate {'ON' if gated else 'off: <' + str(GATE_MIN_CPUS) + ' cores'})"
        ),
    )
    emit("montecarlo_throughput", rendered)
    trend(
        "montecarlo_throughput",
        {
            "samples": SAMPLES,
            "workers": WORKERS,
            "cpus": cpus,
            "sequential_s": round(t_seq, 2),
            "parallel_s": round(t_par, 2),
            "speedup": round(speedup, 2),
            "mutants_per_second_parallel": round(SAMPLES / t_par, 3),
            "gated": gated,
        },
    )

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker sweep only {speedup:.2f}x faster than sequential "
            f"on {cpus} cores (required: {MIN_SPEEDUP}x)"
        )

    # Timed kernel for pytest-benchmark comparability: one mutant scored
    # end to end through the sequential path.
    benchmark.pedantic(
        lambda: run_monte_carlo(samples=1, seed=99, workers=1), rounds=1, iterations=1
    )
    benchmark.extra_info["speedup_vs_sequential"] = round(speedup, 2)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["gated"] = gated
