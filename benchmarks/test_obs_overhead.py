"""Observability overhead gates.

The tentpole contract: with observability **disabled** (the default), the
instrumented collision-throughput kernel must run within 2 % of the seed
kernel.  The instrumentation wraps
:meth:`BatchCollisionEngine.segment_entry_times` around the untouched
seed body (``_segment_entry_times_impl``), so the gate times both on the
exact §PR-1 benchmark scene and compares.

A second, looser check reports the *enabled* cost — informational (it is
allowed to cost real time; that is the mode's purpose) but asserted to a
generous bound so a pathological regression (e.g. accidentally exporting
per-call) still fails CI.
"""

import time

import numpy as np

from repro.geometry.batch import BatchCollisionEngine
from repro.geometry.shapes import Cuboid
from repro.obs import OBS

N_SEGMENTS = 200
N_CUBOIDS = 20
#: The ISSUE-2 acceptance gate: instrumented-off within 2 % of seed.
MAX_DISABLED_OVERHEAD = 0.02
#: Sanity ceiling for the enabled path on this heavy kernel.
MAX_ENABLED_OVERHEAD = 0.25
REPEATS = 30
CALLS_PER_SAMPLE = 20


def _scene(seed: int = 7):
    rng = np.random.default_rng(seed)
    cuboids = []
    for i in range(N_CUBOIDS):
        lo = rng.uniform(-1.0, 0.8, size=3)
        hi = lo + rng.uniform(0.05, 0.5, size=3)
        cuboids.append(Cuboid(tuple(lo), tuple(hi), name=f"box_{i}"))
    starts = rng.uniform(-1.2, 1.2, size=(N_SEGMENTS, 3))
    ends = rng.uniform(-1.2, 1.2, size=(N_SEGMENTS, 3))
    return cuboids, starts, ends


def _best_of(repeats, fn):
    """Min-of-N timing of *fn* called CALLS_PER_SAMPLE times per sample.

    The min over repeats is robust to scheduler noise; amortizing over
    multiple calls per sample keeps timer resolution out of a 2 % gate.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(CALLS_PER_SAMPLE):
            fn()
        best = min(best, (time.perf_counter() - t0) / CALLS_PER_SAMPLE)
    return best


def test_disabled_observability_overhead_gate(emit, trend, benchmark):
    assert not OBS.enabled, "observability must be off by default"
    cuboids, starts, ends = _scene()
    engine = BatchCollisionEngine(cuboids)

    # Warm both paths (allocator, caches) before timing.
    engine._segment_entry_times_impl(starts, ends)
    engine.segment_entry_times(starts, ends)

    t_seed = _best_of(REPEATS, lambda: engine._segment_entry_times_impl(starts, ends))
    t_off = _best_of(REPEATS, lambda: engine.segment_entry_times(starts, ends))
    overhead_off = t_off / t_seed - 1.0

    OBS.enable()
    try:
        t_on = _best_of(REPEATS, lambda: engine.segment_entry_times(starts, ends))
    finally:
        OBS.disable()
        OBS.reset()
    overhead_on = t_on / t_seed - 1.0

    lines = [
        "Observability overhead on the collision-throughput kernel",
        f"  seed kernel (uninstrumented) {t_seed * 1e3:8.3f} ms/sweep",
        f"  instrumented, obs OFF        {t_off * 1e3:8.3f} ms/sweep "
        f"({100 * overhead_off:+.2f} %, gate {100 * MAX_DISABLED_OVERHEAD:.0f} %)",
        f"  instrumented, obs ON         {t_on * 1e3:8.3f} ms/sweep "
        f"({100 * overhead_on:+.2f} %)",
    ]
    emit("obs_overhead", "\n".join(lines))
    trend(
        "obs_overhead",
        {
            "seed_ms": round(t_seed * 1e3, 4),
            "disabled_ms": round(t_off * 1e3, 4),
            "enabled_ms": round(t_on * 1e3, 4),
            "disabled_overhead_pct": round(100 * overhead_off, 3),
            "enabled_overhead_pct": round(100 * overhead_on, 3),
        },
    )

    assert overhead_off <= MAX_DISABLED_OVERHEAD, (
        f"disabled observability costs {100 * overhead_off:.2f} % on the "
        f"collision kernel (gate: {100 * MAX_DISABLED_OVERHEAD:.0f} %)"
    )
    assert overhead_on <= MAX_ENABLED_OVERHEAD, (
        f"enabled observability costs {100 * overhead_on:.2f} % on the "
        f"collision kernel (ceiling: {100 * MAX_ENABLED_OVERHEAD:.0f} %)"
    )

    benchmark(lambda: engine.segment_entry_times(starts, ends))
    benchmark.extra_info["disabled_overhead_pct"] = round(100 * overhead_off, 3)
    benchmark.extra_info["enabled_overhead_pct"] = round(100 * overhead_on, 3)


def test_enabled_observability_is_accounted(emit):
    """Enabled runs meter exactly the work done, then reset cleanly."""
    cuboids, starts, ends = _scene()
    engine = BatchCollisionEngine(cuboids)
    OBS.enable()
    try:
        engine.segment_entry_times(starts, ends)
        engine.segment_entry_times(starts, ends)
    finally:
        OBS.disable()
    queries = OBS.registry.get("geometry_batch_queries_total")
    pairs = OBS.registry.get("geometry_pair_checks_total")
    assert queries.value(kind="segment_entry_times") == 2
    assert pairs.total() == 2 * N_SEGMENTS * N_CUBOIDS
    OBS.reset()
    assert pairs.total() == 0
