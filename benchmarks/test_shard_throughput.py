"""Sharded-service throughput: N worker processes vs one.

One :class:`GuardServer` event loop tops out at roughly one CPU of
guard work; the shard layer's pitch is that N forked workers behind the
router turn that ceiling into ~N CPUs without changing a single verdict
byte.  This benchmark measures three configurations under the same load
(K concurrent sessions, the serve benchmark's 15 ms modeled device I/O,
the ``hein_lean`` deck, sessions pinned round-robin so the spread is
exact):

1. the single-process service (the PR 7 baseline path, no router);
2. the sharded service with N=1 — same worker count, but every frame
   now crosses the router pipe and a process boundary, so this isolates
   the router's tax;
3. the sharded service with N=2 — the scale-out claim itself.

Gates (multi-core runners only — below ``GATE_MIN_CPUS`` cores the
record is stamped ``"gated": false`` and :mod:`benchmarks.check_trend`
skips it, the montecarlo precedent for starved runners):

- N=2 must clear ``MIN_SPEEDUP`` x the N=1 sharded rate, and
- N=1 sharded must hold ``MAX_ROUTER_TAX`` of the single-process rate
  (the router pipe must be cheap, not just the sharding worth it).
"""

import asyncio
import os
import tempfile
import time

from repro.analysis.report import format_table
from repro.serve.client import ServeClient
from repro.serve.server import GuardServer
from repro.serve.shard import ShardConfig, ShardService

IO_LATENCY = 0.015
DECK = "hein_lean"
SESSIONS = 8
WARMUP_COMMANDS = 4
COMMANDS_PER_SESSION = 20
MIN_SPEEDUP = 1.6
MAX_ROUTER_TAX = 0.9  # N=1 sharded >= 90% of the single-process rate
GATE_MIN_CPUS = 4

COMMANDS = [
    ("go_to_home_pose", ()),
    ("move_to_location", ("grid_a1_safe",)),
]


async def _drive(client: ServeClient, count: int) -> None:
    for i in range(count):
        method, args = COMMANDS[i % len(COMMANDS)]
        response = await client.command("ur3e", method, *args)
        assert response["ok"], response


async def _run_clients(open_client) -> float:
    """Aggregate guarded commands/sec for K sessions via *open_client*."""
    clients = []
    for i in range(SESSIONS):
        clients.append(await open_client(i))
    try:
        await asyncio.gather(*[_drive(c, WARMUP_COMMANDS) for c in clients])
        t0 = time.perf_counter()
        await asyncio.gather(
            *[_drive(c, COMMANDS_PER_SESSION) for c in clients]
        )
        wall = time.perf_counter() - t0
    finally:
        for client in clients:
            await client.close()
    return SESSIONS * COMMANDS_PER_SESSION / wall


async def _single_process_rate() -> float:
    server = GuardServer(max_sessions=SESSIONS)
    path = os.path.join(tempfile.mkdtemp(prefix="rabit-shard-bench-"), "g.sock")
    await server.start_unix(path)
    try:

        async def open_client(_i: int) -> ServeClient:
            client = await ServeClient.open_unix(path)
            await client.open_session(deck=DECK, io_latency=IO_LATENCY)
            return client

        return await _run_clients(open_client)
    finally:
        await server.stop()


async def _sharded_rate(workers: int) -> tuple:
    service = ShardService(
        ShardConfig(workers=workers, max_sessions=SESSIONS)
    )
    await service.start()
    try:

        async def open_client(i: int) -> ServeClient:
            client = await ServeClient.open_tcp(
                service.config.host, service.config.port
            )
            # Pinned round-robin: the spread across workers is exact, so
            # the measurement never depends on key-hash luck.
            await client.open_session(
                deck=DECK, io_latency=IO_LATENCY, worker=i % workers
            )
            return client

        rate = await _run_clients(open_client)
        merged = await service.merged_stats()
        return rate, merged
    finally:
        await service.stop()


def test_shard_throughput(emit, trend, benchmark):
    single_rate = asyncio.run(_single_process_rate())
    one_rate, one_stats = asyncio.run(_sharded_rate(1))
    two_rate, two_stats = asyncio.run(_sharded_rate(2))

    speedup = two_rate / one_rate
    router_ratio = one_rate / single_rate
    cpus = os.cpu_count() or 1
    gated = cpus >= GATE_MIN_CPUS

    total = SESSIONS * (WARMUP_COMMANDS + COMMANDS_PER_SESSION)
    # Determinism-of-merge sanity: every command accounted for once.
    for stats in (one_stats, two_stats):
        assert stats["totals"]["commands"] == total, stats
        assert stats["totals"]["sessions_opened"] == SESSIONS
    per_worker = [p["commands"] for p in two_stats["per_worker"]]
    assert per_worker == [total // 2, total // 2], per_worker

    rows = [
        ["single-process", f"{single_rate:.1f}", "1.00x", "-"],
        [
            "sharded N=1",
            f"{one_rate:.1f}",
            f"{router_ratio:.2f}x",
            "router tax",
        ],
        [
            "sharded N=2",
            f"{two_rate:.1f}",
            f"{two_rate / single_rate:.2f}x",
            f"{speedup:.2f}x vs N=1",
        ],
    ]
    rendered = format_table(
        ["configuration", "guarded cmds/s", "vs single", "notes"],
        rows,
        title=(
            f"Sharded-service throughput (K={SESSIONS} sessions, {DECK} deck, "
            f"{IO_LATENCY * 1e3:.0f} ms modeled device I/O, {cpus} CPUs; "
            f"gate {'ON' if gated else 'off: <' + str(GATE_MIN_CPUS) + ' cores'})"
        ),
    )
    emit("shard_throughput", rendered)
    trend(
        "shard_throughput",
        {
            "sessions": SESSIONS,
            "io_latency_ms": IO_LATENCY * 1e3,
            "cpus": cpus,
            "single_process_cmds_per_s": round(single_rate, 1),
            "shard1_cmds_per_s": round(one_rate, 1),
            "shard2_cmds_per_s": round(two_rate, 1),
            "speedup_vs_one_worker": round(speedup, 2),
            "router_throughput_ratio": round(router_ratio, 2),
            "gated": gated,
        },
    )

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"N=2 sharded service only {speedup:.2f}x the N=1 rate on "
            f"{cpus} cores (required: {MIN_SPEEDUP}x)"
        )
        assert router_ratio >= MAX_ROUTER_TAX, (
            f"router pipe costs too much: N=1 sharded at {router_ratio:.2f}x "
            f"the single-process rate (floor: {MAX_ROUTER_TAX}x)"
        )

    # Timed kernel for pytest-benchmark comparability: one short sharded
    # burst end to end (fork, route, guard, merge, teardown).
    benchmark.pedantic(
        lambda: asyncio.run(_sharded_rate(2)), rounds=1, iterations=1
    )
    benchmark.extra_info["speedup_vs_one_worker"] = round(speedup, 2)
    benchmark.extra_info["router_throughput_ratio"] = round(router_ratio, 2)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["gated"] = gated
