"""Figs. 1(b) & 5 — the safe workflows themselves.

The baseline the whole evaluation rests on: the unmutated production
solubility experiment and testbed workflow complete with zero alerts and
zero ground-truth damage under every monitor configuration, and produce
the right chemistry.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import (
    build_solubility_workflow,
    build_testbed_workflow,
    run_workflow,
)
from repro.testbed.deck import build_testbed_deck, make_testbed_rabit


def test_safe_workflows_clean_everywhere(emit, benchmark):
    rows = []

    # Production solubility (Fig. 1(b)) under three configurations.
    for config, factory, use_es in (
        ("initial", RabitOptions.initial, False),
        ("modified", RabitOptions.modified, False),
        ("modified+ES", RabitOptions.modified, True),
    ):
        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(
            deck, options=factory(), use_extended_simulator=use_es
        )
        result = run_workflow(build_solubility_workflow(proxies))
        assert result.completed and rabit.alert_count == 0
        assert deck.world.damage_log == ()
        rows.append(
            ["solubility (Fig. 1b)", config, len(trace), "completed, 0 alerts, 0 damage"]
        )

    # Chemistry sanity on one run.
    deck = build_hein_deck()
    _, proxies, _ = make_hein_rabit(deck)
    run_workflow(build_solubility_workflow(proxies, amount_mg=5, initial_solvent_ml=4))
    vial = deck.vials["vial_1"]
    assert vial.contents.solid_mg == pytest.approx(5.0)
    assert vial.contents.liquid_ml == pytest.approx(8.0)
    rows.append(
        ["solubility chemistry", "-", "-", f"{vial.contents.solid_mg:g} mg solid, "
         f"{vial.contents.liquid_ml:g} mL solvent, back at {vial.resting_at}"]
    )

    # Testbed workflow (Fig. 5) with and without ES.
    for use_es in (False, True):
        deck = build_testbed_deck(noise_sigma=0.003)
        rabit, proxies, trace = make_testbed_rabit(deck, use_extended_simulator=use_es)
        result = run_workflow(build_testbed_workflow(proxies))
        assert result.completed and rabit.alert_count == 0
        assert deck.world.damage_log == ()
        rows.append(
            ["testbed (Fig. 5)", "with ES" if use_es else "plain", len(trace),
             "completed, 0 alerts, 0 damage"]
        )

    rendered = format_table(
        ["workflow", "configuration", "commands", "outcome"],
        rows,
        title="Safe workflows: zero false positives in every configuration",
    )
    emit("fig5_workflow", rendered)

    # Timed kernel: the production workflow end to end under RABIT.
    def one_production_run():
        d = build_hein_deck()
        r, px, _ = make_hein_rabit(d)
        return run_workflow(build_solubility_workflow(px))

    result = benchmark.pedantic(one_production_run, rounds=2, iterations=1)
    assert result.completed
