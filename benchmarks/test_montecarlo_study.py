"""Extension study — the "large bug dataset" the paper could not build.

§IV: "without exhaustive testing (which requires generating large bug
datasets — a challenging task in itself), we do not know if these numbers
are representative".  This bench samples random naive-programmer edits of
the Fig. 5 workflow, scores modified RABIT against unmonitored ground
truth, and prints the confusion matrix — an estimate of the detection
rate over a population instead of 16 hand-made bugs, plus the empirical
false-alarm rate the paper's usability argument rests on.
"""


from repro.analysis.metrics import montecarlo_rows
from repro.analysis.report import format_table
from repro.faults.montecarlo import run_monte_carlo

SAMPLES = 30


def test_monte_carlo_study(emit, benchmark):
    report = run_monte_carlo(samples=SAMPLES, seed=2024)

    rendered = format_table(
        ["quantity", "value", "note"],
        montecarlo_rows(report),
        title=f"Monte Carlo bug study ({SAMPLES} random mutants, modified RABIT)",
    )

    missed = [
        f"  missed: {o.description} -> {', '.join(o.damage_kinds)}"
        for o in report.outcomes
        if o.classification == "false_negative"
    ]
    emit("montecarlo_study", rendered + ("\n\nMissed mutants:\n" + "\n".join(missed) if missed else ""))

    assert report.false_alarm_rate == 0.0
    assert 0.4 <= report.detection_rate <= 1.0
    assert report.harmful_total >= 5

    # Timed kernel: one mutant scored end to end (two full runs).
    result = benchmark.pedantic(
        lambda: run_monte_carlo(samples=1, seed=99), rounds=1, iterations=1
    )
    benchmark.extra_info["detection_rate"] = round(report.detection_rate, 2)
    benchmark.extra_info["false_alarm_rate"] = report.false_alarm_rate
