"""Figs. 5 & 6 — the four annotated bugs A, B, C, D.

Per-bug reproduction of the paper's narrative:

- **Bug A** (door not re-opened): RABIT raised an alert — all revisions.
- **Bug B** (two-arm collision): "RABIT did not raise an alarm"; the
  ground truth records the collision; multiplexing prevents it.
- **Bug C** (pick omitted): "RABIT did not raise an alarm, and the
  remaining experiment continued without a vial."
- **Bug D** (pickup z 0.10 -> 0.08 while holding): missed by initial
  RABIT (vial crashes and breaks), detected after the held-object fix.
"""


from repro.analysis.report import format_table
from repro.faults.campaign import CAMPAIGN_BUGS, run_bug

FIG56 = {"Bug A": "H1", "Bug B": "MH4", "Bug C": "L2", "Bug D": "ML1"}


def test_fig56_bug_stories(emit, campaign_result, benchmark):
    outcomes = {
        (o.bug.bug_id, o.config): o for o in campaign_result.outcomes
    }

    rows = []
    for figure_name, bug_id in FIG56.items():
        initial = outcomes[(bug_id, "initial")]
        modified = outcomes[(bug_id, "modified")]
        rows.append(
            [
                figure_name,
                initial.bug.title[:48],
                "alert" if initial.detected else "missed",
                "alert" if modified.detected else "missed",
                ", ".join(sorted({d.kind for d in modified.damage})) or "-",
            ]
        )
    rendered = format_table(
        ["bug", "description", "initial RABIT", "modified RABIT", "ground-truth damage (modified)"],
        rows,
        title="Figs. 5 & 6 — the annotated bugs A-D",
    )
    emit("fig56_bugs", rendered)

    # Bug A: detected by every revision, before any damage.
    for config in ("initial", "modified", "modified_es"):
        o = outcomes[(FIG56["Bug A"], config)]
        assert o.detected and o.damage == ()

    # Bug B: never detected; arms physically collide.
    for config in ("initial", "modified", "modified_es"):
        o = outcomes[(FIG56["Bug B"], config)]
        assert not o.detected
        assert any(d.kind == "arm_collision" for d in o.damage)

    # Bug C: never detected; run completes; dosing spills.
    for config in ("initial", "modified", "modified_es"):
        o = outcomes[(FIG56["Bug C"], config)]
        assert not o.detected and o.completed
        assert any(d.kind == "solid_spill" for d in o.damage)

    # Bug D: initial misses (vial breaks); modified prevents (no damage).
    o_initial = outcomes[(FIG56["Bug D"], "initial")]
    assert not o_initial.detected
    assert any(d.kind == "vial_crushed" for d in o_initial.damage)
    o_modified = outcomes[(FIG56["Bug D"], "modified")]
    assert o_modified.detected and o_modified.damage == ()

    # Timed kernel: Bug D under initial RABIT (the vial-breaking run).
    bug_d = next(b for b in CAMPAIGN_BUGS if b.bug_id == "ML1")
    outcome = benchmark.pedantic(
        lambda: run_bug(bug_d, "initial"), rounds=2, iterations=1
    )
    assert not outcome.detected
    benchmark.extra_info["bug_outcomes"] = {
        name: {
            "initial": outcomes[(bid, "initial")].detected,
            "modified": outcomes[(bid, "modified")].detected,
        }
        for name, bid in FIG56.items()
    }
