"""Cold-path guard latency: compiled dispatch vs the interpreted scan.

The rule-verdict cache already makes *repeated* commands cheap; this
benchmark measures the **cold** path — the first verdict for a
(call, state) pair — where the interpreted reference walks all ~16
registered rules asking each ``applies_to`` and rebuilds the full
state content-tuple for the cache key, while the compiled path walks
only the label's precompiled decision list and reads the O(1)
incremental fingerprint token.

Two gates:

- **rule visits** (deterministic, machine-independent): the compiled
  path must consider >= 3x fewer rules per command over the full
  solubility workflow;
- **wall clock** (machine-dependent, conservatively floored): the
  cold-verdict kernel must be measurably faster compiled.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.core.actions import ActionCall, ActionLabel
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import build_solubility_workflow, run_workflow


def _workflow_visit_stats(compiled: bool):
    """Run the solubility workflow cache-disabled; return per-command
    (rules considered, checks invoked, commands)."""
    deck = build_hein_deck()
    options = RabitOptions.modified(rule_cache_size=0, compiled_dispatch=compiled)
    rabit, proxies, trace = make_hein_rabit(deck, options=options)
    result = run_workflow(build_solubility_workflow(proxies))
    assert result.completed, f"benchmark workflow did not complete: {result.alert}"
    engine = rabit.rulebase.compiled() if compiled else rabit.rulebase
    commands = len(trace)
    return engine.rules_considered, engine.checks_invoked, commands


def _cold_verdict_kernel(compiled: bool, iterations: int = 400, repeats: int = 5):
    """Median seconds for *iterations* cold rule verdicts.

    The state is mutated between calls, so every verdict misses the
    cache and pays the full cold path: cache-key construction (token vs
    content-tuple rebuild) plus the rule scan (decision list vs the
    full applies_to walk)."""
    deck = build_hein_deck()
    options = RabitOptions.modified(compiled_dispatch=compiled)
    rabit, proxies, _ = make_hein_rabit(deck, options=options)
    rabit.initialize()
    call = ActionCall(ActionLabel.OPEN_DOOR, "dosing_device")

    def run() -> float:
        started = time.perf_counter()
        for i in range(iterations):
            # Invalidate the cache key: a fresh believed quantity per call.
            rabit.state.set("container_solid", "bench_vial", float(i))
            rabit._validate(call)
        return time.perf_counter() - started

    run()  # warm-up (compiles dispatch tables, primes allocators)
    return min(run() for _ in range(repeats))


def test_cold_guard_latency(emit, trend, benchmark):
    int_visits, int_checks, int_commands = _workflow_visit_stats(compiled=False)
    cmp_visits, cmp_checks, cmp_commands = _workflow_visit_stats(compiled=True)
    assert int_commands == cmp_commands

    # The two paths must do identical *check* work (same applicable
    # rules, same first-violation walk) — only the scan differs.
    assert int_checks == cmp_checks

    visits_per_cmd_interpreted = int_visits / int_commands
    visits_per_cmd_compiled = cmp_visits / cmp_commands
    visits_ratio = visits_per_cmd_interpreted / visits_per_cmd_compiled

    iterations = 400
    interpreted_s = _cold_verdict_kernel(compiled=False, iterations=iterations)
    compiled_s = _cold_verdict_kernel(compiled=True, iterations=iterations)
    speedup = interpreted_s / compiled_s

    rows = [
        [
            "interpreted",
            f"{visits_per_cmd_interpreted:.1f}",
            f"{int_checks / int_commands:.1f}",
            f"{interpreted_s / iterations * 1e6:.1f} us",
            "1.00x",
        ],
        [
            "compiled",
            f"{visits_per_cmd_compiled:.1f}",
            f"{cmp_checks / cmp_commands:.1f}",
            f"{compiled_s / iterations * 1e6:.1f} us",
            f"{speedup:.2f}x",
        ],
    ]
    rendered = format_table(
        ["dispatch", "rules visited/cmd", "checks/cmd", "cold verdict", "speedup"],
        rows,
        title=(
            "Cold-path guard latency (solubility workflow, "
            f"{int_commands} commands; kernel {iterations} cold verdicts)"
        ),
    )
    emit("cold_guard_latency", rendered)
    trend(
        "cold_guard_latency",
        {
            "rule_visits_per_cmd_interpreted": round(visits_per_cmd_interpreted, 3),
            "rule_visits_per_cmd_compiled": round(visits_per_cmd_compiled, 3),
            "rule_visits_ratio": round(visits_ratio, 3),
            "cold_verdict_us_interpreted": round(interpreted_s / iterations * 1e6, 2),
            "cold_verdict_us_compiled": round(compiled_s / iterations * 1e6, 2),
            "speedup": round(speedup, 3),
        },
    )

    # Gate 1 (deterministic): compiled dispatch must consider >= 3x
    # fewer rules per command than the interpreted applies_to scan.
    assert visits_ratio >= 3.0, (
        f"compiled dispatch only cut rule visits by {visits_ratio:.2f}x "
        f"({visits_per_cmd_interpreted:.1f} -> {visits_per_cmd_compiled:.1f} per command)"
    )

    # Gate 2 (wall clock, conservative): the cold verdict must be
    # measurably faster end-to-end, not just visit-count-thinner.
    assert speedup >= 1.2, (
        f"cold-path speedup {speedup:.2f}x below the 1.2x floor "
        f"({interpreted_s / iterations * 1e6:.1f}us -> "
        f"{compiled_s / iterations * 1e6:.1f}us per verdict)"
    )

    benchmark(lambda: _cold_verdict_kernel(compiled=True, iterations=50, repeats=1))
    benchmark.extra_info["rule_visits_ratio"] = round(visits_ratio, 3)
    benchmark.extra_info["cold_speedup"] = round(speedup, 3)
