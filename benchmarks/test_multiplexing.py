"""§IV category 2 — arm-arm coordination.

Reproduces the two findings:

1. the frame-calibration experiment: fitting a rigid transform between
   the two testbed arms' coordinate systems leaves ~3 cm mean residual
   (the reason the lab keeps separate frames), and
2. both multiplexing policies *prevent* Bug B, which plain RABIT misses.
"""


from repro.analysis.report import format_table
from repro.faults.campaign import CAMPAIGN_BUGS, _prepare_deck
from repro.faults.mutation import apply_mutations
from repro.lab.workflows import build_testbed_workflow, run_workflow
from repro.testbed.calibration import run_calibration_experiment
from repro.testbed.deck import (
    attach_space_multiplexing,
    attach_time_multiplexing,
    make_testbed_rabit,
)

BUG_B = next(bug for bug in CAMPAIGN_BUGS if bug.bug_id == "MH4")


def _run_bug_b(attach=None):
    deck = _prepare_deck("fig5")
    rabit, proxies, _ = make_testbed_rabit(deck)
    if attach is not None:
        attach(rabit, deck)
    lines = apply_mutations(
        build_testbed_workflow(proxies), deck.world, BUG_B.mutations(proxies)
    )
    result = run_workflow(lines)
    collisions = [d for d in deck.world.damage_log if d.kind == "arm_collision"]
    return result, collisions


def test_calibration_and_multiplexing(emit, benchmark):
    calibration = run_calibration_experiment()
    assert 0.02 <= calibration.mean_error <= 0.045  # the paper's ~3 cm

    plain, plain_collisions = _run_bug_b()
    timed, timed_collisions = _run_bug_b(attach_time_multiplexing)
    spaced, spaced_collisions = _run_bug_b(attach_space_multiplexing)

    assert not plain.stopped_by_rabit and plain_collisions
    assert timed.stopped_by_rabit and not timed_collisions
    assert spaced.stopped_by_rabit and not spaced_collisions

    rows = [
        [
            "calibrated common frame",
            f"mean residual {calibration.mean_error * 100:.1f} cm "
            f"(max {calibration.max_error * 100:.1f} cm)",
            "abandoned (paper: ~3 cm error)",
        ],
        ["plain RABIT vs Bug B", f"{len(plain_collisions)} arm collision(s)", "missed"],
        ["time multiplexing vs Bug B", str(timed.alert), "prevented"],
        ["space multiplexing vs Bug B", str(spaced.alert), "prevented"],
    ]
    rendered = format_table(
        ["approach", "measurement", "outcome"],
        rows,
        title="§IV arm-arm coordination: calibration error and multiplexing",
    )
    emit("multiplexing", rendered)

    # Timed kernel: the calibration fit (Kabsch over the fiducial set).
    result = benchmark(run_calibration_experiment)
    benchmark.extra_info["mean_error_cm"] = round(result.mean_error * 100, 2)
