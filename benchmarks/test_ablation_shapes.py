"""Ablation — cuboid vs. refined device shapes (§V-C).

Participant P: "a centrifuge resembles a hemisphere more than a cuboid"
and cuboids force conservative keep-out volumes.  This ablation swaps the
Hein centrifuge's cuboid for a drum-plus-dome composite and measures how
much workspace the refinement frees for the gripper — while every point
of the *actual* device body stays covered.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.geometry.richshapes import CompositeShape, Hemisphere, VerticalCylinder
from repro.geometry.shapes import Cuboid

#: The Hein centrifuge's configured cuboid (lab/hein.py GEOMETRY).
CUBOID = Cuboid((-0.10, -0.48, 0.0), (0.10, -0.28, 0.25), name="centrifuge")

#: P's refined description: a drum body with a domed lid.
REFINED = CompositeShape(
    (
        VerticalCylinder((0.0, -0.38), (0.0, 0.15), radius=0.10, name="drum"),
        Hemisphere((0.0, -0.38, 0.15), radius=0.10, name="lid"),
    ),
    name="centrifuge",
)


def _sample_grid(n: int = 24):
    xs = np.linspace(CUBOID.lo[0], CUBOID.hi[0], n)
    ys = np.linspace(CUBOID.lo[1], CUBOID.hi[1], n)
    zs = np.linspace(CUBOID.lo[2], CUBOID.hi[2], n)
    for x in xs:
        for y in ys:
            for z in zs:
                yield (float(x), float(y), float(z))


def test_shape_refinement_frees_workspace(emit, benchmark):
    total = kept_out_cuboid = kept_out_refined = 0
    for p in _sample_grid():
        total += 1
        if CUBOID.contains(p):
            kept_out_cuboid += 1
        if REFINED.contains(p):
            kept_out_refined += 1

    # Soundness: the refined shape is a strict subset of the cuboid (the
    # physical device fits inside both), so nothing outside the cuboid is
    # newly claimed...
    assert kept_out_refined < kept_out_cuboid
    for p in _sample_grid(10):
        if REFINED.contains(p):
            assert CUBOID.contains(p, tol=1e-9)

    freed = kept_out_cuboid - kept_out_refined
    freed_pct = 100.0 * freed / kept_out_cuboid

    # ... and the refinement frees a substantial shoulder volume.
    assert freed_pct > 20.0

    rows = [
        ["bounding cuboid", f"{kept_out_cuboid}/{total}", "-"],
        ["drum + dome (refined)", f"{kept_out_refined}/{total}", f"{freed_pct:.1f} % freed"],
    ]
    rendered = format_table(
        ["centrifuge shape model", "grid points kept out", "workspace gained"],
        rows,
        title="Ablation: cuboid vs. refined shapes (the §V-C flexibility ask)",
    )
    emit("ablation_shapes", rendered)

    # Timed kernel: one containment probe per shape model over the grid —
    # the extra cost of shape fidelity per collision check.
    points = list(_sample_grid(12))

    def probe_refined():
        return sum(1 for p in points if REFINED.contains(p))

    benchmark(probe_refined)
    benchmark.extra_info["workspace_freed_percent"] = round(freed_pct, 1)
