"""Table II — actions, preconditions, and postconditions.

Regenerates the state-transition table from the loaded configuration
(§II-C: "we use the information from the JSON files to populate a state
transition table ... similar to Table II") and checks the three example
rows the paper prints.  The timed kernel is ``UpdateState`` — the
expected-state computation of Fig. 2 line 11.
"""

from repro.analysis.report import format_table
from repro.core.actions import ActionCall, ActionLabel, TransitionTable
from repro.core.state import LabState
from repro.lab.hein import build_hein_deck


def test_table2_regenerates(emit, benchmark):
    deck = build_hein_deck()
    table = TransitionTable()

    rows = [
        [row.example, row.preconditions, row.label.value, row.postconditions]
        for row in table.rows()
    ]
    rendered = format_table(
        ["Example action", "Preconditions", "Action label", "Postconditions"],
        rows,
        title="Table II — actions with pre/postconditions (full transition table)",
    )
    emit("table2_transition_table", rendered)

    # The paper's three example rows must be present verbatim.
    move = table.row(ActionLabel.MOVE_ROBOT_INSIDE)
    assert move.preconditions == "deviceDoorStatus[device] = 1"
    assert move.postconditions == "robotArmInside[robot][device] = 1"
    pick = table.row(ActionLabel.PICK_OBJECT)
    assert pick.preconditions == "robotArmHolding[robot] = 0"
    assert pick.postconditions == "robotArmHolding[robot] = 1"
    place = table.row(ActionLabel.PLACE_OBJECT)
    assert place.preconditions == "robotArmHolding[robot] = 1"
    assert place.postconditions == "robotArmHolding[robot] = 0"

    # Timed kernel: Fig. 2 line 11 on a representative action.
    state = LabState()
    state.set("container_at", "vial_1", "grid_a1")
    call = ActionCall(
        ActionLabel.PICK_OBJECT, "ur3e", robot="ur3e", location="grid_a1"
    )
    ctx = deck.model.transition_context()
    benchmark(lambda: table.expected_state(state, call, ctx))
    benchmark.extra_info["rows"] = len(rows)
