"""Table III — the 11 general rules, each triggered by a controlled
unsafe scenario (§IV controlled experiments).

The paper: "RABIT successfully detected unsafe behavior in all these
scenarios."  The bench runs one violating scenario per rule on a fresh
production deck and regenerates the table with detection outcomes.  The
timed kernel is one full scenario (deck build + setup + vetoed command).
"""

from repro.analysis.report import format_table
from repro.core.rulebase import GENERAL_RULES
from repro.lab.scenarios import GENERAL_SCENARIOS, run_scenario


def test_table3_all_general_rules_detected(emit, benchmark):
    outcomes = [run_scenario(s) for s in GENERAL_SCENARIOS]

    rows = []
    for rule, scenario, outcome in zip(GENERAL_RULES, GENERAL_SCENARIOS, outcomes):
        assert rule.rule_id == scenario.rule_id == outcome.rule_id
        rows.append(
            [
                rule.rule_id[1:],
                rule.description[:72],
                "detected" if outcome.attributed_correctly else "MISSED",
            ]
        )
    rendered = format_table(
        ["No.", "General rules", "Controlled violation"],
        rows,
        title="Table III — general rules for self-driving labs (all triggered)",
    )
    emit("table3_general_rules", rendered)

    assert all(o.attributed_correctly for o in outcomes), [
        (o.rule_id, str(o.alert)) for o in outcomes if not o.attributed_correctly
    ]

    # Timed kernel: the cheapest scenario end to end (G5: start an empty
    # hotplate) including deck construction, as the paper's testing loop
    # would run it.
    g5 = GENERAL_SCENARIOS[4]
    result = benchmark.pedantic(lambda: run_scenario(g5), rounds=3, iterations=1)
    assert result.attributed_correctly
    benchmark.extra_info["rules_detected"] = f"{len(outcomes)}/11"
