"""§IV detection-rate progression and the zero-false-positive property.

Paper: "Initially, RABIT detected 8 of them, resulting in a detection
rate of 50%.  After modifying RABIT, it successfully detected 12
scenarios, resulting in a detection rate of 75%.  With the Extended
Simulator on the side, we were able to detect one more scenario,
improving RABIT's detection rate to 81%. ... throughout testing, RABIT
never produced any false positives."
"""


from repro.analysis.metrics import campaign_stats
from repro.analysis.report import format_table
from repro.lab.workflows import (
    build_centrifuge_workflow,
    build_testbed_workflow,
    run_workflow,
)
from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

PAPER_PROGRESSION = {"initial": (8, 50), "modified": (12, 75), "modified_es": (13, 81)}


def test_progression_and_false_positives(emit, campaign_result, benchmark):
    rows = []
    for config, (detected, percent) in PAPER_PROGRESSION.items():
        stats = campaign_stats(campaign_result, config)
        assert stats.detected == detected, config
        assert stats.percent == percent, config
        rows.append(
            [config, f"{stats.detected}/{stats.total}", f"{stats.percent} %",
             f"{detected}/16", f"{percent} %"]
        )
    rendered = format_table(
        ["configuration", "detected", "rate", "paper detected", "paper rate"],
        rows,
        title="Detection-rate progression across RABIT revisions (§IV)",
    )

    # False-positive sweep: every safe workflow under every configuration
    # must complete with zero alerts (the alarm-fatigue property).
    fp_rows = []
    from repro.core.monitor import RabitOptions

    configs = {
        "initial": (RabitOptions.initial, False),
        "modified": (RabitOptions.modified, False),
        "modified_es": (RabitOptions.modified, True),
    }
    for config, (factory, use_es) in configs.items():
        for workflow_name in ("fig5", "centrifuge"):
            deck = build_testbed_deck(noise_sigma=0.003)
            if workflow_name == "centrifuge":
                vial = deck.vials["vial_t1"]
                vial.decap_vial()
                vial.contents.solid_mg = 5.0
                vial.contents.liquid_ml = 5.0
            rabit, proxies, _ = make_testbed_rabit(
                deck, options=factory(), use_extended_simulator=use_es
            )
            builder = (
                build_centrifuge_workflow
                if workflow_name == "centrifuge"
                else build_testbed_workflow
            )
            result = run_workflow(builder(proxies))
            assert result.completed and rabit.alert_count == 0, (config, workflow_name)
            fp_rows.append([config, workflow_name, "0 alerts, completed"])
    fp_table = format_table(
        ["configuration", "safe workflow", "outcome"],
        fp_rows,
        title="False-positive sweep: no false alarms in any configuration",
    )
    emit("detection_progression", rendered + "\n\n" + fp_table)

    # Timed kernel: the safe Fig. 5 workflow under modified RABIT.
    def one_safe_run():
        deck = build_testbed_deck(noise_sigma=0.003)
        rabit, proxies, _ = make_testbed_rabit(deck)
        return run_workflow(build_testbed_workflow(proxies))

    result = benchmark.pedantic(one_safe_run, rounds=2, iterations=1)
    assert result.completed
    benchmark.extra_info["progression"] = {
        c: f"{d}/16 ({p} %)" for c, (d, p) in PAPER_PROGRESSION.items()
    }
