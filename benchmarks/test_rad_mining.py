"""§II-A — constructing the rulebase from the Robot Arm Dataset.

Replays both labs' workflows to synthesize a RAD-like trace corpus, mines
precedence invariants, and checks the two rules the paper highlights:

- "device doors must be opened before a robot arm can enter them"
  (general — holds for every doored device in the corpus);
- "solids must be added to containers before liquids" (custom — holds in
  the Hein traces, violated by Berlinguette solvent-only runs).
"""

import pytest

from repro.analysis.report import format_table
from repro.rad.generator import generate_combined
from repro.rad.mining import mine_and_classify, mine_door_rules


@pytest.fixture(scope="module")
def dataset():
    return generate_combined(hein_sessions=5, berlinguette_sessions=4)


def test_rad_mining_recovers_paper_rules(emit, dataset, benchmark):
    classified = mine_and_classify(dataset, min_support=4)
    door_rules = mine_door_rules(dataset, min_support=3)

    # Headline custom rule: solids before liquids, Hein-only.
    solid_before_liquid = [
        r
        for r in classified
        if r.antecedent[0] == "start_dosing" and r.consequent[0] == "dose_liquid"
    ]
    assert solid_before_liquid, "solids-before-liquids not mined"
    assert solid_before_liquid[0].scope == "custom"
    assert solid_before_liquid[0].lab == "hein"

    # Headline general rule: doors open before entry, per doored device.
    by_device = {r.device: r for r in door_rules}
    assert by_device["dosing_device"].holds

    general = [r for r in classified if r.scope == "general"]
    custom = [r for r in classified if r.scope == "custom"]

    rows = [
        ["traces", str(len(dataset)), ""],
        ["command events", str(dataset.total_events()), ""],
        ["general invariants mined", str(len(general)), "rules that hold in both labs"],
        ["custom invariants mined", str(len(custom)), "rules unique to one lab"],
        [
            "solids-before-liquids",
            solid_before_liquid[0].describe()[:58],
            "paper: Hein-specific",
        ],
    ] + [
        ["door-before-enter", r.describe()[:58], "paper: general"]
        for r in door_rules
    ]
    rendered = format_table(
        ["quantity", "value", "note"],
        rows,
        title="§II-A rule mining from the synthetic RAD corpus",
    )
    emit("rad_mining", rendered)

    # Timed kernel: the per-lab mining + classification pass.
    benchmark(lambda: mine_and_classify(dataset, min_support=4))
    benchmark.extra_info["general_rules"] = len(general)
    benchmark.extra_info["custom_rules"] = len(custom)
