"""Collision sweep throughput: scalar reference vs batch engine.

The Extended Simulator's deck sweep is S trajectory samples against N
configured cuboids per command — the dominant real-CPU cost once the
§II-C GUI charge is bypassed.  This benchmark times the same 200-segment
× 20-cuboid scene through both implementations, asserts they agree on
every single pair (the differential suite's invariant, re-checked on the
benchmark scene), and requires the batch path to be at least 5× faster.
"""

import time

import numpy as np

from repro.analysis.report import format_table
from repro.geometry.batch import BatchCollisionEngine
from repro.geometry.collision import segment_cuboid_entry_time
from repro.geometry.shapes import Cuboid

N_SEGMENTS = 200
N_CUBOIDS = 20
MIN_SPEEDUP = 5.0


def _scene(seed: int = 7):
    rng = np.random.default_rng(seed)
    cuboids = []
    for i in range(N_CUBOIDS):
        lo = rng.uniform(-1.0, 0.8, size=3)
        hi = lo + rng.uniform(0.05, 0.5, size=3)
        cuboids.append(Cuboid(tuple(lo), tuple(hi), name=f"box_{i}"))
    starts = rng.uniform(-1.2, 1.2, size=(N_SEGMENTS, 3))
    ends = rng.uniform(-1.2, 1.2, size=(N_SEGMENTS, 3))
    return cuboids, starts, ends


def _scalar_sweep(cuboids, starts, ends):
    out = np.full((len(starts), len(cuboids)), np.nan)
    for s in range(len(starts)):
        p0, p1 = starts[s], ends[s]
        for n, box in enumerate(cuboids):
            t = segment_cuboid_entry_time(p0, p1, box)
            if t is not None:
                out[s, n] = t
    return out


def _best_of(k, fn):
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_collision_throughput(emit, trend, benchmark):
    cuboids, starts, ends = _scene()
    engine = BatchCollisionEngine(cuboids)

    # Correctness first: the two paths must agree on every pair of the
    # benchmark scene before their timings mean anything.
    scalar_times = _scalar_sweep(cuboids, starts, ends)
    batch_times = engine.segment_entry_times(starts, ends)
    scalar_hit = ~np.isnan(scalar_times)
    batch_hit = ~np.isnan(batch_times)
    assert np.array_equal(scalar_hit, batch_hit)
    assert np.array_equal(scalar_times[scalar_hit], batch_times[batch_hit])

    pairs = N_SEGMENTS * N_CUBOIDS
    t_scalar = _best_of(3, lambda: _scalar_sweep(cuboids, starts, ends))
    t_batch = _best_of(10, lambda: engine.segment_entry_times(starts, ends))
    speedup = t_scalar / t_batch

    rows = [
        [
            "scalar reference",
            f"{t_scalar * 1e3:.2f} ms",
            f"{N_SEGMENTS / t_scalar:,.0f}",
            f"{pairs / t_scalar:,.0f}",
            "1.0x",
        ],
        [
            "batch engine",
            f"{t_batch * 1e3:.2f} ms",
            f"{N_SEGMENTS / t_batch:,.0f}",
            f"{pairs / t_batch:,.0f}",
            f"{speedup:.1f}x",
        ],
    ]
    rendered = format_table(
        ["implementation", "sweep time", "segments/s", "pair checks/s", "speedup"],
        rows,
        title=(
            f"Collision sweep throughput "
            f"({N_SEGMENTS} segments x {N_CUBOIDS} cuboids, 0 disagreements)"
        ),
    )
    emit("collision_throughput", rendered)
    trend(
        "collision_throughput",
        {
            "scalar_ms": round(t_scalar * 1e3, 4),
            "batch_ms": round(t_batch * 1e3, 4),
            "speedup": round(speedup, 2),
            "segments_per_second_batch": round(N_SEGMENTS / t_batch),
            "pair_checks_per_second_batch": round(pairs / t_batch),
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than scalar "
        f"(required: {MIN_SPEEDUP}x)"
    )

    benchmark(lambda: engine.segment_entry_times(starts, ends))
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    benchmark.extra_info["segments_per_second_batch"] = round(N_SEGMENTS / t_batch)
    benchmark.extra_info["segments_per_second_scalar"] = round(N_SEGMENTS / t_scalar)
