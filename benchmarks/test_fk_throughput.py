"""Trajectory forward-kinematics throughput: scalar reference vs batched kernel.

A guarded move costs ``resolution x dof`` forward-kinematics evaluations
before the collision check even starts — the kinematics half of the
Extended Simulator's polling loop.  This benchmark runs the same
trajectory sweep (S polled postures -> full-arm polylines) through the
scalar per-sample loop and the batched ``(S, dof)`` kernel, re-checks
that they agree exactly on the benchmark scene, and requires the batched
path to be at least 5x faster.
"""

import time

import numpy as np

from repro.analysis.report import format_table
from repro.kinematics.profiles import UR5E
from repro.kinematics.trajectory import plan_joint_trajectory

N_TRAJECTORIES = 24
RESOLUTION = 60
MIN_SPEEDUP = 5.0


def _scene(seed: int = 7):
    """Random joint-space motions on the UR5e, within joint limits."""
    rng = np.random.default_rng(seed)
    chain = UR5E.chain()
    lo, hi = UR5E.limit_arrays()
    trajectories = [
        plan_joint_trajectory(chain, rng.uniform(lo, hi), rng.uniform(lo, hi))
        for _ in range(N_TRAJECTORIES)
    ]
    return chain, trajectories


def _scalar_sweep(trajectories):
    """The reference: per-sample `joint_positions` loop (link_paths)."""
    return [traj.link_paths(RESOLUTION) for traj in trajectories]


def _batch_sweep(trajectories):
    """The batched kernel: one `(S, dof)` FK pass per trajectory."""
    return [traj.link_paths_array(RESOLUTION) for traj in trajectories]


def _best_of(k, fn):
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fk_throughput(emit, trend, benchmark):
    chain, trajectories = _scene()

    # Correctness first: exact scalar/batch agreement on every polled
    # posture of the benchmark scene (the differential suite's invariant).
    scalar_paths = _scalar_sweep(trajectories)
    batch_paths = _batch_sweep(trajectories)
    disagreements = 0
    for scalar_traj, batch_traj in zip(scalar_paths, batch_paths):
        for frame, row in zip(scalar_traj, batch_traj):
            if not np.array_equal(np.array(frame), row):
                disagreements += 1
    assert disagreements == 0

    samples = N_TRAJECTORIES * (RESOLUTION + 1)
    fk_evals = samples * chain.dof
    t_scalar = _best_of(3, lambda: _scalar_sweep(trajectories))
    t_batch = _best_of(10, lambda: _batch_sweep(trajectories))
    speedup = t_scalar / t_batch

    rows = [
        [
            "scalar reference",
            f"{t_scalar * 1e3:.2f} ms",
            f"{samples / t_scalar:,.0f}",
            f"{fk_evals / t_scalar:,.0f}",
            "1.0x",
        ],
        [
            "batched kernel",
            f"{t_batch * 1e3:.2f} ms",
            f"{samples / t_batch:,.0f}",
            f"{fk_evals / t_batch:,.0f}",
            f"{speedup:.1f}x",
        ],
    ]
    rendered = format_table(
        ["implementation", "sweep time", "postures/s", "link FK evals/s", "speedup"],
        rows,
        title=(
            f"Trajectory FK throughput ({N_TRAJECTORIES} trajectories x "
            f"{RESOLUTION + 1} samples x {chain.dof} links, 0 disagreements)"
        ),
    )
    emit("fk_throughput", rendered)
    trend(
        "fk_throughput",
        {
            "scalar_ms": round(t_scalar * 1e3, 4),
            "batch_ms": round(t_batch * 1e3, 4),
            "speedup": round(speedup, 2),
            "postures_per_second_batch": round(samples / t_batch),
            "fk_evals_per_second_batch": round(fk_evals / t_batch),
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched FK kernel only {speedup:.1f}x faster than scalar "
        f"(required: {MIN_SPEEDUP}x)"
    )

    benchmark(lambda: _batch_sweep(trajectories))
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    benchmark.extra_info["postures_per_second_batch"] = round(samples / t_batch)
    benchmark.extra_info["postures_per_second_scalar"] = round(samples / t_scalar)
