"""Guard-service throughput: K concurrent sessions vs one sequential loop.

The service's pitch is that one guard process can front many lab
sessions at once: while one session's arm is physically moving (modeled
here as a real ``asyncio.sleep`` per command — a scaled-down stand-in
for multi-second robot motions), the event loop runs other sessions'
guard work, and their collision sweeps drain through the shared
:class:`~repro.serve.batcher.SweepBatcher` as cross-session batches.

The baseline is the honest alternative: one in-process monitor guarding
the same command mix sequentially, paying the same per-command device
I/O as a blocking ``time.sleep``.  Both sides run a warmup phase first
so neither pays plan-cache/engine/rulebase cold costs inside the timed
region.  The gate is aggregate guarded commands/sec at K=8 ≥ 3x the
sequential rate, plus two structural assertions: sweeps actually
coalesced across sessions (max batch ≥ 2) and nothing degraded (the
queue never hit its high watermark at this load).
"""

import asyncio
import os
import tempfile
import time

from repro.analysis.report import format_table
from repro.core.interceptor import BASELINE_DURATION, resolve_action
from repro.serve.client import ServeClient
from repro.serve.server import GuardServer
from repro.serve.session import build_guarded_deck, default_serve_options

#: Modeled device round-trip per command (arm motion, lab I/O).  Real
#: arm moves run seconds; 15 ms keeps the benchmark fast while leaving
#: the CPU/IO ratio (~3.5 ms guard CPU per command on one core) in the
#: same regime a real deployment would see.
IO_LATENCY = 0.015
DECK = "hein_lean"
SESSIONS = 8
WARMUP_COMMANDS = 4
COMMANDS_PER_SESSION = 25
SEQUENTIAL_COMMANDS = 30
MIN_SPEEDUP = 3.0

#: The per-session command mix: alternating safe motions so every
#: command takes the full guard path (rules + trajectory sweep).
COMMANDS = [
    ("go_to_home_pose", ()),
    ("move_to_location", ("grid_a1_safe",)),
]


def _run_sequential(n_warmup: int, n_timed: int) -> float:
    """Guarded commands/sec for the classic one-session blocking loop."""
    deck, rabit = build_guarded_deck(DECK, {}, None, default_serve_options())
    device = deck.devices["ur3e"]

    def run_one(i: int, io: float) -> None:
        method, args = COMMANDS[i % len(COMMANDS)]
        attr = getattr(device, method)
        call = resolve_action(device, method, args, {})
        rabit.clock.advance(
            device.connection.command_latency + BASELINE_DURATION.get(call.label, 1.0),
            "experiment",
        )

        def execute():
            if io:
                time.sleep(io)
            return attr(*args)

        rabit.guard(call, execute)

    for i in range(n_warmup):
        run_one(i, 0.0)
    t0 = time.perf_counter()
    for i in range(n_timed):
        run_one(i, IO_LATENCY)
    return n_timed / (time.perf_counter() - t0)


async def _run_service(n_warmup: int, n_timed: int):
    """(commands/sec, batcher stats) for K concurrent service sessions."""
    server = GuardServer(max_sessions=SESSIONS)
    path = os.path.join(tempfile.mkdtemp(prefix="rabit-serve-bench-"), "guard.sock")
    await server.start_unix(path)
    try:
        clients = []
        for _ in range(SESSIONS):
            client = await ServeClient.open_unix(path)
            await client.open_session(deck=DECK, io_latency=IO_LATENCY)
            clients.append(client)

        async def drive(client: ServeClient, count: int) -> None:
            for i in range(count):
                method, args = COMMANDS[i % len(COMMANDS)]
                response = await client.command("ur3e", method, *args)
                assert response["ok"], response

        await asyncio.gather(*[drive(c, n_warmup) for c in clients])
        t0 = time.perf_counter()
        await asyncio.gather(*[drive(c, n_timed) for c in clients])
        wall = time.perf_counter() - t0
        stats = dict(server.batcher.stats)
        for client in clients:
            await client.close()
        return SESSIONS * n_timed / wall, stats
    finally:
        await server.stop()


def test_serve_throughput(emit, trend, benchmark):
    seq_rate = _run_sequential(WARMUP_COMMANDS, SEQUENTIAL_COMMANDS)
    service_rate, sweeps = asyncio.run(
        _run_service(WARMUP_COMMANDS, COMMANDS_PER_SESSION)
    )
    speedup = service_rate / seq_rate

    rows = [
        ["sequential (K=1)", f"{seq_rate:.1f}", "1.00x", "-"],
        [
            f"service (K={SESSIONS})",
            f"{service_rate:.1f}",
            f"{speedup:.2f}x",
            f"max batch {sweeps['max_batch']}",
        ],
    ]
    rendered = format_table(
        ["execution", "guarded cmds/s", "speedup", "sweep batching"],
        rows,
        title=(
            f"Guard-service throughput ({DECK} deck, {IO_LATENCY * 1e3:.0f} ms "
            f"modeled device I/O, {os.cpu_count()} CPUs; gate >= {MIN_SPEEDUP}x)"
        ),
    )
    emit("serve_throughput", rendered)
    trend(
        "serve_throughput",
        {
            "sessions": SESSIONS,
            "io_latency_ms": IO_LATENCY * 1e3,
            "sequential_cmds_per_s": round(seq_rate, 1),
            "service_cmds_per_s": round(service_rate, 1),
            "speedup_vs_sequential": round(speedup, 2),
            "sweep_batches": sweeps["batches"],
            "max_batch": sweeps["max_batch"],
            "degraded": sweeps["degraded"],
            "throttled": sweeps["throttled"],
        },
    )

    # Structural checks first: the speedup only counts if sweeps really
    # coalesced across sessions and nothing fell back to degraded probes.
    assert sweeps["max_batch"] >= 2, f"no cross-session batching: {sweeps}"
    assert sweeps["degraded"] == 0, f"degraded sweeps at benchmark load: {sweeps}"
    assert speedup >= MIN_SPEEDUP, (
        f"K={SESSIONS} service only {speedup:.2f}x the sequential rate "
        f"(required: {MIN_SPEEDUP}x)"
    )

    # Timed kernel for pytest-benchmark comparability: one short service
    # burst end to end (connect, open, guard, close).
    benchmark.pedantic(
        lambda: asyncio.run(_run_service(0, 2)), rounds=1, iterations=1
    )
    benchmark.extra_info["speedup_vs_sequential"] = round(speedup, 2)
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["max_batch"] = sweeps["max_batch"]
