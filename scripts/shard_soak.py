#!/usr/bin/env python
"""Sharded-service soak: K sessions across N workers, books balanced.

The nightly tier runs this harder than any unit test can afford: many
concurrent sessions spread across a real forked worker fleet, every
session driving a full command script, and at the end one question —
did the deterministic cross-worker merge account for *exactly* the work
that was issued?  Lost updates, double counts, or a worker silently
dropping sessions all show up as a totals mismatch here long before
they would corrupt an operator's dashboard.

Checks (exit 1 on any failure):

- every session's journal has one entry per issued command;
- merged ``totals.commands``  == sessions x commands issued;
- merged ``totals.sessions_opened`` == sessions;
- the per-worker breakdown sums to the totals (the merge invariant);
- every worker stayed alive (no silent respawn during the soak).

Usage::

    python scripts/shard_soak.py --sessions 12 --workers 3 --commands 40
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.shard import ShardConfig, ShardService  # noqa: E402

COMMANDS = [
    ("go_to_home_pose", ()),
    ("move_to_location", ("grid_a1_safe",)),
]


async def _drive(host: str, port: int, key: str, commands: int) -> int:
    client = await ServeClient.open_tcp(host, port)
    await client.open_session(deck="hein_lean", key=key)
    for i in range(commands):
        method, args = COMMANDS[i % len(COMMANDS)]
        response = await client.command("ur3e", method, *args)
        assert response["ok"], response
    journal = await client.journal()
    await client.close()
    return len(journal)


async def soak(args: argparse.Namespace) -> int:
    service = ShardService(
        ShardConfig(
            workers=args.workers,
            max_sessions=args.sessions,
            default_io_latency=args.io_latency,
        )
    )
    await service.start()
    failures = []
    try:
        journal_lengths = await asyncio.gather(
            *[
                _drive(
                    service.config.host,
                    service.config.port,
                    f"soak-{i}",
                    args.commands,
                )
                for i in range(args.sessions)
            ]
        )
        for i, length in enumerate(journal_lengths):
            if length != args.commands:
                failures.append(
                    f"session soak-{i}: journal has {length} entries, "
                    f"expected {args.commands}"
                )

        merged = await service.merged_stats()
        issued = args.sessions * args.commands
        totals = merged["totals"]
        if totals.get("commands") != issued:
            failures.append(
                f"merged commands {totals.get('commands')} != issued {issued}"
            )
        if totals.get("sessions_opened") != args.sessions:
            failures.append(
                f"merged sessions_opened {totals.get('sessions_opened')} "
                f"!= {args.sessions}"
            )
        per_worker = [p for p in merged["per_worker"] if p is not None]
        if len(per_worker) != args.workers:
            failures.append(
                f"only {len(per_worker)}/{args.workers} workers answered "
                "the control channel"
            )
        breakdown = [p.get("commands", 0) for p in per_worker]
        if sum(breakdown) != totals.get("commands"):
            failures.append(
                f"per-worker commands {breakdown} do not sum to totals "
                f"{totals.get('commands')}"
            )
        if merged["supervisor"]["workers_respawned"] != 0:
            failures.append(
                "workers respawned during the soak: "
                f"{merged['supervisor']['respawns_per_worker']}"
            )

        print(
            f"soak: {args.sessions} sessions x {args.commands} commands "
            f"across {args.workers} workers"
        )
        print(f"  per-worker commands: {breakdown}")
        print(f"  router spread:       {merged['router']['routed_per_worker']}")
        print(f"  merged totals:       commands={totals.get('commands')} "
              f"sessions_opened={totals.get('sessions_opened')}")
    finally:
        await service.stop()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("soak passed: merged stats consistent with issued work")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=12)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--commands", type=int, default=40)
    parser.add_argument(
        "--io-latency", type=float, default=0.005, dest="io_latency",
        help="modeled per-command device I/O, seconds",
    )
    args = parser.parse_args(argv)
    return asyncio.run(soak(args))


if __name__ == "__main__":
    raise SystemExit(main())
