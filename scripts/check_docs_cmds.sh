#!/usr/bin/env bash
# Execute every documented CLI command so the docs cannot go stale.
#
# Scans fenced ```bash/```sh blocks in README.md and docs/*.md, extracts
# each plain `python -m repro ...` line, and runs it in a scratch
# directory (with examples/, tests/, benchmarks/ symlinked in, so
# repo-relative paths in the docs resolve and artifacts never dirty the
# working tree).  Conventions the docs follow:
#
#   - plain lines are executable and MUST exit 0 (commands run in file
#     order, so an `export --out f.json` line may feed a later
#     `run --spec f.json` line);
#   - `$ `-prefixed lines are illustrative transcripts and are skipped;
#   - `serve` is denylisted (it runs until killed);
#   - trailing-backslash continuations are joined before matching.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
ln -s "$ROOT/examples" "$ROOT/tests" "$ROOT/benchmarks" "$WORK/"

python - "$ROOT" README.md docs/*.md <<'EOF' > "$WORK/cmds.txt"
import re
import sys
from pathlib import Path

root = Path(sys.argv[1])
commands = []
for name in sys.argv[2:]:
    lines = (root / name).read_text().splitlines()
    in_block = False
    joined = []
    it = iter(lines)
    for line in it:
        fence = re.match(r"^```(\w*)", line)
        if fence:
            in_block = not in_block and fence.group(1) in ("bash", "sh")
            continue
        if not in_block:
            continue
        while line.rstrip().endswith("\\"):
            line = line.rstrip()[:-1] + " " + next(it, "").strip()
        cmd = line.strip()
        if not cmd.startswith("python -m repro"):
            continue  # comments, transcripts ($ ...), non-repro tools
        cmd = cmd.split("  #")[0].strip()
        if cmd.split()[3:4] == ["serve"]:
            continue  # non-terminating by design
        commands.append((name, cmd))

for name, cmd in commands:
    print(f"{name}\t{cmd}")
EOF

total=0
while IFS=$'\t' read -r doc cmd; do
    total=$((total + 1))
    echo "==> [$doc] $cmd"
    (cd "$WORK" && eval "$cmd" > /dev/null) || {
        echo "FAILED [$doc]: $cmd" >&2
        exit 1
    }
done < "$WORK/cmds.txt"

echo "docs-cmds: $total documented commands executed ok"
