#!/usr/bin/env bash
# The single source of truth for the CI gate sequence.
#
# Both `make check` and the GitHub Actions check job run this script, so
# the two can never drift apart again (previously the Makefile ran the
# full 4-worker parallel differential while CI silently excluded it).
#
# Knobs (environment):
#   CI_GATES_FULL=1          also run the 4-worker parallel differential
#                            (needs >= 4 usable cores; the nightly tier
#                            and `make check` set it, 2-core PR runners
#                            do not)
#   COMPILED_DIFF_SAMPLES=N  widen the compiled-vs-interpreted mutant
#                            corpus sample (default 8; nightly uses more)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> tier-1 test suite"
python -m pytest -x -q tests/

echo "==> differential & property harnesses"
python -m pytest -q \
    tests/test_collision_differential.py \
    tests/test_kinematics_differential.py \
    tests/test_stateful_no_false_positives.py \
    tests/test_obs_differential.py \
    tests/test_compiled_differential.py \
    tests/test_serve_differential.py

if [ "${CI_GATES_FULL:-0}" = "1" ]; then
    echo "==> parallel-vs-sequential differential (full, incl. 4-worker pool)"
    python -m pytest -q tests/test_parallel_differential.py
else
    echo "==> parallel-vs-sequential differential (2-worker pool)"
    python -m pytest -q tests/test_parallel_differential.py -k "not workers4"
fi

echo "==> golden-trace replay gate (byte-identical record/replay)"
python -m repro replay --diff tests/fixtures/traces/*.trace.jsonl

echo "==> benchmark gates (throughput, latency, observability, cold guard path, serve)"
python -m pytest -q \
    benchmarks/test_collision_throughput.py \
    benchmarks/test_fk_throughput.py \
    benchmarks/test_latency_overhead.py \
    benchmarks/test_obs_overhead.py \
    benchmarks/test_cold_guard_latency.py \
    benchmarks/test_montecarlo_throughput.py \
    benchmarks/test_serve_throughput.py \
    benchmarks/test_shard_throughput.py

echo "==> perf trend regression gate"
python benchmarks/check_trend.py

echo "==> docs gates (relative links resolve, documented commands execute)"
bash scripts/check_docs_links.sh
bash scripts/check_docs_cmds.sh

echo "==> all CI gates passed"
