#!/usr/bin/env bash
# Check that every relative markdown link in the repo docs resolves.
#
# Scans all tracked *.md files at the repo root plus docs/**.  External
# links (http/https/mailto) are not fetched; pure-fragment links (#…)
# are skipped; a fragment on a relative link is stripped before the
# existence check.
set -euo pipefail

cd "$(dirname "$0")/.."

python - *.md docs/*.md <<'EOF'
import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
broken = []
checked = 0
for name in sys.argv[1:]:
    path = Path(name)
    text = path.read_text()
    # Strip fenced code blocks: link-shaped text inside them is code.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        checked += 1
        rel = target.split("#", 1)[0]
        if not (path.parent / rel).exists():
            broken.append(f"{name}: {target}")

if broken:
    print("broken relative links:", file=sys.stderr)
    for entry in broken:
        print(f"  {entry}", file=sys.stderr)
    sys.exit(1)
print(f"docs-links: {checked} relative links resolve")
EOF
