"""Small 3D vector helpers.

All geometry in the reproduction is expressed in metres, matching the
coordinate tables in the paper (e.g. Fig. 6's ``"pickup": [0.15, 0.45, 0.10]``
is 15 cm / 45 cm / 10 cm in the robot arm's own frame).

Vectors are plain ``numpy.ndarray`` objects of shape ``(3,)`` and dtype
``float64``; :func:`as_vec3` is the single conversion point so that lists,
tuples, and arrays are all accepted by higher layers.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

#: Type alias accepted anywhere a 3D point is expected.
Vec3 = np.ndarray

VecLike = Union[Sequence[float], np.ndarray]


def as_vec3(value: VecLike) -> Vec3:
    """Convert *value* to a float64 numpy array of shape ``(3,)``.

    Raises :class:`ValueError` if the input does not have exactly three
    components.  This is the error the configuration validator surfaces when
    a location entry in a JSON file has the wrong arity (one of the pilot
    study's observed data-entry mistakes).
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (3,):
        raise ValueError(f"expected a 3D point, got shape {arr.shape}: {value!r}")
    return arr


def norm(v: VecLike) -> float:
    """Euclidean length of *v*."""
    return float(np.linalg.norm(as_vec3(v)))


def distance(a: VecLike, b: VecLike) -> float:
    """Euclidean distance between points *a* and *b*."""
    return float(np.linalg.norm(as_vec3(a) - as_vec3(b)))


def lerp(a: VecLike, b: VecLike, t: float) -> Vec3:
    """Linear interpolation between *a* (``t=0``) and *b* (``t=1``)."""
    av, bv = as_vec3(a), as_vec3(b)
    return av + (bv - av) * float(t)


def midpoints(a: VecLike, b: VecLike, count: int) -> Iterable[Vec3]:
    """Yield *count* evenly spaced points strictly between *a* and *b*."""
    for i in range(1, count + 1):
        yield lerp(a, b, i / (count + 1))
