"""Geometric primitives used throughout the RABIT reproduction.

This package is the lowest layer of the stack.  It provides:

- :mod:`repro.geometry.vec` -- small 3D vector helpers on top of numpy.
- :mod:`repro.geometry.transforms` -- homogeneous transforms and named
  coordinate frames (each robot arm keeps its own frame, as in the paper).
- :mod:`repro.geometry.shapes` -- axis-aligned cuboids, the shape the paper's
  Extended Simulator uses to model every automation device ("we model each
  device on the experiment deck as a 3D cuboid object").
- :mod:`repro.geometry.collision` -- point/segment/box intersection tests used
  by both the target-location precondition check and the full trajectory
  sweep of the Extended Simulator.  These scalar functions are the
  *reference implementation*; the batch engine must agree with them exactly.
- :mod:`repro.geometry.batch` -- :class:`BatchCollisionEngine`, the
  vectorized fast path: all deck cuboids packed into ``(N, 3)`` arrays,
  all trajectory segments swept in one broadcasted slab-method pass.
- :mod:`repro.geometry.walls` -- software-defined walls used for space
  multiplexing of multiple robot arms.
"""

from repro.geometry.vec import Vec3, as_vec3, norm, distance, lerp
from repro.geometry.transforms import (
    Transform,
    FrameRegistry,
    rotation_x,
    rotation_y,
    rotation_z,
    translation,
    identity,
    estimate_rigid_transform,
)
from repro.geometry.shapes import Cuboid, bounding_cuboid
from repro.geometry.richshapes import (
    CompositeShape,
    Hemisphere,
    Shape,
    VerticalCylinder,
    shape_from_spec,
)
from repro.geometry.collision import (
    point_in_cuboid,
    segment_intersects_cuboid,
    cuboids_overlap,
    segment_cuboid_entry_time,
    polyline_intersects_cuboid,
    CollisionHit,
    first_collision,
)
from repro.geometry.batch import BatchCollisionEngine
from repro.geometry.walls import SoftwareWall, Workspace

__all__ = [
    "Vec3",
    "as_vec3",
    "norm",
    "distance",
    "lerp",
    "Transform",
    "FrameRegistry",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "translation",
    "identity",
    "estimate_rigid_transform",
    "Cuboid",
    "bounding_cuboid",
    "CompositeShape",
    "Hemisphere",
    "Shape",
    "VerticalCylinder",
    "shape_from_spec",
    "point_in_cuboid",
    "segment_intersects_cuboid",
    "cuboids_overlap",
    "segment_cuboid_entry_time",
    "polyline_intersects_cuboid",
    "CollisionHit",
    "first_collision",
    "BatchCollisionEngine",
    "SoftwareWall",
    "Workspace",
]
