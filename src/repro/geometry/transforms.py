"""Homogeneous transforms and named coordinate frames.

The paper keeps each robot arm in its own coordinate system ("the *de facto*
approach in the Hein Lab") because mapping the low-precision testbed arms to
a common frame produced ~3 cm of error.  This module provides:

- :class:`Transform` -- a rigid transform (rotation + translation) with
  composition, inversion, and point mapping.
- :class:`FrameRegistry` -- a registry of named frames with transforms
  between them, so the testbed calibration experiment can express "ViperX
  frame -> world frame" and measure residual error.
- :func:`estimate_rigid_transform` -- the Kabsch/Umeyama least-squares fit
  used by the calibration experiment in §IV to build the transformation
  matrix between two arms' coordinate systems from noisy point pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.geometry.vec import Vec3, as_vec3


class Transform:
    """A rigid transform: ``p_out = R @ p_in + t``.

    Internally stored as a 4x4 homogeneous matrix.  Instances are immutable;
    every operation returns a new :class:`Transform`.
    """

    __slots__ = ("_m",)

    def __init__(self, matrix: np.ndarray | None = None) -> None:
        if matrix is None:
            matrix = np.eye(4)
        m = np.asarray(matrix, dtype=np.float64)
        if m.shape != (4, 4):
            raise ValueError(f"expected a 4x4 matrix, got shape {m.shape}")
        self._m = m.copy()
        self._m.setflags(write=False)

    # -- accessors ---------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The underlying read-only 4x4 homogeneous matrix."""
        return self._m

    @property
    def rotation(self) -> np.ndarray:
        """The 3x3 rotation block."""
        return self._m[:3, :3]

    @property
    def translation(self) -> Vec3:
        """The translation column."""
        return self._m[:3, 3].copy()

    # -- operations --------------------------------------------------------

    def apply(self, point: Sequence[float]) -> Vec3:
        """Map *point* through this transform."""
        p = as_vec3(point)
        return self.rotation @ p + self._m[:3, 3]

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Map an ``(N, 3)`` array of points through this transform."""
        pts = np.asarray(points, dtype=np.float64)
        return pts @ self.rotation.T + self._m[:3, 3]

    def compose(self, other: "Transform") -> "Transform":
        """Return ``self ∘ other`` (apply *other* first, then *self*)."""
        return Transform(self._m @ other._m)

    def __matmul__(self, other: "Transform") -> "Transform":
        return self.compose(other)

    def inverse(self) -> "Transform":
        """Return the inverse rigid transform."""
        r_inv = self.rotation.T
        t_inv = -r_inv @ self._m[:3, 3]
        m = np.eye(4)
        m[:3, :3] = r_inv
        m[:3, 3] = t_inv
        return Transform(m)

    def is_close(self, other: "Transform", atol: float = 1e-9) -> bool:
        """Whether two transforms are numerically equal within *atol*."""
        return bool(np.allclose(self._m, other._m, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        t = self.translation
        return f"Transform(t=[{t[0]:.4f}, {t[1]:.4f}, {t[2]:.4f}])"


def identity() -> Transform:
    """The identity transform."""
    return Transform()


def translation(offset: Sequence[float]) -> Transform:
    """A pure translation by *offset*."""
    m = np.eye(4)
    m[:3, 3] = as_vec3(offset)
    return Transform(m)


def _rotation(axis: int, angle: float) -> Transform:
    c, s = np.cos(angle), np.sin(angle)
    m = np.eye(4)
    if axis == 0:
        m[1, 1], m[1, 2], m[2, 1], m[2, 2] = c, -s, s, c
    elif axis == 1:
        m[0, 0], m[0, 2], m[2, 0], m[2, 2] = c, s, -s, c
    else:
        m[0, 0], m[0, 1], m[1, 0], m[1, 1] = c, -s, s, c
    return Transform(m)


def rotation_x(angle: float) -> Transform:
    """Rotation about the X axis by *angle* radians."""
    return _rotation(0, angle)


def rotation_y(angle: float) -> Transform:
    """Rotation about the Y axis by *angle* radians."""
    return _rotation(1, angle)


def rotation_z(angle: float) -> Transform:
    """Rotation about the Z axis by *angle* radians."""
    return _rotation(2, angle)


class FrameRegistry:
    """Named coordinate frames with transforms to a common world frame.

    The registry answers "map this point from frame A to frame B" queries,
    which is how the multi-arm calibration experiment expresses positions of
    one robot in another robot's coordinate system.
    """

    WORLD = "world"

    def __init__(self) -> None:
        self._to_world: Dict[str, Transform] = {self.WORLD: identity()}

    def register(self, name: str, to_world: Transform) -> None:
        """Register frame *name* with its transform into the world frame."""
        if name == self.WORLD:
            raise ValueError("the world frame cannot be re-registered")
        self._to_world[name] = to_world

    def frames(self) -> Tuple[str, ...]:
        """All registered frame names, world first."""
        return tuple(self._to_world)

    def to_world(self, frame: str) -> Transform:
        """Transform mapping points in *frame* to world coordinates."""
        try:
            return self._to_world[frame]
        except KeyError:
            raise KeyError(f"unknown frame {frame!r}; registered: {sorted(self._to_world)}") from None

    def transform_between(self, source: str, target: str) -> Transform:
        """Transform mapping points in *source* frame to *target* frame."""
        return self.to_world(target).inverse() @ self.to_world(source)

    def map_point(self, point: Sequence[float], source: str, target: str) -> Vec3:
        """Map a single point from *source* frame to *target* frame."""
        return self.transform_between(source, target).apply(point)


def estimate_rigid_transform(
    source_points: Iterable[Sequence[float]],
    target_points: Iterable[Sequence[float]],
) -> Transform:
    """Least-squares rigid transform mapping *source_points* onto *target_points*.

    Implements the Kabsch algorithm (SVD of the cross-covariance matrix),
    the standard approach the paper alludes to with "transforming both robot
    arms' coordinate systems to a global coordinate system using a
    transformation matrix".  Used by the calibration experiment to measure
    the residual error (~3 cm in the paper) under testbed noise.

    Requires at least three non-collinear point pairs.
    """
    src = np.array([as_vec3(p) for p in source_points], dtype=np.float64)
    dst = np.array([as_vec3(p) for p in target_points], dtype=np.float64)
    if src.shape != dst.shape:
        raise ValueError("source and target point sets must have equal length")
    if src.shape[0] < 3:
        raise ValueError("at least three point pairs are required")

    src_centroid = src.mean(axis=0)
    dst_centroid = dst.mean(axis=0)
    src_c = src - src_centroid
    dst_c = dst - dst_centroid

    h = src_c.T @ dst_c
    u, _, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T

    m = np.eye(4)
    m[:3, :3] = rotation
    m[:3, 3] = dst_centroid - rotation @ src_centroid
    return Transform(m)
