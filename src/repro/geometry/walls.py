"""Software-defined walls and workspaces for space multiplexing.

For space multiplexing the paper adds "a software-defined wall between the
two robot arms in their environments, providing each robot with its own
dedicated space in which it can move, while allowing to let them move
concurrently".  A :class:`SoftwareWall` is a half-space constraint; a
:class:`Workspace` combines an outer bounding cuboid (the physical room:
walls, floor, ceiling) with any number of software walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.shapes import Cuboid
from repro.geometry.vec import as_vec3


@dataclass(frozen=True)
class SoftwareWall:
    """A planar half-space constraint: allowed points satisfy ``n·p <= offset``.

    ``normal`` need not be unit length; it is normalized on construction.
    ``name`` appears in violation messages, e.g. ``"viperx_ned2_divider"``.
    """

    normal: Tuple[float, float, float]
    offset: float
    name: str = "wall"

    def __post_init__(self) -> None:
        n = as_vec3(self.normal)
        length = float(np.linalg.norm(n))
        if length < 1e-12:
            raise ValueError("wall normal must be nonzero")
        object.__setattr__(self, "normal", tuple(float(x) for x in n / length))
        object.__setattr__(self, "offset", float(self.offset) / length)

    def allows(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """Whether *point* is on the permitted side of the wall."""
        return float(np.dot(as_vec3(self.normal), as_vec3(point))) <= self.offset + tol

    def signed_distance(self, point: Sequence[float]) -> float:
        """Signed distance to the wall plane (negative = allowed side)."""
        return float(np.dot(as_vec3(self.normal), as_vec3(point))) - self.offset

    def flipped(self, name: Optional[str] = None) -> "SoftwareWall":
        """The complementary half-space (the other robot's side)."""
        n = as_vec3(self.normal)
        return SoftwareWall(tuple(-n), -self.offset, name=name or self.name)


@dataclass
class Workspace:
    """The region a robot arm is permitted to occupy.

    ``bounds`` models the physical room (mount platform, walls, ceiling);
    leaving it means hitting a wall or the ground, which is how the
    reproduction models the paper's "bumping into walls or the ground"
    checks.  ``walls`` are software-defined partitions added by space
    multiplexing.
    """

    bounds: Cuboid
    walls: List[SoftwareWall] = field(default_factory=list)

    def add_wall(self, wall: SoftwareWall) -> None:
        """Add a software-defined wall constraint."""
        self.walls.append(wall)

    def allows(self, point: Sequence[float]) -> bool:
        """Whether *point* is inside the room and on the right side of all walls."""
        return self.bounds.contains(point) and all(w.allows(point) for w in self.walls)

    def violation(self, point: Sequence[float]) -> Optional[str]:
        """Human-readable description of why *point* is disallowed, or ``None``."""
        if not self.bounds.contains(point):
            p = as_vec3(point)
            axes = "xyz"
            for i in range(3):
                if p[i] < self.bounds.lo[i]:
                    side = "ground" if i == 2 else f"{axes[i]}-min wall"
                    return f"point leaves workspace through the {side}"
                if p[i] > self.bounds.hi[i]:
                    side = "ceiling" if i == 2 else f"{axes[i]}-max wall"
                    return f"point leaves workspace through the {side}"
        for wall in self.walls:
            if not wall.allows(point):
                return f"point crosses software wall {wall.name!r}"
        return None

    def polyline_violation(self, waypoints: Sequence[Sequence[float]]) -> Optional[str]:
        """First violation along a polyline of *waypoints*, or ``None``."""
        for w in waypoints:
            reason = self.violation(w)
            if reason is not None:
                return reason
        return None
