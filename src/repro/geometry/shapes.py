"""Axis-aligned cuboids — RABIT's device shape model.

The paper's Extended Simulator "model[s] each device on the experiment deck
as a 3D cuboid object" (Fig. 3), and the multi-arm workaround models a
sleeping robot arm "as 3D cuboid spaces (identically to other devices)".
Participant P noted in the pilot study that cuboids are a simplification
(a centrifuge is closer to a hemisphere); we keep the paper's cuboid model
and, like the paper suggests, allow inflating cuboids to be conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.geometry.vec import Vec3, as_vec3


@dataclass(frozen=True)
class Cuboid:
    """An axis-aligned cuboid given by its minimum and maximum corners.

    ``name`` identifies the device the cuboid models; collision reports
    surface it to the user ("robot arm would collide with *dosing_device*").
    """

    min_corner: Tuple[float, float, float]
    max_corner: Tuple[float, float, float]
    name: str = "unnamed"

    def __post_init__(self) -> None:
        lo = as_vec3(self.min_corner)
        hi = as_vec3(self.max_corner)
        if not np.all(lo <= hi):
            raise ValueError(
                f"cuboid {self.name!r} has min corner {tuple(lo)} above max corner {tuple(hi)}"
            )
        object.__setattr__(self, "min_corner", tuple(float(x) for x in lo))
        object.__setattr__(self, "max_corner", tuple(float(x) for x in hi))

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_center(
        cls, center: Sequence[float], size: Sequence[float], name: str = "unnamed"
    ) -> "Cuboid":
        """Build a cuboid from its *center* point and edge lengths *size*."""
        c = as_vec3(center)
        half = as_vec3(size) / 2.0
        return cls(tuple(c - half), tuple(c + half), name=name)

    # -- accessors -----------------------------------------------------------

    @property
    def lo(self) -> Vec3:
        """Minimum corner as a vector."""
        return as_vec3(self.min_corner)

    @property
    def hi(self) -> Vec3:
        """Maximum corner as a vector."""
        return as_vec3(self.max_corner)

    @property
    def center(self) -> Vec3:
        """Geometric center."""
        return (self.lo + self.hi) / 2.0

    @property
    def size(self) -> Vec3:
        """Edge lengths along each axis."""
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        """Volume in cubic metres."""
        return float(np.prod(self.size))

    # -- operations ----------------------------------------------------------

    def inflated(self, margin: float) -> "Cuboid":
        """Return a copy grown by *margin* on every face.

        This is how RABIT conservatively accounts for the gripper radius and,
        after the Bug-D fix, for the dimensions of a held object ("a robot
        arm's dimensions may change if it is holding an object").
        """
        if margin < 0 and np.any(self.size + 2 * margin < 0):
            raise ValueError(f"margin {margin} would invert cuboid {self.name!r}")
        m = as_vec3([margin, margin, margin])
        return Cuboid(tuple(self.lo - m), tuple(self.hi + m), name=self.name)

    def translated(self, offset: Sequence[float]) -> "Cuboid":
        """Return a copy shifted by *offset*."""
        o = as_vec3(offset)
        return Cuboid(tuple(self.lo + o), tuple(self.hi + o), name=self.name)

    def renamed(self, name: str) -> "Cuboid":
        """Return a copy carrying a different *name*."""
        return Cuboid(self.min_corner, self.max_corner, name=name)

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Whether *point* lies inside (or within *tol* of) this cuboid."""
        p = as_vec3(point)
        return bool(np.all(p >= self.lo - tol) and np.all(p <= self.hi + tol))

    def closest_point(self, point: Sequence[float]) -> Vec3:
        """The point of this cuboid closest to *point*."""
        return np.clip(as_vec3(point), self.lo, self.hi)

    def distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from *point* to this cuboid (0 if inside)."""
        p = as_vec3(point)
        return float(np.linalg.norm(p - self.closest_point(p)))

    def corners(self) -> np.ndarray:
        """The eight corner points as an ``(8, 3)`` array."""
        lo, hi = self.lo, self.hi
        return np.array(
            [
                [x, y, z]
                for x in (lo[0], hi[0])
                for y in (lo[1], hi[1])
                for z in (lo[2], hi[2])
            ]
        )


def bounding_cuboid(points: Iterable[Sequence[float]], name: str = "bounds") -> Cuboid:
    """The tightest axis-aligned cuboid containing all *points*."""
    pts = np.array([as_vec3(p) for p in points], dtype=np.float64)
    if pts.size == 0:
        raise ValueError("cannot bound an empty point set")
    return Cuboid(tuple(pts.min(axis=0)), tuple(pts.max(axis=0)), name=name)
