"""Vectorized batch collision queries — the Extended Simulator fast path.

The scalar functions in :mod:`repro.geometry.collision` are the *reference
implementation*: one segment against one cuboid, in plain Python.  They are
what the paper describes, and what the differential test suite trusts.  But
the Extended Simulator is RABIT's dominant cost (§II-C: ~2 s, 112 %
overhead per command), and a deck sweep is S trajectory segments × N device
cuboids — a pure-Python double loop on the hot path of *every* robot
command.

:class:`BatchCollisionEngine` packs all deck cuboids into ``(N, 3)``
``lo``/``hi`` arrays once and evaluates all S segments against all N
cuboids in a single broadcasted slab-method pass, producing the full
``(S, N)`` matrix of entry times.  Per-cuboid safety margins are applied by
pre-inflating the packed arrays (the same ``Cuboid.inflated`` arithmetic,
done once at pack time instead of per query).  The arithmetic is kept
operation-for-operation identical to the scalar reference so results agree
*exactly* — both use float64 division of the same operands and the same
closed-boundary convention — which is what lets the differential suite
assert bit-equality rather than tolerances.

For decks whose cuboids move (a robot arm holding a vial, a sleeping arm
swapped in by time multiplexing), the engine is incremental: single rows
can be replaced, added, or removed without re-packing the rest.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.geometry.collision import CollisionHit
from repro.geometry.shapes import Cuboid
from repro.obs import OBS

__all__ = ["BatchCollisionEngine"]

_OBS_QUERIES = OBS.registry.counter(
    "geometry_batch_queries_total",
    "Batch-engine queries, by query kind.",
    labels=("kind",),
)
_OBS_PAIR_CHECKS = OBS.registry.counter(
    "geometry_pair_checks_total",
    "Segment/point x cuboid pairs evaluated by the batch engine.",
)


def _as_points(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Coerce a point sequence into a ``(P, 3)`` float64 array."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"expected an (N, 3) point array, got shape {arr.shape}")
    return arr


class BatchCollisionEngine:
    """All deck cuboids packed for broadcasted collision queries.

    Parameters
    ----------
    cuboids:
        The obstacle set, in a fixed order (query results reference
        cuboids by this index; ties in :meth:`polyline_first_hit` resolve
        to the lowest index, matching the scalar ``first_collision``
        iteration order).
    margin:
        A scalar margin applied to every cuboid, or one margin per cuboid.
        Margins are baked into the packed ``lo``/``hi`` arrays exactly as
        :meth:`Cuboid.inflated` would grow each box.
    """

    def __init__(
        self,
        cuboids: Sequence[Cuboid] = (),
        margin: Union[float, Sequence[float]] = 0.0,
    ) -> None:
        cuboids = list(cuboids)
        n = len(cuboids)
        margins = np.broadcast_to(
            np.asarray(margin, dtype=np.float64), (n,)
        ).copy()
        self._names: List[str] = [c.name for c in cuboids]
        self._margins = margins
        self._base_lo = np.array(
            [c.lo for c in cuboids], dtype=np.float64
        ).reshape(n, 3)
        self._base_hi = np.array(
            [c.hi for c in cuboids], dtype=np.float64
        ).reshape(n, 3)
        self._lo = self._base_lo - margins[:, None]
        self._hi = self._base_hi + margins[:, None]

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> List[str]:
        """Cuboid names in packed order."""
        return list(self._names)

    def index_of(self, name: str) -> int:
        """Packed index of the cuboid named *name*."""
        return self._names.index(name)

    # -- incremental updates ------------------------------------------------

    def add(self, cuboid: Cuboid, margin: float = 0.0) -> int:
        """Append one cuboid; returns its packed index."""
        self._names.append(cuboid.name)
        self._margins = np.append(self._margins, float(margin))
        self._base_lo = np.vstack([self._base_lo.reshape(-1, 3), cuboid.lo])
        self._base_hi = np.vstack([self._base_hi.reshape(-1, 3), cuboid.hi])
        self._lo = self._base_lo - self._margins[:, None]
        self._hi = self._base_hi + self._margins[:, None]
        return len(self._names) - 1

    def update(
        self, index: int, cuboid: Cuboid, margin: Optional[float] = None
    ) -> None:
        """Replace the cuboid at *index* in place (a moved held object).

        Only the affected row is re-packed; pass *margin* to change the
        row's margin as well, otherwise the existing margin is kept.
        """
        if margin is not None:
            self._margins[index] = float(margin)
        self._names[index] = cuboid.name
        self._base_lo[index] = cuboid.lo
        self._base_hi[index] = cuboid.hi
        m = self._margins[index]
        self._lo[index] = self._base_lo[index] - m
        self._hi[index] = self._base_hi[index] + m

    def remove(self, index: int) -> None:
        """Drop the cuboid at *index* (later indices shift down by one)."""
        del self._names[index]
        keep = np.arange(len(self._margins)) != index
        self._margins = self._margins[keep]
        self._base_lo = self._base_lo[keep]
        self._base_hi = self._base_hi[keep]
        self._lo = self._lo[keep]
        self._hi = self._hi[keep]

    # -- batch queries ------------------------------------------------------

    def segment_entry_times(
        self,
        starts: Sequence[Sequence[float]],
        ends: Sequence[Sequence[float]],
    ) -> np.ndarray:
        """Entry times of S segments against all N cuboids at once.

        Returns an ``(S, N)`` float array: element ``[s, n]`` is the
        parameter ``t in [0, 1]`` at which segment *s* enters cuboid *n*,
        or ``NaN`` when it misses — exactly
        :func:`~repro.geometry.collision.segment_cuboid_entry_time`
        evaluated on every pair, including its closed-boundary convention
        (grazes count; a zero displacement component falls back to a
        point-in-slab test on the start coordinate).

        When observability is enabled the query and its S x N pair count
        are metered; disabled, the only cost over the raw kernel
        (:meth:`_segment_entry_times_impl`, which the overhead benchmark
        gates against) is one attribute check.
        """
        result = self._segment_entry_times_impl(starts, ends)
        if OBS.enabled:
            _OBS_QUERIES.inc(1, kind="segment_entry_times")
            _OBS_PAIR_CHECKS.inc(float(result.size))
        return result

    def _segment_entry_times_impl(
        self,
        starts: Sequence[Sequence[float]],
        ends: Sequence[Sequence[float]],
    ) -> np.ndarray:
        """The uninstrumented sweep kernel (seed behaviour, verbatim)."""
        p0 = _as_points(starts)[:, None, :]  # (S, 1, 3)
        p1 = _as_points(ends)[:, None, :]
        d = p1 - p0
        lo = self._lo[None, :, :]  # (1, N, 3)
        hi = self._hi[None, :, :]

        parallel = d == 0.0  # (S, 1, 3), broadcast over N below
        # divide: d == 0 slots are overwritten below; invalid: 0/0 on those
        # same slots; over: a denormal d legitimately overflows to ±inf,
        # exactly as the scalar reference's float division does.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ta = (lo - p0) / d  # (S, N, 3)
            tb = (hi - p0) / d
        t0 = np.minimum(ta, tb)
        t1 = np.maximum(ta, tb)

        # Parallel components contribute the full line when the start
        # coordinate sits inside the (closed) slab, nothing otherwise —
        # the same check the scalar reference makes.
        inside = (p0 >= lo) & (p0 <= hi)  # (S, N, 3)
        par = np.broadcast_to(parallel, inside.shape)
        t0 = np.where(par, np.where(inside, -np.inf, np.inf), t0)
        t1 = np.where(par, np.where(inside, np.inf, -np.inf), t1)

        t_enter = np.maximum(t0.max(axis=2), 0.0)  # (S, N)
        t_exit = np.minimum(t1.min(axis=2), 1.0)
        return np.where(t_enter <= t_exit, t_enter, np.nan)

    def contains_points(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """``(P, N)`` boolean matrix: point *p* inside (margin-inflated)
        cuboid *n*, boundaries included — :meth:`Cuboid.contains` for every
        pair."""
        p = _as_points(points)[:, None, :]  # (P, 1, 3)
        result = np.all(
            (p >= self._lo[None, :, :]) & (p <= self._hi[None, :, :]), axis=2
        )
        if OBS.enabled:
            _OBS_QUERIES.inc(1, kind="contains_points")
            _OBS_PAIR_CHECKS.inc(float(result.size))
        return result

    def first_containing(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Per point, the lowest index of a cuboid containing it (-1: none).

        Matches a scalar ``for box in cuboids: if box.contains(p)`` loop's
        first hit for every point at once.
        """
        hits = self.contains_points(points)  # (P, N)
        if hits.shape[1] == 0:
            return np.full(hits.shape[0], -1, dtype=np.int64)
        return np.where(hits.any(axis=1), hits.argmax(axis=1), -1)

    def first_containing_many(
        self, point_arrays: Sequence[Sequence[Sequence[float]]]
    ) -> list:
        """:meth:`first_containing` over many point sets in one pass.

        Concatenates the ``(P_i, 3)`` arrays, runs a single stacked
        containment matrix, and splits the result back per input array.
        Because containment is evaluated row-independently, each returned
        array is bit-identical to calling :meth:`first_containing` on its
        input alone — this is the cross-session sweep-batching entry
        point: the serve layer stacks probe arrays from many concurrent
        sessions that share deck geometry and pays the kernel's fixed
        costs once per batch instead of once per command.
        """
        arrays = [_as_points(a) for a in point_arrays]
        if not arrays:
            return []
        stacked = np.concatenate(arrays, axis=0)
        hit = self.first_containing(stacked)
        out = []
        offset = 0
        for a in arrays:
            out.append(hit[offset : offset + len(a)])
            offset += len(a)
        return out

    def polylines_hit_indices(
        self, paths: Sequence[Sequence[Sequence[float]]]
    ) -> np.ndarray:
        """First-hit cuboid per polyline of an ``(S, P, 3)`` stacked sweep.

        *paths* packs S polylines of P points each — the Extended
        Simulator's per-sample arm polylines from
        :meth:`~repro.kinematics.dh.DHChain.joint_positions_batch`.  All
        ``S x (P - 1)`` segments are slab-tested against all N cuboids in
        one pass; the result is an ``(S,)`` int array whose element ``s``
        is the index of the cuboid hit first along polyline *s* (ordered
        by segment, then entry time, ties to the lowest cuboid index —
        :meth:`polyline_first_hit`'s convention), or ``-1`` when polyline
        *s* is clear.
        """
        arr = np.asarray(paths, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(
                f"expected an (S, P, 3) polyline stack, got shape {arr.shape}"
            )
        s, p, _ = arr.shape
        out = np.full(s, -1, dtype=np.int64)
        if p < 2 or not self._names:
            return out
        times = self.segment_entry_times(
            arr[:, :-1].reshape(-1, 3), arr[:, 1:].reshape(-1, 3)
        ).reshape(s, p - 1, len(self._names))
        seg_any = (~np.isnan(times)).any(axis=2)  # (S, P-1)
        hit_samples = np.nonzero(seg_any.any(axis=1))[0]
        if hit_samples.size == 0:
            return out
        first_seg = np.argmax(seg_any[hit_samples], axis=1)
        rows = times[hit_samples, first_seg]  # (H, N)
        t = np.nanmin(rows, axis=1)
        out[hit_samples] = np.argmax(rows == t[:, None], axis=1)
        return out

    def polyline_first_hit(
        self, waypoints: Sequence[Sequence[float]]
    ) -> Optional[CollisionHit]:
        """Earliest collision of a polyline sweep, batched.

        Equivalent to :func:`~repro.geometry.collision.first_collision`
        over this engine's cuboids (with their packed margins): ordered by
        ``(segment index, within-segment parameter)``, ties broken by the
        lowest cuboid index.
        """
        pts = _as_points(waypoints)
        if len(pts) < 2 or len(self._names) == 0:
            return None
        times = self.segment_entry_times(pts[:-1], pts[1:])  # (S, N)
        hit_mask = ~np.isnan(times)
        seg_any = hit_mask.any(axis=1)
        if not seg_any.any():
            return None
        seg = int(np.argmax(seg_any))  # first segment with any hit
        row = times[seg]
        t = float(np.nanmin(row))
        cuboid_index = int(np.argmax(row == t))  # lowest index at the min
        contact = pts[seg] + (pts[seg + 1] - pts[seg]) * t
        return CollisionHit(
            obstacle=self._names[cuboid_index],
            point=(float(contact[0]), float(contact[1]), float(contact[2])),
            waypoint_index=seg,
            t=t,
        )
