"""Non-cuboid device shapes — the §V-C extension.

Participant P "mentioned that the complexity of device shapes posed a
challenge, as the shape of many devices do not comply with RABIT's cuboid
specification.  For example, a centrifuge resembles a hemisphere more
than a cuboid and the thermoshaker has a bump at the top.  They suggested
that incorporating more detailed shape descriptions would enhance
RABIT's flexibility."

This module adds those shape descriptions.  Every shape implements the
same two-method surface RABIT's probes use — ``contains(point, tol)`` and
``name`` — so they drop into the obstacle model wherever a
:class:`~repro.geometry.shapes.Cuboid` is accepted.  A refined shape is
*tighter* than the bounding cuboid it replaces, freeing workspace that
the conservative cuboid needlessly kept out (measured by the shape
ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.geometry.shapes import Cuboid
from repro.geometry.vec import as_vec3


@dataclass(frozen=True)
class Hemisphere:
    """A dome: flat base at ``center``'s z, bulging upward by ``radius``."""

    center: Tuple[float, float, float]
    radius: float
    name: str = "hemisphere"

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"hemisphere {self.name!r} needs a positive radius")
        c = as_vec3(self.center)
        object.__setattr__(self, "center", tuple(float(x) for x in c))

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Inside the dome: above the base plane, within the radius."""
        p = as_vec3(point)
        c = as_vec3(self.center)
        if p[2] < c[2] - tol:
            return False
        return float(np.linalg.norm(p - c)) <= self.radius + tol

    def bounding_cuboid(self) -> Cuboid:
        """The tightest axis-aligned cuboid around the dome."""
        c = as_vec3(self.center)
        r = self.radius
        return Cuboid(
            (c[0] - r, c[1] - r, c[2]), (c[0] + r, c[1] + r, c[2] + r), name=self.name
        )


@dataclass(frozen=True)
class VerticalCylinder:
    """An upright cylinder (drum bodies, rotors, vial wells)."""

    center_xy: Tuple[float, float]
    z_range: Tuple[float, float]
    radius: float
    name: str = "cylinder"

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"cylinder {self.name!r} needs a positive radius")
        z0, z1 = self.z_range
        if z0 > z1:
            raise ValueError(f"cylinder {self.name!r} has inverted z range")
        object.__setattr__(self, "center_xy", tuple(float(x) for x in self.center_xy))
        object.__setattr__(self, "z_range", (float(z0), float(z1)))

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Inside the drum: between the caps, within the radius."""
        p = as_vec3(point)
        z0, z1 = self.z_range
        if not (z0 - tol <= p[2] <= z1 + tol):
            return False
        dx = p[0] - self.center_xy[0]
        dy = p[1] - self.center_xy[1]
        return float(np.hypot(dx, dy)) <= self.radius + tol

    def bounding_cuboid(self) -> Cuboid:
        """The tightest axis-aligned cuboid around the drum."""
        x, y = self.center_xy
        z0, z1 = self.z_range
        r = self.radius
        return Cuboid((x - r, y - r, z0), (x + r, y + r, z1), name=self.name)


@dataclass(frozen=True)
class CompositeShape:
    """A union of parts (e.g. a cuboid body with a bump on top)."""

    parts: Tuple[object, ...]
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError(f"composite {self.name!r} needs at least one part")

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Inside any part."""
        return any(part.contains(point, tol) for part in self.parts)

    def bounding_cuboid(self) -> Cuboid:
        """The tightest cuboid around every part's own bounding cuboid."""
        boxes = [
            part if isinstance(part, Cuboid) else part.bounding_cuboid()
            for part in self.parts
        ]
        lo = np.min([b.lo for b in boxes], axis=0)
        hi = np.max([b.hi for b in boxes], axis=0)
        return Cuboid(tuple(lo), tuple(hi), name=self.name)


#: Anything RABIT's point probes accept.
Shape = Union[Cuboid, Hemisphere, VerticalCylinder, CompositeShape]


def shape_from_spec(spec: dict, name: str) -> Shape:
    """Build a shape from a configuration entry.

    Cuboids keep the original ``{"min": ..., "max": ...}`` form; refined
    shapes use ``{"type": "hemisphere"|"cylinder"|"composite", ...}``.
    """
    shape_type = spec.get("type", "cuboid")
    if shape_type == "cuboid" or ("min" in spec and "max" in spec):
        return Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)
    if shape_type == "hemisphere":
        return Hemisphere(tuple(spec["center"]), float(spec["radius"]), name=name)
    if shape_type == "cylinder":
        return VerticalCylinder(
            tuple(spec["center_xy"]),
            tuple(spec["z_range"]),
            float(spec["radius"]),
            name=name,
        )
    if shape_type == "composite":
        parts = tuple(
            shape_from_spec(part, name=f"{name}[{i}]")
            for i, part in enumerate(spec["parts"])
        )
        return CompositeShape(parts, name=name)
    raise ValueError(f"unknown shape type {shape_type!r} for obstacle {name!r}")
