"""Collision queries between trajectories and device cuboids.

Two levels of fidelity mirror the paper:

- *Without* the Extended Simulator, RABIT "only the target location is
  checked for potential collisions" — that is :func:`point_in_cuboid`
  against every device.
- *With* the Extended Simulator, the full polled trajectory is swept against
  every cuboid — :func:`polyline_intersects_cuboid` / :func:`first_collision`
  using the slab method for segment/AABB intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.shapes import Cuboid
from repro.geometry.vec import Vec3, as_vec3


def point_in_cuboid(point: Sequence[float], cuboid: Cuboid, tol: float = 0.0) -> bool:
    """Whether *point* lies inside *cuboid* (within *tol*)."""
    return cuboid.contains(point, tol=tol)


def cuboids_overlap(a: Cuboid, b: Cuboid) -> bool:
    """Whether two cuboids intersect (shared boundary counts as overlap)."""
    return bool(np.all(a.lo <= b.hi) and np.all(b.lo <= a.hi))


def segment_cuboid_entry_time(
    start: Sequence[float], end: Sequence[float], cuboid: Cuboid
) -> Optional[float]:
    """Parameter ``t in [0, 1]`` at which segment *start*→*end* enters *cuboid*.

    Returns ``None`` if the segment misses the cuboid.  Uses the slab method:
    intersect the parametric line with each axis-aligned slab and keep the
    overlap of the three parameter intervals.

    Boundary convention: cuboids are **closed**, matching
    :meth:`Cuboid.contains` and :func:`cuboids_overlap` — a segment that
    merely grazes a face, edge, or corner counts as entering.  The parallel
    branch therefore triggers only on an exactly zero displacement component
    (``d == 0.0``); a tiny-but-nonzero component goes through the division
    path, so a segment ending exactly on a face is a hit no matter how short
    it is.  (An earlier revision used an epsilon threshold here, which
    rejected sub-epsilon segments whose endpoint lay exactly on a face even
    though ``contains`` accepted that endpoint.)
    """
    p0 = as_vec3(start)
    p1 = as_vec3(end)
    d = p1 - p0

    t_enter = 0.0
    t_exit = 1.0
    for axis in range(3):
        lo, hi = cuboid.lo[axis], cuboid.hi[axis]
        if d[axis] == 0.0:
            # Segment parallel to this slab: must already be inside it
            # (faces included — the closed convention).
            if p0[axis] < lo or p0[axis] > hi:
                return None
            continue
        t0 = (lo - p0[axis]) / d[axis]
        t1 = (hi - p0[axis]) / d[axis]
        if t0 > t1:
            t0, t1 = t1, t0
        t_enter = max(t_enter, t0)
        t_exit = min(t_exit, t1)
        if t_enter > t_exit:
            return None
    return t_enter


def segment_intersects_cuboid(
    start: Sequence[float], end: Sequence[float], cuboid: Cuboid, margin: float = 0.0
) -> bool:
    """Whether segment *start*→*end* passes within *margin* of *cuboid*.

    The margin models the sweep radius of the moving body (gripper width,
    held vial, link thickness): sweeping a sphere of radius ``margin`` along
    the segment is approximated by testing the raw segment against the
    cuboid inflated by ``margin``.
    """
    box = cuboid.inflated(margin) if margin > 0 else cuboid
    return segment_cuboid_entry_time(start, end, box) is not None


@dataclass(frozen=True)
class CollisionHit:
    """A collision found while sweeping a trajectory.

    ``obstacle`` names the cuboid hit; ``point`` is the first contact point
    along the sweep; ``waypoint_index`` is the index of the trajectory
    segment on which contact occurred; ``t`` is the within-segment parameter.
    """

    obstacle: str
    point: Tuple[float, float, float]
    waypoint_index: int
    t: float

    def __str__(self) -> str:
        x, y, z = self.point
        return (
            f"collision with {self.obstacle!r} at "
            f"({x:.3f}, {y:.3f}, {z:.3f}) on segment {self.waypoint_index}"
        )


def polyline_intersects_cuboid(
    waypoints: Sequence[Sequence[float]], cuboid: Cuboid, margin: float = 0.0
) -> Optional[CollisionHit]:
    """First intersection of the polyline *waypoints* with *cuboid*, if any."""
    box = cuboid.inflated(margin) if margin > 0 else cuboid
    pts = [as_vec3(w) for w in waypoints]
    for i in range(len(pts) - 1):
        t = segment_cuboid_entry_time(pts[i], pts[i + 1], box)
        if t is not None:
            contact: Vec3 = pts[i] + (pts[i + 1] - pts[i]) * t
            return CollisionHit(
                obstacle=cuboid.name,
                point=(float(contact[0]), float(contact[1]), float(contact[2])),
                waypoint_index=i,
                t=float(t),
            )
    return None


def first_collision(
    waypoints: Sequence[Sequence[float]],
    obstacles: Iterable[Cuboid],
    margin: float = 0.0,
) -> Optional[CollisionHit]:
    """Earliest collision of a polyline sweep against a set of cuboids.

    "Earliest" is ordered by (segment index, within-segment parameter), i.e.
    the first contact the physical arm would make while executing the
    trajectory.  Returns ``None`` when the sweep is collision-free.
    """
    best: Optional[CollisionHit] = None
    for cuboid in obstacles:
        hit = polyline_intersects_cuboid(waypoints, cuboid, margin=margin)
        if hit is None:
            continue
        if best is None or (hit.waypoint_index, hit.t) < (best.waypoint_index, best.t):
            best = hit
    return best
