"""Containers — vials, their contents, and stoppers.

The paper's Container type: "any object that can contain a substance
(solid, liquid etc.) and typically has a stopper through which the
substance goes in or out" (§II-A).  The Hein Lab's custom rules (Table IV)
are all about container contents: solids before liquids, both phases
present before centrifuging, stoppers on before spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional

from repro.devices.base import Device, DeviceKind


class Substance(Enum):
    """Phase of a dosed substance."""

    SOLID = "solid"
    LIQUID = "liquid"


@dataclass
class Contents:
    """What a container currently holds.

    ``solid_mg`` and ``liquid_ml`` are ground-truth amounts; ``spilled_mg``
    accumulates material that missed or overflowed the container (a
    low-severity "wasting chemical materials" outcome in Table V).
    """

    solid_mg: float = 0.0
    liquid_ml: float = 0.0
    spilled_mg: float = 0.0

    @property
    def is_empty(self) -> bool:
        """No solid and no liquid present."""
        return self.solid_mg <= 0.0 and self.liquid_ml <= 0.0

    @property
    def has_solid(self) -> bool:
        """Any solid present."""
        return self.solid_mg > 0.0

    @property
    def has_liquid(self) -> bool:
        """Any liquid present."""
        return self.liquid_ml > 0.0


class Vial(Device):
    """A capped glass vial.

    Modeled as a device (the paper's Container type) so that it can appear
    in the JSON configuration, carry a stopper state variable, and expose
    cap/decap commands (``vial.decap_vial()`` in the Fig. 5 workflow).

    A vial's *contents are not observable*: no sensor in the deck reports
    what is inside a vial, so :meth:`status` exposes only the stopper,
    which the decapper hardware can report.  RABIT tracks contents purely
    through dosing-command postconditions.
    """

    kind = DeviceKind.CONTAINER

    def __init__(
        self,
        name: str,
        capacity_solid_mg: float = 10.0,
        capacity_liquid_ml: float = 20.0,
        stoppered: bool = True,
    ) -> None:
        super().__init__(name)
        self.capacity_solid_mg = float(capacity_solid_mg)
        self.capacity_liquid_ml = float(capacity_liquid_ml)
        self.contents = Contents()
        self._stoppered = stoppered
        self._broken = False
        #: Name of the location or device interior where the vial currently
        #: rests; ``None`` while held by a gripper.  Maintained by LabWorld.
        self.resting_at: Optional[str] = None

    # -- stopper commands ------------------------------------------------------

    @property
    def stoppered(self) -> bool:
        """Whether the stopper (cap) is on."""
        return self._stoppered

    def cap_vial(self) -> None:
        """Put the stopper on."""
        self._record("cap_vial")
        self._stoppered = True

    def decap_vial(self) -> None:
        """Take the stopper off."""
        self._record("decap_vial")
        self._stoppered = False

    # -- physical effects --------------------------------------------------------

    @property
    def broken(self) -> bool:
        """Whether the glass has been broken (dropped, crushed...)."""
        return self._broken

    def shatter(self) -> None:
        """Break the vial; its contents are lost (they count as spilled)."""
        self._broken = True
        self.contents.spilled_mg += self.contents.solid_mg
        self.contents.solid_mg = 0.0
        self.contents.liquid_ml = 0.0

    def add_solid(self, amount_mg: float) -> float:
        """Dose *amount_mg* of solid into the vial.

        Dosing through a stopper is physically impossible: everything
        bounces off and is wasted.  Overfilling spills the excess.  Returns
        the amount actually retained.
        """
        if amount_mg < 0:
            raise ValueError("cannot dose a negative amount")
        if self._stoppered or self._broken:
            self.contents.spilled_mg += amount_mg
            return 0.0
        space = self.capacity_solid_mg - self.contents.solid_mg
        kept = min(amount_mg, max(space, 0.0))
        self.contents.solid_mg += kept
        self.contents.spilled_mg += amount_mg - kept
        return kept

    def add_liquid(self, volume_ml: float) -> float:
        """Dose *volume_ml* of liquid into the vial (same spill semantics)."""
        if volume_ml < 0:
            raise ValueError("cannot dose a negative volume")
        if self._stoppered or self._broken:
            self.contents.spilled_mg += volume_ml
            return 0.0
        space = self.capacity_liquid_ml - self.contents.liquid_ml
        kept = min(volume_ml, max(space, 0.0))
        self.contents.liquid_ml += kept
        self.contents.spilled_mg += volume_ml - kept
        return kept

    # -- observability -------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Only the stopper is observable (reported by the decapper)."""
        return {"stopper": "on" if self._stoppered else "off"}
