"""Simulated laboratory devices — the substrate RABIT monitors.

The paper classifies every device in a self-driving lab into four types
(§II-A): **Container**, **Robot Arm**, **Dosing System**, and **Action
Device**.  This package implements stateful models of each type with the
same command/status API surface the Hein Lab's Python wrappers expose, plus
a ground-truth :class:`~repro.devices.world.LabWorld` that records what
*physically* happens (collisions, spills, breakage) independently of what
RABIT believes — which is how the evaluation distinguishes "RABIT detected
the bug" from "the bug silently caused damage".
"""

from repro.devices.base import (
    Device,
    DeviceKind,
    Door,
    DoorState,
    MalfunctionError,
    SimulatedConnection,
)
from repro.devices.container import Substance, Contents, Vial
from repro.devices.locations import Location, LocationKind, LocationTable
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld
from repro.devices.robot import RobotArmDevice, GripperState
from repro.devices.dosing import SolidDosingDevice, SyringePump
from repro.devices.action_device import (
    ActionDeviceBase,
    Hotplate,
    Centrifuge,
    Thermoshaker,
    Decapper,
    SpinCoater,
    UltrasonicNozzle,
    XRFStation,
)
from repro.devices.sensor import ProximitySensor
from repro.devices.multi_door import MultiDoorDosingDevice

__all__ = [
    "Device",
    "DeviceKind",
    "Door",
    "DoorState",
    "MalfunctionError",
    "SimulatedConnection",
    "Substance",
    "Contents",
    "Vial",
    "Location",
    "LocationKind",
    "LocationTable",
    "DamageEvent",
    "DamageSeverity",
    "LabWorld",
    "RobotArmDevice",
    "GripperState",
    "SolidDosingDevice",
    "SyringePump",
    "ActionDeviceBase",
    "Hotplate",
    "Centrifuge",
    "Thermoshaker",
    "Decapper",
    "SpinCoater",
    "UltrasonicNozzle",
    "XRFStation",
    "ProximitySensor",
    "MultiDoorDosingDevice",
]
