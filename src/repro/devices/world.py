"""Ground-truth physical world of a (simulated) lab deck.

:class:`LabWorld` records what *actually happens* when commands execute:
where every vial rests, which arm is inside which device, and — crucially
for the evaluation — every physical mishap, as :class:`DamageEvent`
records with the paper's Table V severity scale.

RABIT never reads this class.  RABIT sees only device status commands and
its own rulebase; the world is the referee that the fault-injection
campaign consults afterwards to ask "did the injected bug actually cause
the unsafe outcome, and did RABIT stop it first?".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import FrameRegistry, Transform
from repro.geometry.walls import Workspace
from repro.devices.base import Device
from repro.devices.container import Vial
from repro.devices.locations import LocationTable


class DamageSeverity(Enum):
    """Table V's four severity bands, in increasing order."""

    LOW = "low"  # wasting chemical materials
    MEDIUM_LOW = "medium_low"  # breakage of glassware
    MEDIUM_HIGH = "medium_high"  # harm to walls / platform / grids
    HIGH = "high"  # breaking expensive equipment

    @property
    def rank(self) -> int:
        """Numeric rank (0 = LOW ... 3 = HIGH) for ordering."""
        return ["low", "medium_low", "medium_high", "high"].index(self.value)


@dataclass(frozen=True)
class DamageEvent:
    """One physical mishap that occurred in the world."""

    severity: DamageSeverity
    kind: str
    description: str
    involved: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.kind}: {self.description}"


class LabWorld:
    """Ground truth for one deck: devices, vials, locations, frames, damage.

    Each robot arm keeps its own coordinate frame (the lab's *de facto*
    approach, §IV); the world privately knows the exact transform of every
    arm frame into a common world frame, which it uses for ground-truth
    collision physics.  RABIT does **not** get these exact transforms — the
    calibration experiment shows why (3 cm residuals on the testbed).
    """

    def __init__(self, name: str, workspace: Workspace) -> None:
        self.name = name
        self.workspace = workspace
        self.frames = FrameRegistry()
        self.locations = LocationTable()
        self._devices: Dict[str, Device] = {}
        self._vials: Dict[str, Vial] = {}
        #: location name -> vial name, for occupancy-tracked locations.
        self._occupancy: Dict[str, str] = {}
        #: robot name -> device name it is currently inside (or absent).
        self._robot_inside: Dict[str, str] = {}
        #: robot name -> named door it entered through (multi-door devices).
        self._robot_entry_door: Dict[str, Optional[str]] = {}
        self._damage: List[DamageEvent] = []
        #: device name -> world-frame footprint cuboid.
        self._footprints: Dict[str, Cuboid] = {}
        #: Horizontal support surfaces (deck platform, trays).  Surfaces are
        #: checked only against *tip* points (gripper, held vial), never
        #: against arm-link sweeps: arms are mounted ON these slabs, so a
        #: link-level check would flag every arm's own base.
        self._surfaces: Dict[str, Cuboid] = {}

    # -- registration ---------------------------------------------------------

    def register_frame(self, arm_name: str, to_world: Transform) -> None:
        """Record the exact transform of *arm_name*'s frame into the world."""
        self.frames.register(arm_name, to_world)

    def add_device(
        self, device: Device, footprint: Optional[Cuboid] = None
    ) -> Device:
        """Place *device* on the deck, optionally with a world-frame cuboid."""
        if device.name in self._devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self._devices[device.name] = device
        if footprint is not None:
            device.footprint = footprint.renamed(device.name)
            self._footprints[device.name] = device.footprint
        return device

    def add_vial(self, vial: Vial, at_location: Optional[str] = None) -> Vial:
        """Place *vial* on the deck, optionally resting at a location."""
        if vial.name in self._vials:
            raise ValueError(f"duplicate vial name {vial.name!r}")
        self._vials[vial.name] = vial
        if at_location is not None:
            self.place_vial(vial.name, at_location)
        return vial

    # -- lookups -----------------------------------------------------------------

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}; known: {sorted(self._devices)}") from None

    def vial(self, name: str) -> Vial:
        """Look up a vial by name."""
        try:
            return self._vials[name]
        except KeyError:
            raise KeyError(f"unknown vial {name!r}; known: {sorted(self._vials)}") from None

    def devices(self) -> Tuple[Device, ...]:
        """All registered devices."""
        return tuple(self._devices.values())

    def vials(self) -> Tuple[Vial, ...]:
        """All registered vials."""
        return tuple(self._vials.values())

    def footprint(self, device_name: str) -> Optional[Cuboid]:
        """World-frame footprint of a device, if it has one."""
        return self._footprints.get(device_name)

    def footprints(self, exclude: Sequence[str] = ()) -> Tuple[Cuboid, ...]:
        """All device footprints except those named in *exclude*."""
        return tuple(
            box for name, box in self._footprints.items() if name not in exclude
        )

    def add_obstacle(self, cuboid: Cuboid) -> None:
        """Register a passive obstacle footprint (vial grids, fixtures)
        that is not backed by a commandable device."""
        if cuboid.name in self._footprints:
            raise ValueError(f"duplicate footprint {cuboid.name!r}")
        self._footprints[cuboid.name] = cuboid

    def add_surface(self, cuboid: Cuboid) -> None:
        """Register a support surface slab (platform, tray, grid base)."""
        self._surfaces[cuboid.name] = cuboid

    def surfaces(self) -> Tuple[Cuboid, ...]:
        """All registered support surfaces."""
        return tuple(self._surfaces.values())

    def to_world(self, point: Sequence[float], frame: str) -> Tuple[float, float, float]:
        """Map *point* from an arm frame into exact world coordinates."""
        mapped = self.frames.to_world(frame).apply(point)
        return (float(mapped[0]), float(mapped[1]), float(mapped[2]))

    # -- occupancy ------------------------------------------------------------------

    def occupant(self, location: str) -> Optional[str]:
        """Name of the vial resting at *location*, if any."""
        return self._occupancy.get(location)

    def place_vial(self, vial_name: str, location: str) -> None:
        """Rest a vial at a location (does not check legality — physics only)."""
        self.locations.get(location)  # validate the location exists
        vial = self.vial(vial_name)
        if vial.resting_at is not None:
            self._occupancy.pop(vial.resting_at, None)
        occupant = self._occupancy.get(location)
        if occupant is not None and occupant != vial_name:
            # Two objects forced into the same slot: glassware collision.
            self.record_damage(
                DamageEvent(
                    severity=DamageSeverity.MEDIUM_LOW,
                    kind="vial_collision",
                    description=(
                        f"vial {vial_name!r} placed onto occupied location "
                        f"{location!r} (already holds {occupant!r})"
                    ),
                    involved=(vial_name, occupant, location),
                )
            )
            self.vial(occupant).shatter()
        self._occupancy[location] = vial_name
        vial.resting_at = location

    def remove_vial(self, vial_name: str) -> None:
        """Lift a vial off whatever location it rests at."""
        vial = self.vial(vial_name)
        if vial.resting_at is not None:
            self._occupancy.pop(vial.resting_at, None)
            vial.resting_at = None

    def vial_inside_device(self, device_name: str) -> Optional[Vial]:
        """The vial resting at any interior location of *device_name*."""
        for loc in self.locations.interiors_of(device_name):
            occupant = self._occupancy.get(loc.name)
            if occupant is not None:
                return self.vial(occupant)
        return None

    # -- robot containment ---------------------------------------------------------

    def robot_entered(
        self, robot: str, device: str, via_door: Optional[str] = None
    ) -> None:
        """Record that *robot*'s gripper is inside *device* (optionally
        noting which named door it entered through — multi-door devices)."""
        self._robot_inside[robot] = device
        self._robot_entry_door[robot] = via_door

    def robot_left(self, robot: str) -> None:
        """Record that *robot* left whatever device it was inside."""
        self._robot_inside.pop(robot, None)
        self._robot_entry_door.pop(robot, None)

    def robot_inside(self, robot: str) -> Optional[str]:
        """Device the robot is currently inside, if any."""
        return self._robot_inside.get(robot)

    def robot_entry_door(self, robot: str) -> Optional[str]:
        """Named door the robot entered through, if recorded."""
        return self._robot_entry_door.get(robot)

    def robots_inside(self, device: str) -> Tuple[str, ...]:
        """All robots currently inside *device*."""
        return tuple(r for r, d in self._robot_inside.items() if d == device)

    # -- damage -----------------------------------------------------------------------

    def record_damage(self, event: DamageEvent) -> None:
        """Append a damage event to the incident log."""
        self._damage.append(event)

    @property
    def damage_log(self) -> Tuple[DamageEvent, ...]:
        """All damage events so far, in order of occurrence."""
        return tuple(self._damage)

    def worst_damage(self) -> Optional[DamageEvent]:
        """The most severe damage event so far, if any."""
        if not self._damage:
            return None
        return max(self._damage, key=lambda e: e.severity.rank)

    def clear_damage(self) -> None:
        """Reset the incident log (scenario teardown)."""
        self._damage.clear()
