"""Dosing systems: the solid dosing device and the automated syringe pump.

The paper's Dosing System type: "any system used for adding substances into
a container during the experiment" (§II-A).  The Hein Lab deck has two:

- a **solid dosing device** (Mettler Toledo) with a software-controlled
  glass door — the device whose door "has broken because the programmer
  forgot to call open_door()" (§I footnote);
- an **automated syringe pump** (Tecan) that doses solvent.

Physical semantics recorded as ground truth:

- dosing with no (or a stoppered/broken) vial in place wastes the material
  (Table V's *Low* severity band);
- dosing with the door open can spill (Rule 9's rationale);
- closing the door on a robot arm that is still inside smashes the door
  (Rule 2's rationale, *High* severity);
- adding liquid to a vial with no solid ruins the solubility run and
  wastes solvent (the Hein Lab's custom Rule 1).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.devices.base import Device, DeviceKind, Door, DoorState
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld


class SolidDosingDevice(Device):
    """Solid dosing device with a software-controlled glass door."""

    kind = DeviceKind.DOSING_SYSTEM

    def __init__(
        self,
        name: str,
        world: LabWorld,
        max_dose_mg: float = 10.0,
        door_initial: DoorState = DoorState.CLOSED,
    ) -> None:
        super().__init__(name)
        self.world = world
        self.door = Door(door_initial)
        self.max_dose_mg = float(max_dose_mg)
        self._active = False
        self._dispensed_mg = 0.0
        #: Injected malfunction: the auger dispenses ``factor`` times the
        #: commanded amount (a drifting balance / clogged auger).  The
        #: balance readout reports the *actual* dispensed total, so the
        #: discrepancy surfaces through Fig. 2's expected-vs-actual check.
        self._calibration_factor = 1.0

    # -- door commands ---------------------------------------------------------

    def set_door(self, prop: str, state: str) -> None:
        """Drive the door; Fig. 5's ``dosing_device.set_door("state", "open")``."""
        self._record(f"set_door({prop!r}, {state!r})")
        if prop != "state":
            raise ValueError(f"unknown door property {prop!r}")
        target = DoorState(state)
        if target is DoorState.CLOSED:
            blocked = self.world.robots_inside(self.name)
            if blocked:
                # The door motor drives the glass door into the arm.
                self.world.record_damage(
                    DamageEvent(
                        severity=DamageSeverity.HIGH,
                        kind="door_closed_on_arm",
                        description=(
                            f"{self.name} door closed onto robot arm(s) "
                            f"{', '.join(blocked)} still inside"
                        ),
                        involved=(self.name, *blocked),
                    )
                )
                return  # door is blocked by the arm and stays open
        if target is DoorState.OPEN and self._active:
            # Rule 10's rationale: opening mid-dose lets the powder stream
            # escape the enclosure.
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="open_while_dosing",
                    description=(
                        f"{self.name} door opened while dosing was running; "
                        f"material escaped the enclosure"
                    ),
                    involved=(self.name,),
                )
            )
        self.door.set_state(target)

    def open_door(self) -> None:
        """Convenience wrapper (Fig. 1(b)'s ``open_door()``)."""
        self.set_door("state", "open")

    def close_door(self) -> None:
        """Convenience wrapper (Fig. 1(b)'s ``close_door()``)."""
        self.set_door("state", "closed")

    # -- dosing commands -----------------------------------------------------------

    def run_action(self, delay: float = 0.0, quantity: float = 0.0) -> None:
        """Start dosing *quantity* mg of solid (Fig. 5's ``run_action``)."""
        self._record(f"run_action(delay={delay}, quantity={quantity})")
        self._active = True
        self._dose(quantity)

    def dose_solid(self, amount_mg: float) -> None:
        """Dose solid directly (Fig. 1(b)'s ``start_dosing(amount)``)."""
        self._record(f"dose_solid({amount_mg})")
        self._active = True
        self._dose(amount_mg)

    def stop_action(self, delay: float = 0.0) -> None:
        """Stop dosing."""
        self._record(f"stop_action(delay={delay})")
        self._active = False

    def miscalibrate(self, factor: float) -> None:
        """Inject a dosing malfunction: dispense ``factor`` x the command."""
        if factor <= 0:
            raise ValueError("calibration factor must be positive")
        self._calibration_factor = float(factor)

    def _dose(self, commanded_mg: float) -> None:
        amount_mg = commanded_mg * self._calibration_factor
        vial = self.world.vial_inside_device(self.name)
        self._dispensed_mg += amount_mg
        if self.door.is_open:
            # Rule 9's rationale: dosing with the enclosure open lets fine
            # powder drift out (wasted material, contaminated deck).
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="open_door_dose",
                    description=(
                        f"{self.name} dosed {amount_mg:g} mg with its door "
                        f"open; powder drifted out of the enclosure"
                    ),
                    involved=(self.name,),
                )
            )
        if vial is None:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solid_spill",
                    description=(
                        f"{self.name} dispensed {amount_mg} mg with no vial in "
                        f"place; material wasted"
                    ),
                    involved=(self.name,),
                )
            )
            return
        kept = vial.add_solid(amount_mg)
        wasted = amount_mg - kept
        if wasted > 1e-9:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solid_spill",
                    description=(
                        f"{self.name}: {wasted:.1f} mg of {amount_mg} mg missed or "
                        f"overflowed vial {vial.name!r}"
                    ),
                    involved=(self.name, vial.name),
                )
            )

    # -- observability -----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the doser is currently running."""
        return self._active

    def status(self) -> Dict[str, Any]:
        """Door state, running flag, and the balance's dispensed total."""
        return {
            "door": self.door.state.value,
            "active": self._active,
            "dispensed_mg": round(self._dispensed_mg, 6),
        }


class SyringePump(Device):
    """Automated syringe pump dosing solvent at a fixed dispense location."""

    kind = DeviceKind.DOSING_SYSTEM

    def __init__(
        self,
        name: str,
        world: LabWorld,
        dispense_location: str,
        max_volume_ml: float = 20.0,
    ) -> None:
        super().__init__(name)
        self.world = world
        #: Name of the deck location under the pump's needle.
        self.dispense_location = dispense_location
        self.max_volume_ml = float(max_volume_ml)
        self._active = False
        self._dispensed_ml = 0.0

    def dose_initial_solvent(self, volume_ml: float) -> None:
        """Dose the first solvent aliquot (Fig. 1(b) line 6)."""
        self._record(f"dose_initial_solvent({volume_ml})")
        self._dose(volume_ml)

    def dose_solvent(self, volume_ml: float) -> None:
        """Dose a follow-up solvent aliquot (Fig. 1(b) line 12)."""
        self._record(f"dose_solvent({volume_ml})")
        self._dose(volume_ml)

    def stop(self) -> None:
        """Abort dispensing."""
        self._record("stop()")
        self._active = False

    def _dose(self, volume_ml: float) -> None:
        self._active = True
        self._dispensed_ml += volume_ml
        occupant = self.world.occupant(self.dispense_location)
        if occupant is None:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solvent_spill",
                    description=(
                        f"{self.name} dispensed {volume_ml} mL onto an empty "
                        f"{self.dispense_location!r}"
                    ),
                    involved=(self.name,),
                )
            )
            self._active = False
            return
        vial = self.world.vial(occupant)
        if not vial.contents.has_solid:
            # Hein custom Rule 1's rationale: solvent into a solid-less vial
            # ruins the solubility measurement and wastes the solvent.
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="wasted_chemicals",
                    description=(
                        f"{self.name} dosed {volume_ml} mL into vial "
                        f"{vial.name!r} which contains no solid"
                    ),
                    involved=(self.name, vial.name),
                )
            )
        kept = vial.add_liquid(volume_ml)
        wasted = volume_ml - kept
        if wasted > 1e-9:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solvent_spill",
                    description=(
                        f"{self.name}: {wasted:.1f} mL of {volume_ml} mL missed or "
                        f"overflowed vial {vial.name!r}"
                    ),
                    involved=(self.name, vial.name),
                )
            )
        self._active = False

    @property
    def active(self) -> bool:
        """Whether the pump is mid-dispense."""
        return self._active

    def status(self) -> Dict[str, Any]:
        """Running flag and total dispensed volume."""
        return {"active": self._active, "dispensed_ml": round(self._dispensed_ml, 6)}
