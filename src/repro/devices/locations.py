"""Named locations and per-arm coordinate tables (the Fig. 6 model).

Experiment scripts never pass raw coordinates around; they look up entries
in a hard-coded utilities dictionary like Fig. 6's::

    locations = {
        "grid": {"NW": {"viperx": {"pickup": [0.537, 0.018, 0.12], ...}}},
        "dosing_device": {"viperx": {"pickup": [0.15, 0.45, 0.10], ...}},
    }

Because the lab keeps every robot arm in its own coordinate system, each
location stores one coordinate triple *per arm frame*.  Bug D of the paper
is literally an edit to one of these triples (z 0.10 → 0.08), so the
location table is a first-class, mutable object here — the fault injector
mutates it exactly like the paper's naive programmer did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.geometry.vec import as_vec3


class LocationKind(Enum):
    """How RABIT should treat a move to this location."""

    #: Open deck space (vial grids, waypoints).
    FREE = "free"
    #: Inside a device with a door — triggers the ``move_robot_inside``
    #: action and General Rule 1 (door must be open).
    DEVICE_INTERIOR = "device_interior"
    #: Just outside a device, used to stage an approach; treated as FREE.
    DEVICE_APPROACH = "device_approach"
    #: A slot in a vial grid; occupancy-tracked.
    GRID_SLOT = "grid_slot"


@dataclass
class Location:
    """One named location with per-arm-frame coordinates.

    ``device`` names the owning device for interior/approach locations
    (``"dosing_device"`` for ``locations["dosing_device"]["viperx"]["pickup"]``).
    ``via_door`` names the specific door guarding this interior on
    multi-door devices (the §V-C extension); ``None`` means the device's
    single unnamed door (or no door at all).
    """

    name: str
    kind: LocationKind
    coords: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)
    device: Optional[str] = None
    via_door: Optional[str] = None
    meta: str = ""

    def coord_for(self, frame: str) -> Tuple[float, float, float]:
        """Coordinates of this location in *frame* (an arm name or 'world')."""
        try:
            return self.coords[frame]
        except KeyError:
            raise KeyError(
                f"location {self.name!r} has no coordinates in frame {frame!r}; "
                f"known frames: {sorted(self.coords)}"
            ) from None

    def set_coord(self, frame: str, xyz: Sequence[float]) -> None:
        """Set/overwrite this location's coordinates in *frame*.

        This is the mutation surface the fault injector uses for the
        paper's category-4 bugs ("changing position coordinates")."""
        v = as_vec3(xyz)
        self.coords[frame] = (float(v[0]), float(v[1]), float(v[2]))


class LocationTable:
    """Registry of all named locations on a deck."""

    def __init__(self) -> None:
        self._locations: Dict[str, Location] = {}

    def add(self, location: Location) -> Location:
        """Register *location*; its name must be unique on the deck."""
        if location.name in self._locations:
            raise ValueError(f"duplicate location name {location.name!r}")
        self._locations[location.name] = location
        return location

    def define(
        self,
        name: str,
        kind: LocationKind,
        coords: Dict[str, Sequence[float]],
        device: Optional[str] = None,
        via_door: Optional[str] = None,
        meta: str = "",
    ) -> Location:
        """Create and register a location in one call."""
        loc = Location(name=name, kind=kind, device=device, via_door=via_door, meta=meta)
        for frame, xyz in coords.items():
            loc.set_coord(frame, xyz)
        return self.add(loc)

    def get(self, name: str) -> Location:
        """Look up a location by name."""
        try:
            return self._locations[name]
        except KeyError:
            raise KeyError(
                f"unknown location {name!r}; known: {sorted(self._locations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._locations

    def __iter__(self) -> Iterable[Location]:
        return iter(self._locations.values())

    def names(self) -> Tuple[str, ...]:
        """All registered location names."""
        return tuple(self._locations)

    def interiors_of(self, device: str) -> Tuple[Location, ...]:
        """All interior locations belonging to *device*."""
        return tuple(
            loc
            for loc in self._locations.values()
            if loc.device == device and loc.kind is LocationKind.DEVICE_INTERIOR
        )
