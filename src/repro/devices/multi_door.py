"""Multi-door devices — the §V-C open challenge, implemented.

"Devices might have multiple doors, for instance, for two robot arms to
approach the device simultaneously.  In its current state, RABIT does
not handle this."

:class:`MultiDoorDosingDevice` is a dosing device with *named* doors
(e.g. ``front`` and ``back``), one per approach side.  The rest of the
stack handles it through a compound-key convention:

- each door's observable state reports as the status key
  ``door:<name>`` and lands in the ``door_status`` state variable under
  the key ``"<device>:<name>"``;
- interior locations carry ``via_door`` naming the door that guards them,
  and rule G1 checks exactly that door;
- rules G9/G10 require **all** of a device's doors closed while it runs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.devices.base import Device, DeviceKind, Door, DoorState
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld


class MultiDoorDosingDevice(Device):
    """A solid dosing device with one software-controlled door per side."""

    kind = DeviceKind.DOSING_SYSTEM

    def __init__(
        self,
        name: str,
        world: LabWorld,
        door_names: Sequence[str] = ("front", "back"),
        max_dose_mg: float = 10.0,
        door_initial: DoorState = DoorState.CLOSED,
    ) -> None:
        super().__init__(name)
        if not door_names:
            raise ValueError("a multi-door device needs at least one door name")
        self.world = world
        self.max_dose_mg = float(max_dose_mg)
        self.doors: Dict[str, Door] = {n: Door(door_initial) for n in door_names}
        self._active = False
        self._dispensed_mg = 0.0

    # -- door commands ---------------------------------------------------------

    def door_for(self, door_name: Optional[str]) -> Door:
        """The named door (or the first door when unnamed)."""
        if door_name is None:
            return next(iter(self.doors.values()))
        try:
            return self.doors[door_name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no door {door_name!r}; doors: {sorted(self.doors)}"
            ) from None

    def set_door(self, door_name: str, state: str) -> None:
        """Drive one named door, with the arm-crush interlock physics."""
        self._record(f"set_door({door_name!r}, {state!r})")
        door = self.door_for(door_name)
        target = DoorState(state)
        if target is DoorState.CLOSED:
            blocked = [
                robot
                for robot in self.world.robots_inside(self.name)
                if self.world.robot_entry_door(robot) in (door_name, None)
            ]
            if blocked:
                self.world.record_damage(
                    DamageEvent(
                        severity=DamageSeverity.HIGH,
                        kind="door_closed_on_arm",
                        description=(
                            f"{self.name} door {door_name!r} closed onto robot "
                            f"arm(s) {', '.join(blocked)} still inside"
                        ),
                        involved=(self.name, *blocked),
                    )
                )
                return
        door.set_state(target)

    def open_door(self, door_name: str) -> None:
        """Open one named door."""
        self.set_door(door_name, "open")

    def close_door(self, door_name: str) -> None:
        """Close one named door."""
        self.set_door(door_name, "closed")

    # -- dosing ---------------------------------------------------------------------

    def dose_solid(self, amount_mg: float) -> None:
        """Dose solid into the loaded vial (same semantics as the
        single-door device; physically requires all doors shut to avoid
        spills, which rule G9 enforces preemptively)."""
        self._record(f"dose_solid({amount_mg})")
        self._active = True
        vial = self.world.vial_inside_device(self.name)
        self._dispensed_mg += amount_mg
        open_doors = [n for n, d in self.doors.items() if d.is_open]
        if open_doors:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="open_door_dose",
                    description=(
                        f"{self.name} dosed with door(s) "
                        f"{', '.join(open_doors)} open; powder drifted out"
                    ),
                    involved=(self.name,),
                )
            )
        if vial is None:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solid_spill",
                    description=f"{self.name} dispensed {amount_mg} mg with no vial in place",
                    involved=(self.name,),
                )
            )
            return
        kept = vial.add_solid(amount_mg)
        if amount_mg - kept > 1e-9:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="solid_spill",
                    description=(
                        f"{self.name}: {amount_mg - kept:.1f} mg missed or "
                        f"overflowed vial {vial.name!r}"
                    ),
                    involved=(self.name, vial.name),
                )
            )

    def stop_action(self, delay: float = 0.0) -> None:
        """Stop dosing."""
        self._record(f"stop_action(delay={delay})")
        self._active = False

    # -- observability ----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the doser is running."""
        return self._active

    def status(self) -> Dict[str, Any]:
        """Per-door states (compound keys) plus the usual dosing report."""
        report: Dict[str, Any] = {
            "active": self._active,
            "dispensed_mg": round(self._dispensed_mg, 6),
        }
        for door_name, door in self.doors.items():
            report[f"door:{door_name}"] = door.state.value
        return report
