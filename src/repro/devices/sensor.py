"""Proximity sensors — the §V-B extension device class.

The Berlinguette Lab personnel "used sensors earlier, but due to the
possibility of frequent false alarms and malfunction, they do not use
them anymore", and the paper suggests that "by incorporating sensors,
which could be treated as a new device class, one could imagine
enhancing RABIT to respond to sensor inputs that indicate a robot arm is
approaching the area that is occupied".

:class:`ProximitySensor` is that new device class: it watches a 3D zone
(one cuboid per robot frame, like every other RABIT shape) and reports a
single observable bit — whether the zone is occupied (by a person,
typically).  The companion rule lives in
:mod:`repro.core.sensor_rule`; the paper's four device types are
untouched, demonstrating the config's "new device categories" hook.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.devices.base import Device, DeviceKind
from repro.geometry.shapes import Cuboid


class ProximitySensor(Device):
    """A zone-occupancy sensor (e.g. a light curtain or 3D camera).

    ``zones`` maps robot-frame names to the watched cuboid expressed in
    that frame — the same per-frame convention the rest of RABIT uses.
    Ground truth toggles occupancy via :meth:`person_enters` /
    :meth:`person_leaves`; RABIT only ever sees the status bit.
    """

    # Sensors are the paper's suggested *fifth* device category; reuse the
    # enum's extension point rather than redefining the four types.
    kind = DeviceKind.SENSOR

    def __init__(self, name: str, zones: Dict[str, Cuboid]) -> None:
        super().__init__(name)
        if not zones:
            raise ValueError("a proximity sensor needs at least one zone cuboid")
        self.zones = dict(zones)
        self._occupied = False
        #: Injected malfunction: a flaky sensor reports occupancy noise —
        #: the false-alarm failure mode that made the Berlinguette Lab
        #: abandon its sensors.
        self._stuck_reading: Optional[bool] = None

    # -- ground truth ---------------------------------------------------------

    def person_enters(self) -> None:
        """Someone steps into the watched zone."""
        self._record("person_enters()")
        self._occupied = True

    def person_leaves(self) -> None:
        """The zone is vacated."""
        self._record("person_leaves()")
        self._occupied = False

    @property
    def occupied(self) -> bool:
        """Ground-truth occupancy."""
        return self._occupied

    # -- malfunction injection ---------------------------------------------------

    def stick_reading(self, value: Optional[bool]) -> None:
        """Force the sensor to report *value* regardless of ground truth
        (``None`` clears the fault)."""
        self._stuck_reading = value

    # -- observability --------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The single observable bit RABIT polls."""
        reading = self._occupied if self._stuck_reading is None else self._stuck_reading
        return {"occupied": reading}
