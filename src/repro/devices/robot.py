"""The robot arm device — command API, gripper, and ground-truth physics.

The command surface mirrors the wrappers in the paper's experiment scripts
(Fig. 1(b) and Fig. 5): ``move_to_location``, ``go_to_home_pose``,
``go_to_sleep_pose``, ``open_gripper``/``close_gripper``, plus the
``pick_up_vial``/``place_vial`` conveniences the lab helpers build on.

Ground-truth physics implemented here (all invisible to RABIT, which only
sees commands and status replies):

- **Swept collisions.**  Every executed move sweeps the straight tool
  path (moveL semantics) in the world frame, probing the tool point and
  gripper tip against device footprints, other arms, support surfaces,
  and the workspace walls/floor.  A bare-arm contact *stalls* the arm
  mid-trajectory (protective stop) and records damage.
- **Held-object extent.**  A gripped vial hangs ``HELD_DROP`` below the
  end-effector reference point — farther than the bare gripper's
  ``GRIPPER_CLEARANCE``.  A move that is safe for the bare arm can smash a
  held vial (the paper's Bug D: z 0.10 → 0.08); the vial slips out and
  shatters while the arm itself continues unharmed.  This asymmetry is why
  the paper had to modify RABIT "to account that a robot arm's dimensions
  may change if it is holding an object".
- **Silent skips.**  A ViperX-profile arm given an unreachable target
  records the command but does not move (see
  :class:`~repro.kinematics.profiles.UnreachableBehavior`).
- **No gripper pressure sensor.**  :meth:`status` reports the gripper's
  open/closed state and the (noisy) end-effector position, but *not*
  whether anything is actually held — the paper's stated reason Bug C is
  undetectable.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.devices.base import Device, DeviceKind
from repro.devices.locations import Location, LocationKind
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.vec import Vec3, as_vec3, distance
from repro.kinematics.arm import ArmKinematics, TrajectoryPlan
from repro.kinematics.profiles import ArmProfile


class GripperState(Enum):
    """Open/closed state of the parallel gripper (observable)."""

    OPEN = "open"
    CLOSED = "closed"


LocationRef = Union[str, Sequence[float]]


class RobotArmDevice(Device):
    """A six-axis robot arm mounted on the deck.

    The arm plans and reports in **its own coordinate frame** (the lab's
    de facto convention); the :class:`~repro.devices.world.LabWorld` holds
    the exact frame-to-world transform used for ground-truth physics.
    """

    kind = DeviceKind.ROBOT_ARM

    #: Lowest point of the bare gripper below the end-effector reference (m).
    GRIPPER_CLEARANCE = 0.025
    #: Lowest point of a held vial below the end-effector reference (m).
    HELD_DROP = 0.06
    #: Maximum distance between gripper and vial for a grasp to succeed (m).
    GRASP_TOLERANCE = 0.03
    #: Drop height above a surface beyond which a released vial shatters (m).
    SAFE_DROP = 0.03
    #: Trajectory sampling resolution for ground-truth sweeps.
    SWEEP_RESOLUTION = 30

    def __init__(
        self,
        name: str,
        profile: ArmProfile,
        world: LabWorld,
        noise_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        self.profile = profile
        self.world = world
        #: Kinematics in the arm's own frame (base at the frame origin).
        self.kinematics = ArmKinematics(profile)
        self._gripper = GripperState.OPEN
        self._holding: Optional[str] = None  # ground truth, NOT observable
        self._noise_sigma = float(noise_sigma)
        self._rng = np.random.default_rng(seed)
        self._stalled = False

    # ------------------------------------------------------------------
    # Introspection used by the world / scenarios (not part of the lab API)
    # ------------------------------------------------------------------

    @property
    def holding(self) -> Optional[str]:
        """Ground-truth name of the held vial (no sensor reports this)."""
        return self._holding

    @property
    def gripper(self) -> GripperState:
        """Observable gripper jaw state."""
        return self._gripper

    @property
    def stalled(self) -> bool:
        """Whether the last move ended in a protective stop."""
        return self._stalled

    def ee_position_own_frame(self) -> Vec3:
        """Exact end-effector position in the arm's own frame."""
        return self.kinematics.current_position()

    def ee_position_world(self) -> Vec3:
        """Exact end-effector position in world coordinates."""
        return as_vec3(self.world.to_world(self.ee_position_own_frame(), self.name))

    def current_footprint_world(self) -> Cuboid:
        """World-frame cuboid bounding the arm at its current posture."""
        polyline_own = self.kinematics.arm_polyline()
        to_world = self.world.frames.to_world(self.name)
        pts = [to_world.apply(p) for p in polyline_own]
        lo = np.min(pts, axis=0) - self.profile.link_radius
        hi = np.max(pts, axis=0) + self.profile.link_radius
        return Cuboid(tuple(lo), tuple(hi), name=self.name)

    # ------------------------------------------------------------------
    # Lab API: movement
    # ------------------------------------------------------------------

    def resolve_location(self, ref: LocationRef) -> Tuple[Vec3, Optional[Location]]:
        """Resolve a location name or raw coordinate triple to own-frame
        coordinates, plus the :class:`Location` when a name was given."""
        if isinstance(ref, str):
            loc = self.world.locations.get(ref)
            return as_vec3(loc.coord_for(self.name)), loc
        return as_vec3(ref), None

    def move_to_location(self, ref: LocationRef) -> None:
        """Move the end effector to a named location or raw coordinates."""
        target, location = self.resolve_location(ref)
        self._record(f"move_to_location({ref!r})")
        self._execute_move(target, location)

    def move_pose(self, ref: LocationRef) -> None:
        """Alias used by the Ned2 wrapper in Fig. 5 (``ned2.move_pose``)."""
        target, location = self.resolve_location(ref)
        self._record(f"move_pose({ref!r})")
        self._execute_move(target, location)

    def go_to_home_pose(self) -> None:
        """Move to the vendor home posture."""
        self._record("go_to_home_pose()")
        self._execute_posture_move(self.profile.home_q)

    def go_to_sleep_pose(self) -> None:
        """Move to the vendor sleep posture (arm folded over its base)."""
        self._record("go_to_sleep_pose()")
        self._execute_posture_move(self.profile.sleep_q)

    # ------------------------------------------------------------------
    # Lab API: gripper
    # ------------------------------------------------------------------

    def open_gripper(self) -> None:
        """Open the jaws; releases a held vial at the current position."""
        self._record("open_gripper()")
        if self._gripper is GripperState.OPEN:
            return
        self._gripper = GripperState.OPEN
        if self._holding is not None:
            self._release_held_vial()

    def close_gripper(self) -> None:
        """Close the jaws; grasps a vial if one is within reach."""
        self._record("close_gripper()")
        if self._gripper is GripperState.CLOSED:
            return
        self._gripper = GripperState.CLOSED
        self._try_grasp()

    def pick_up_vial(self, ref: LocationRef) -> None:
        """Pick a vial up from a location: descend, close, ascend.

        Mirrors ``robot.pick_up_vial()`` in Fig. 1(b).  The descend height
        comes from the location itself; the caller is expected to already
        be at a safe approach point.
        """
        self._record(f"pick_up_vial({ref!r})")
        target, location = self.resolve_location(ref)
        self._execute_move(target, location)
        self.open_gripper()
        self.close_gripper()

    def place_vial(self, ref: LocationRef) -> None:
        """Place the held vial at a location: descend, open, stay."""
        self._record(f"place_vial({ref!r})")
        target, location = self.resolve_location(ref)
        self._execute_move(target, location)
        self.open_gripper()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Firmware-reported state: noisy position + gripper jaw state.

        Deliberately missing: what (if anything) the gripper holds — the
        testbed arms have no pressure sensor (§IV, category 3) — and
        whether the arm bumped something mid-move (no protective-stop
        telemetry on these educational arms, which is why an arm-arm
        collision leaves no observable trace for RABIT)."""
        pos = self.ee_position_own_frame()
        if self._noise_sigma > 0:
            pos = pos + self._rng.normal(0.0, self._noise_sigma, size=3)
        return {
            "position": (float(pos[0]), float(pos[1]), float(pos[2])),
            "gripper": self._gripper.value,
        }

    # ------------------------------------------------------------------
    # Ground-truth physics
    # ------------------------------------------------------------------

    def _execute_posture_move(self, q_end: Sequence[float]) -> None:
        plan = self.kinematics.plan_posture(q_end)
        self._run_plan(plan, location=None)

    def _execute_move(self, target_own: Vec3, location: Optional[Location]) -> None:
        noisy_target = target_own
        if self._noise_sigma > 0:
            noisy_target = target_own + self._rng.normal(0.0, self._noise_sigma, size=3)
        plan = self.kinematics.plan_move(noisy_target)
        if plan.skipped:
            # ViperX silent-skip semantics: nothing moves, nothing raises.
            return
        self._run_plan(plan, location)

    def _run_plan(self, plan: TrajectoryPlan, location: Optional[Location]) -> None:
        """Execute a planned trajectory with full ground-truth physics."""
        self._stalled = False
        entering = (
            location is not None and location.kind is LocationKind.DEVICE_INTERIOR
        )
        target_device = location.device if (entering and location) else None
        currently_inside = self.world.robot_inside(self.name)

        # Crossing a closed door — in either direction — crashes the arm
        # through the (glass) door.  Entering is the §I footnote incident
        # and Bug A; exiting happens when the door was closed on top of an
        # arm still inside the device.  Multi-door devices resolve the
        # *specific* door being crossed (entry: the target location's
        # via_door; exit: the door the arm came in through).
        for crossed in {target_device, currently_inside} - {None}:
            if crossed == target_device and crossed == currently_inside:
                continue  # staying inside the same device: no door crossing
            if crossed == target_device:
                via = location.via_door if location is not None else None
            else:
                via = self.world.robot_entry_door(self.name)
            door = self._door_guarding(crossed, via)
            if door is not None and not door.is_open:
                self.world.record_damage(
                    DamageEvent(
                        severity=DamageSeverity.HIGH,
                        kind="door_crash",
                        description=(
                            f"{self.name} drove through the closed door of "
                            f"{crossed!r}"
                        ),
                        involved=(self.name, crossed),
                    )
                )
                if self._holding is not None:
                    self._shatter_held("smashed against the closed door")
                self._stalled = True
                return  # protective stop at the door

        to_world = self.world.frames.to_world(self.name)
        samples = plan.trajectory.sample(self.SWEEP_RESOLUTION)

        # The controller executes deck moves as straight tool-line motions
        # (moveL semantics), so the collision sweep samples the straight
        # end-effector segment from the current position to the target —
        # the same path the Extended Simulator sweeps, keeping simulator
        # and reality consistent.  Joint angles are interpolated alongside
        # only to freeze a plausible stall posture on contact.
        ee_start_own = self.kinematics.current_position()
        ee_end_own = plan.trajectory.chain.end_effector_position(plan.trajectory.q_end)
        count = len(samples)
        ee_path_world = [
            to_world.apply(ee_start_own + (ee_end_own - ee_start_own) * (i / (count - 1)))
            for i in range(count)
        ]
        obstacles = self._collision_obstacles(
            exclude_device=target_device, also_exclude=currently_inside
        )
        surfaces = self.world.surfaces()

        for index, (q, ee_world) in enumerate(zip(samples, ee_path_world)):

            # Held vial contacts first: it hangs lowest.
            if self._holding is not None:
                vial_tip = ee_world - np.array([0.0, 0.0, self.HELD_DROP])
                hit_box = self._point_contact(vial_tip, obstacles) or self._point_contact(
                    vial_tip, surfaces
                )
                if hit_box is not None:
                    self._shatter_held(f"crushed against {hit_box!r} mid-move")
                    # The arm itself continues: losing the vial does not
                    # trip any sensor on these arms.

            # Bare-arm contact: the tool point and the gripper tip are the
            # collision surface (position-only control leaves the wrist

            # orientation free, so the arm is reduced to its tool for
            # collision purposes; the Extended Simulator makes the same
            # modeling choice, keeping simulator and reality consistent).
            # The tip is additionally checked against support surfaces;
            # proximal links are exempt — arms are mounted on the surfaces.
            gripper_tip = ee_world - np.array([0.0, 0.0, self.GRIPPER_CLEARANCE])
            hit_box = (
                self._point_contact(ee_world, obstacles)
                or self._point_contact(gripper_tip, obstacles)
                or self._point_contact(gripper_tip, surfaces)
            )
            wall_reason = self.world.workspace.violation(ee_world)

            if hit_box is not None or wall_reason:
                obstacle = hit_box
                severity = self._obstacle_severity(obstacle)
                desc = (
                    f"{self.name} collided with {obstacle!r}"
                    if obstacle
                    else f"{self.name}: {wall_reason}"
                )
                self.world.record_damage(
                    DamageEvent(
                        severity=severity,
                        kind="arm_collision",
                        description=desc + " (protective stop)",
                        involved=tuple(x for x in (self.name, obstacle) if x),
                    )
                )
                # Protective stop: freeze mid-trajectory.
                self.kinematics.set_posture(q)
                self._stalled = True
                self._update_containment(location, reached=False)
                return

        # Clean execution: commit the final posture.
        self.kinematics.execute(plan)
        self._update_containment(location, reached=True)

    def _collision_obstacles(
        self, exclude_device: Optional[str], also_exclude: Optional[str] = None
    ) -> List[Cuboid]:
        """World-frame cuboids this arm can collide with right now."""
        exclude = [self.name]
        if exclude_device is not None:
            exclude.append(exclude_device)
        if also_exclude is not None:
            exclude.append(also_exclude)
        boxes = list(self.world.footprints(exclude=exclude))
        # Other arms, at their *current* postures.
        for device in self.world.devices():
            if device is self or not isinstance(device, RobotArmDevice):
                continue
            boxes.append(device.current_footprint_world())
        return boxes

    @staticmethod
    def _point_contact(point: Vec3, obstacles: Sequence[Cuboid]) -> Optional[str]:
        for box in obstacles:
            if box.contains(point):
                return box.name
        return None

    def _obstacle_severity(self, obstacle: Optional[str]) -> DamageSeverity:
        """Severity of hitting *obstacle*, per Table V's bands."""
        if obstacle is None:
            return DamageSeverity.MEDIUM_HIGH  # walls / ground / platform
        device = None
        try:
            device = self.world.device(obstacle)
        except KeyError:
            pass
        if device is None:
            return DamageSeverity.MEDIUM_HIGH  # grids, platform, mockups
        if isinstance(device, RobotArmDevice):
            return DamageSeverity.MEDIUM_HIGH  # arm-vs-arm (testbed arms)
        return DamageSeverity.HIGH  # expensive automation equipment

    def _door_guarding(self, device_name: str, via_door: Optional[str]):
        """The door object guarding access to *device_name* via *via_door*
        (``None`` for doorless devices)."""
        device = self.world.device(device_name)
        doors = getattr(device, "doors", None)
        if doors is not None:
            return device.door_for(via_door)
        return getattr(device, "door", None)

    def _update_containment(self, location: Optional[Location], reached: bool) -> None:
        if not reached:
            return
        if location is not None and location.kind is LocationKind.DEVICE_INTERIOR:
            if location.device is not None:
                self.world.robot_entered(
                    self.name, location.device, via_door=location.via_door
                )
        else:
            self.world.robot_left(self.name)

    # ------------------------------------------------------------------
    # Grasp / release ground truth
    # ------------------------------------------------------------------

    def _try_grasp(self) -> None:
        if self._holding is not None:
            return
        ee_own = self.ee_position_own_frame()
        for loc in self.world.locations:
            occupant = self.world.occupant(loc.name)
            if occupant is None:
                continue
            try:
                coords = as_vec3(loc.coord_for(self.name))
            except KeyError:
                continue  # location not expressed in this arm's frame
            if distance(ee_own, coords) <= self.GRASP_TOLERANCE:
                self.world.remove_vial(occupant)
                self._holding = occupant
                return

    def _release_held_vial(self) -> None:
        vial_name = self._holding
        assert vial_name is not None
        self._holding = None
        ee_own = self.ee_position_own_frame()

        # Find the nearest location (in this arm's frame) to set the vial down.
        best_loc: Optional[Location] = None
        best_dist = float("inf")
        for loc in self.world.locations:
            try:
                coords = as_vec3(loc.coord_for(self.name))
            except KeyError:
                continue
            d = distance(ee_own, coords)
            if d < best_dist:
                best_dist = d
                best_loc = loc

        if best_loc is not None and best_dist <= self.GRASP_TOLERANCE + self.SAFE_DROP:
            self.world.place_vial(vial_name, best_loc.name)
            return

        # Released in mid-air: the vial falls and shatters.
        self.world.record_damage(
            DamageEvent(
                severity=DamageSeverity.MEDIUM_LOW,
                kind="vial_dropped",
                description=(
                    f"{self.name} opened its gripper away from any location; "
                    f"vial {vial_name!r} fell and broke"
                ),
                involved=(self.name, vial_name),
            )
        )
        self.world.vial(vial_name).shatter()

    def _shatter_held(self, how: str) -> None:
        vial_name = self._holding
        assert vial_name is not None
        self._holding = None
        self.world.record_damage(
            DamageEvent(
                severity=DamageSeverity.MEDIUM_LOW,
                kind="vial_crushed",
                description=f"vial {vial_name!r} held by {self.name} {how}",
                involved=(self.name, vial_name),
            )
        )
        self.world.vial(vial_name).shatter()
