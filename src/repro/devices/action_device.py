"""Action devices: hotplates, centrifuges, shakers, coaters, nozzles.

The paper's Action Device type: "any system with 'active/inactive' states,
where the active state refers to the system performing an action, such as
heating, stirring, or shaking" (§II-A).  Each concrete device below maps a
physical hazard onto a rule in Tables III/IV:

- running with no container / an empty container wastes a run (Rules 5-6);
- an action value beyond the device threshold is dangerous (Rule 11 — the
  Hein researchers' "the temperature of the hotplate must never exceed the
  specified threshold");
- spinning the centrifuge with its lid open, without a stopper, with only
  one phase loaded, or with the rotor's red dot away from North damages the
  rotor or sprays the sample (Rules 9-10 and custom Rules 2-4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.devices.base import Device, DeviceKind, Door, DoorState
from repro.devices.container import Vial
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld


class ActionDeviceBase(Device):
    """Common machinery for all action devices.

    ``threshold`` bounds the action value (temperature in °C, speed in rpm,
    ...).  Subclasses set ``ACTION_NAME`` and may override the physical
    consequence hooks.
    """

    kind = DeviceKind.ACTION_DEVICE
    ACTION_NAME = "action"

    def __init__(
        self,
        name: str,
        world: LabWorld,
        threshold: float,
        has_door: bool = False,
        door_initial: DoorState = DoorState.OPEN,
    ) -> None:
        super().__init__(name)
        self.world = world
        self.threshold = float(threshold)
        self.door: Optional[Door] = Door(door_initial) if has_door else None
        self._active = False
        self._action_value = 0.0

    # -- door (only for devices that have one) -----------------------------------

    def set_door(self, prop: str, state: str) -> None:
        """Drive the lid/door, with the same arm-crush physics as dosers."""
        self._record(f"set_door({prop!r}, {state!r})")
        if self.door is None:
            raise AttributeError(f"{self.name} has no door")
        if prop != "state":
            raise ValueError(f"unknown door property {prop!r}")
        target = DoorState(state)
        if target is DoorState.CLOSED:
            blocked = self.world.robots_inside(self.name)
            if blocked:
                self.world.record_damage(
                    DamageEvent(
                        severity=DamageSeverity.HIGH,
                        kind="door_closed_on_arm",
                        description=(
                            f"{self.name} lid closed onto robot arm(s) "
                            f"{', '.join(blocked)} still inside"
                        ),
                        involved=(self.name, *blocked),
                    )
                )
                return
        self.door.set_state(target)

    def open_door(self) -> None:
        """Open the lid/door."""
        self.set_door("state", "open")

    def close_door(self) -> None:
        """Close the lid/door."""
        self.set_door("state", "closed")

    # -- action commands -------------------------------------------------------------

    def set_action_value(self, value: float) -> None:
        """Set the action setpoint (temperature, speed, ...)."""
        self._record(f"set_action_value({value})")
        self._action_value = float(value)
        if self._active:
            self._physical_effects()

    def start_action(self, value: Optional[float] = None) -> None:
        """Activate the device, optionally setting the setpoint first."""
        self._record(f"start_action({'' if value is None else value})")
        if value is not None:
            self._action_value = float(value)
        self._active = True
        self._physical_effects()

    def stop_action(self, delay: float = 0.0) -> None:
        """Deactivate the device."""
        self._record(f"stop_action(delay={delay})")
        self._active = False

    # -- physical consequences ----------------------------------------------------------

    def _loaded_vial(self) -> Optional[Vial]:
        return self.world.vial_inside_device(self.name)

    def _physical_effects(self) -> None:
        """Ground-truth consequences of running in the current state."""
        vial = self._loaded_vial()
        if vial is None:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="empty_run",
                    description=f"{self.name} ran {self.ACTION_NAME} with no container loaded",
                    involved=(self.name,),
                )
            )
        elif vial.contents.is_empty:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="empty_container_run",
                    description=(
                        f"{self.name} ran {self.ACTION_NAME} on empty vial {vial.name!r}"
                    ),
                    involved=(self.name, vial.name),
                )
            )
        if self._action_value > self.threshold:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="threshold_exceeded",
                    description=(
                        f"{self.name} {self.ACTION_NAME} value "
                        f"{self._action_value:g} exceeds safety threshold "
                        f"{self.threshold:g}"
                    ),
                    involved=(self.name,),
                )
            )
        self._extra_effects(vial)

    def _extra_effects(self, vial: Optional[Vial]) -> None:
        """Device-specific hazards; overridden by subclasses."""

    # -- observability ---------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the device is currently performing its action."""
        return self._active

    @property
    def action_value(self) -> float:
        """Current setpoint."""
        return self._action_value

    def status(self) -> Dict[str, Any]:
        """Active flag, setpoint, and door state when a door exists."""
        report: Dict[str, Any] = {
            "active": self._active,
            "action_value": self._action_value,
        }
        if self.door is not None:
            report["door"] = self.door.state.value
        return report


class Hotplate(ActionDeviceBase):
    """IKA hotplate-stirrer; threshold is the safe temperature limit (°C)."""

    ACTION_NAME = "heating/stirring"

    def __init__(self, name: str, world: LabWorld, threshold: float = 120.0) -> None:
        super().__init__(name, world, threshold=threshold, has_door=False)

    def stir_solution(self, temperature: float) -> None:
        """Fig. 1(b)'s ``stirSolution(temperature)``."""
        self._record(f"stir_solution({temperature})")
        self.start_action(temperature)


class Thermoshaker(ActionDeviceBase):
    """IKA thermoshaker; threshold is the maximum shaking speed (rpm)."""

    ACTION_NAME = "shaking"

    def __init__(self, name: str, world: LabWorld, threshold: float = 1500.0) -> None:
        super().__init__(name, world, threshold=threshold, has_door=False)

    def shake(self, speed_rpm: float) -> None:
        """Start shaking at *speed_rpm*."""
        self._record(f"shake({speed_rpm})")
        self.start_action(speed_rpm)


class Centrifuge(ActionDeviceBase):
    """Benchtop centrifuge with a lid and an alignment red dot.

    The Hein Lab's custom rules (Table IV) all constrain loading this
    device: the container must hold both a solid and a liquid (Rule 2), the
    rotor's red dot must face North when loading (Rule 3), and the container
    must be stoppered (Rule 4).  Violations have ground-truth consequences
    so the evaluation can distinguish detection from prevention.
    """

    ACTION_NAME = "spinning"
    COMPASS = ("N", "E", "S", "W")

    def __init__(self, name: str, world: LabWorld, threshold: float = 6000.0) -> None:
        super().__init__(
            name, world, threshold=threshold, has_door=True, door_initial=DoorState.OPEN
        )
        self._red_dot = "N"

    @property
    def red_dot(self) -> str:
        """Compass direction the rotor's red dot currently faces."""
        return self._red_dot

    def rotate_rotor(self, direction: str) -> None:
        """Index the rotor so the red dot faces *direction* (N/E/S/W)."""
        self._record(f"rotate_rotor({direction!r})")
        if direction not in self.COMPASS:
            raise ValueError(f"invalid compass direction {direction!r}")
        self._red_dot = direction

    def _extra_effects(self, vial: Optional[Vial]) -> None:
        if not self._active:
            return
        if self.door is not None and self.door.is_open:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="open_lid_spin",
                    description=f"{self.name} spun with its lid open",
                    involved=(self.name,),
                )
            )
        if vial is None:
            return
        if not vial.stoppered:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.LOW,
                    kind="centrifuge_spray",
                    description=(
                        f"{self.name} spun unstoppered vial {vial.name!r}; "
                        f"contents sprayed"
                    ),
                    involved=(self.name, vial.name),
                )
            )
        if not (vial.contents.has_solid and vial.contents.has_liquid):
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="rotor_imbalance",
                    description=(
                        f"{self.name} spun single-phase vial {vial.name!r}; "
                        f"rotor imbalance"
                    ),
                    involved=(self.name, vial.name),
                )
            )

    def status(self) -> Dict[str, Any]:
        """Adds the rotor red-dot direction to the base report."""
        report = super().status()
        report["red_dot"] = self._red_dot
        return report


class Decapper(ActionDeviceBase):
    """Berlinguette Lab decapper: caps/uncaps the vial loaded in it."""

    ACTION_NAME = "capping"

    def __init__(self, name: str, world: LabWorld) -> None:
        super().__init__(name, world, threshold=1.0, has_door=False)

    def decap(self) -> None:
        """Remove the stopper from the loaded vial."""
        self._record("decap()")
        self.start_action()
        vial = self._loaded_vial()
        if vial is not None:
            vial.decap_vial()
        self.stop_action()

    def cap(self) -> None:
        """Put the stopper on the loaded vial."""
        self._record("cap()")
        self.start_action()
        vial = self._loaded_vial()
        if vial is not None:
            vial.cap_vial()
        self.stop_action()

    def _physical_effects(self) -> None:
        """Capping an absent vial merely no-ops; no damage semantics."""


class SpinCoater(ActionDeviceBase):
    """Berlinguette Lab spin coater; threshold is max spin speed (rpm)."""

    ACTION_NAME = "spin-coating"

    def __init__(self, name: str, world: LabWorld, threshold: float = 8000.0) -> None:
        super().__init__(name, world, threshold=threshold, has_door=False)


class UltrasonicNozzle(ActionDeviceBase):
    """Berlinguette Lab spray-coating nozzle; threshold is max power (W)."""

    ACTION_NAME = "spraying"

    def __init__(self, name: str, world: LabWorld, threshold: float = 50.0) -> None:
        super().__init__(name, world, threshold=threshold, has_door=False)

    def _physical_effects(self) -> None:
        # Spraying does not need a loaded container (it targets film
        # substrates), so skip the empty-run hazard; threshold still applies.
        if self._action_value > self.threshold:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="threshold_exceeded",
                    description=(
                        f"{self.name} spray power {self._action_value:g} exceeds "
                        f"threshold {self.threshold:g}"
                    ),
                    involved=(self.name,),
                )
            )


class XRFStation(ActionDeviceBase):
    """Berlinguette Lab XRF microscope, modeled as an action device with a
    shutter door (x-rays must only fire with the shutter closed)."""

    ACTION_NAME = "x-ray emission"

    def __init__(self, name: str, world: LabWorld, threshold: float = 50.0) -> None:
        super().__init__(
            name, world, threshold=threshold, has_door=True, door_initial=DoorState.CLOSED
        )

    def _physical_effects(self) -> None:
        if self.door is not None and self.door.is_open and self._active:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="radiation_exposure",
                    description=f"{self.name} emitted x-rays with the shutter open",
                    involved=(self.name,),
                )
            )
        if self._action_value > self.threshold:
            self.world.record_damage(
                DamageEvent(
                    severity=DamageSeverity.HIGH,
                    kind="threshold_exceeded",
                    description=(
                        f"{self.name} emission power {self._action_value:g} "
                        f"exceeds threshold {self.threshold:g}"
                    ),
                    involved=(self.name,),
                )
            )
