"""Device base classes: kinds, doors, connections, malfunction injection.

Every simulated device exposes two things RABIT relies on:

- *action commands* — ordinary methods (``open_door``, ``run_action`` ...)
  that mutate device state, mirroring the Hein Lab's Python wrapper APIs;
- a *status command* — :meth:`Device.status`, returning the device's
  **observable** state variables.  RABIT's ``FetchState()`` (Fig. 2, line 13)
  is implemented by calling this on every device.

Malfunction injection reproduces the paper's "Device malfunction!" branch
(Fig. 2, lines 14-15): a device can be told that its next command will not
take physical effect (e.g. a door motor stalls), so the post-execution
status no longer matches the expected state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.obs import OBS

_OBS_DEVICE_COMMANDS = OBS.registry.counter(
    "device_commands_total",
    "Commands physically executed, by device (post-veto, ground truth).",
    labels=("device",),
)


class DeviceKind(Enum):
    """The paper's four device types (§II-A), plus the sensor category
    the discussion proposes as an extension ("sensors, which could be
    treated as a new device class", §V-B) — researchers "can also define
    ... new device categories" in the configuration (§II-C)."""

    CONTAINER = "container"
    ROBOT_ARM = "robot_arm"
    DOSING_SYSTEM = "dosing_system"
    ACTION_DEVICE = "action_device"
    SENSOR = "sensor"


class DoorState(Enum):
    """State of a software-controlled device door."""

    OPEN = "open"
    CLOSED = "closed"


class MalfunctionError(Exception):
    """Raised when a device is physically unable to carry out a command."""


@dataclass
class SimulatedConnection:
    """Stand-in for the paper's per-device connection parameters.

    RABIT "maintains a list of device connection parameters ... to fetch
    the state of all devices" (§II-C).  Here the wire is simulated: the
    connection only contributes latency, charged to a virtual clock by the
    latency experiments.  ``status_latency`` is the round-trip time of one
    status command; ``command_latency`` of one action command.
    """

    host: str = "127.0.0.1"
    port: int = 0
    status_latency: float = 0.003
    command_latency: float = 0.004

    _port_counter = itertools.count(5000)

    def __post_init__(self) -> None:
        if self.port == 0:
            self.port = next(self._port_counter)


class Door:
    """A software-controlled door on a dosing system or action device.

    The solid dosing device in the Hein Lab "has a software-controlled
    glass door; there have been instances of the door breaking because the
    programmer forgot to call open_door()" (§I, footnote 1).
    """

    def __init__(self, initial: DoorState = DoorState.CLOSED) -> None:
        self._state = initial
        self._jammed = False

    @property
    def state(self) -> DoorState:
        """Current door state."""
        return self._state

    @property
    def is_open(self) -> bool:
        """Whether the door is open."""
        return self._state is DoorState.OPEN

    def jam(self) -> None:
        """Inject a malfunction: the door stops responding to commands."""
        self._jammed = True

    def unjam(self) -> None:
        """Clear an injected jam."""
        self._jammed = False

    def set_state(self, state: DoorState) -> None:
        """Drive the door motor.  A jammed door silently stays put —
        the discrepancy is only visible through the status command,
        which is exactly what RABIT's expected-vs-actual check catches."""
        if self._jammed:
            return
        self._state = state


class Device:
    """Base class for all simulated devices.

    Subclasses register their observable state variables by overriding
    :meth:`status`, and their physical footprint by setting
    :attr:`footprint` (a cuboid in world coordinates) when placed on a deck.
    """

    kind: DeviceKind = DeviceKind.ACTION_DEVICE

    def __init__(self, name: str, connection: Optional[SimulatedConnection] = None) -> None:
        self.name = name
        self.connection = connection or SimulatedConnection()
        #: World-space cuboid this device occupies; assigned at deck layout
        #: time.  ``None`` for devices with no meaningful footprint.
        self.footprint = None  # type: Optional[Any]
        self._command_log: List[str] = []

    # -- observability -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Observable state variables, as reported by the device firmware.

        Only *observable* variables appear here.  Variables the paper calls
        out as unsensed (e.g. whether a gripper without a pressure sensor is
        actually holding a vial) must NOT be reported; RABIT has to carry
        them forward from postconditions, which is what makes Bug C
        undetectable.
        """
        return {}

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, command: str) -> None:
        self._command_log.append(command)
        if OBS.enabled:
            _OBS_DEVICE_COMMANDS.inc(1, device=self.name)

    @property
    def command_log(self) -> List[str]:
        """Commands executed on this device, in order (used by RAD traces)."""
        return list(self._command_log)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
