"""A URSim-like single-arm simulator.

URSim "comes with" the UR3e and is "accurate" for the arm itself, but "does
not model other automation devices.  It also does not account for
collisions when the robot arm moves through its mounting platform or hits
the walls" (§III).  :class:`URSimArm` reproduces exactly that scope: it
simulates one arm's kinematics and flags only *self-evident* infeasibility
(unreachable targets), leaving deck-level collision awareness to the
Extended Simulator built on top of it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.vec import Vec3
from repro.kinematics.arm import ArmKinematics, TrajectoryPlan, UnreachableTargetError
from repro.kinematics.profiles import ArmProfile


class URSimArm:
    """Offline simulator for one arm, mirroring the vendor simulator."""

    def __init__(self, profile: ArmProfile) -> None:
        self.profile = profile
        self._kin = ArmKinematics(profile)

    @property
    def kinematics(self) -> ArmKinematics:
        """The simulated arm's kinematic state."""
        return self._kin

    def set_posture(self, q: Sequence[float]) -> None:
        """Synchronize the simulated arm with a real arm's posture."""
        self._kin.set_posture(q)

    def try_plan(self, target: Sequence[float]) -> Optional[TrajectoryPlan]:
        """Plan a move; ``None`` when the target is unreachable.

        URSim reports infeasibility regardless of the physical vendor
        behaviour (it is a simulator, not the controller), so this never
        silently skips."""
        try:
            plan = self._kin.plan_move(target)
        except UnreachableTargetError:
            return None
        if plan.skipped:
            return None
        return plan

    def simulate_array(self, plan: TrajectoryPlan, resolution: int = 30) -> np.ndarray:
        """Polled per-sample arm polylines as one packed array.

        Shape ``(resolution + 1, dof + 1, 3)``: element ``[i]`` is the
        joint-origin polyline at polled instant *i*, produced by the batched
        FK kernel in a single pass — the form the batch collision engine
        sweeps directly.
        """
        return plan.trajectory.link_paths_array(resolution)

    def simulate(self, plan: TrajectoryPlan, resolution: int = 30) -> List[List[Vec3]]:
        """Run the motion and return the polled per-sample arm polylines.

        Unpacks :meth:`simulate_array`; row-for-row equal to the scalar
        :meth:`~repro.kinematics.trajectory.JointTrajectory.link_paths`
        reference (the differential suite pins the equality).
        """
        return [list(frame) for frame in self.simulate_array(plan, resolution)]
