"""Deterministic stand-in for the Extended Simulator's GUI latency.

§II-C: "with the Extended Simulator, RABIT incurs approximately 2 s
overhead (112 %).  The simulator overhead arises mainly from its Graphical
User Interface (GUI), which runs in a virtual machine and is invoked each
time RABIT checks for collisions.  The overhead is acceptable during
testing, but for deployment, we plan to bypass the GUI entirely."

:class:`GuiLatencyModel` encapsulates that cost so the latency benchmark
can reproduce both deployments: GUI in the loop (the measured ~2 s per
check) and GUI bypassed (headless sweeps only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clock import VirtualClock


@dataclass
class GuiLatencyModel:
    """Virtual-time cost of one simulator invocation.

    ``render_latency`` is the VM + GUI round-trip per collision check;
    ``headless_latency`` is the residual cost of the sweep itself when the
    GUI is bypassed.
    """

    render_latency: float = 2.0
    headless_latency: float = 0.010
    bypass_gui: bool = False

    def charge(self, clock: VirtualClock) -> float:
        """Charge one invocation to *clock*; returns the seconds charged."""
        cost = self.headless_latency if self.bypass_gui else self.render_latency
        clock.advance(cost, "rabit_simulator_gui")
        return cost
