"""The Extended Simulator (§III, Fig. 3) and its URSim-like base.

The Hein Lab's UR3e ships with URSim, which simulates the arm alone; the
paper *extends* it so that "each device on the experiment deck [is
modeled] as a 3D cuboid object" and collisions are found "by continuously
polling the robot arm's trajectory and comparing it with the 3D objects'
coordinates".

- :mod:`repro.simulator.ursim` -- the single-arm simulator substrate
  (kinematics + self/ground checks only, like the real URSim).
- :mod:`repro.simulator.extended` -- the Extended Simulator: cuboid world
  plus trajectory sweeps; implements the
  :class:`~repro.core.monitor.TrajectoryChecker` protocol RABIT consults
  on Fig. 2 line 9.
- :mod:`repro.simulator.gui` -- the deterministic stand-in for the GUI
  that made each simulator invocation cost ~2 s in the paper.
"""

from repro.simulator.ursim import URSimArm
from repro.simulator.extended import ExtendedSimulator
from repro.simulator.gui import GuiLatencyModel
from repro.simulator.render import render_topdown

__all__ = ["URSimArm", "ExtendedSimulator", "GuiLatencyModel", "render_topdown"]
