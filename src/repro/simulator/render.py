"""Top-down ASCII rendering of a deck — a terminal stand-in for Fig. 3.

The paper's Extended Simulator shows the deck's cuboids in a GUI; the
reproduction bypasses the GUI (as the paper planned to), but a quick
top-down view is still invaluable when authoring deck geometry or
debugging a collision report.  :func:`render_topdown` rasterizes the
configured obstacles of one robot frame — devices as letter blocks,
surfaces dotted, named locations as ``*``, the arm's reported position as
``@`` — into a monospace grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


from repro.core.model import RabitLabModel
from repro.devices.robot import RobotArmDevice


def render_topdown(
    model: RabitLabModel,
    frame: str,
    robot: Optional[RobotArmDevice] = None,
    width: int = 64,
    height: int = 28,
    bounds: Optional[Tuple[float, float, float, float]] = None,
) -> str:
    """Render *frame*'s obstacles (x right, y up) as ASCII art.

    *bounds* is ``(x_min, x_max, y_min, y_max)``; when omitted it is fit
    to the frame's obstacle extents with a margin.  Obstacles are labeled
    by their first letter (the legend maps letters back to names);
    refined non-cuboid shapes render through their ``contains`` probe, so
    a hemispherical centrifuge actually looks round.
    """
    obstacles = model.obstacles_for_frame(frame)
    surfaces = model.surfaces_for_frame(frame)
    if bounds is None:
        boxes = [
            shape if hasattr(shape, "lo") else shape.bounding_cuboid()
            for shape in obstacles
        ]
        if not boxes:
            bounds = (-1.0, 1.0, -1.0, 1.0)
        else:
            x_min = min(float(b.lo[0]) for b in boxes) - 0.15
            x_max = max(float(b.hi[0]) for b in boxes) + 0.15
            y_min = min(float(b.lo[1]) for b in boxes) - 0.15
            y_max = max(float(b.hi[1]) for b in boxes) + 0.15
            bounds = (x_min, x_max, y_min, y_max)
    x_min, x_max, y_min, y_max = bounds

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: Dict[str, str] = {}

    def to_cell(x: float, y: float) -> Optional[Tuple[int, int]]:
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            return None
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y_max - y) / (y_max - y_min) * (height - 1))
        return row, col

    # Rasterize by probing each cell center at a mid-deck height band.
    probe_z = 0.04
    for row in range(height):
        for col in range(width):
            x = x_min + (col + 0.5) / width * (x_max - x_min)
            y = y_max - (row + 0.5) / height * (y_max - y_min)
            for surface in surfaces:
                if surface.contains((x, y, 0.0)):
                    grid[row][col] = "."
                    legend["."] = surface.name
                    break
            for shape in obstacles:
                if shape.contains((x, y, probe_z)):
                    letter = shape.name[0].upper()
                    grid[row][col] = letter
                    legend[letter] = shape.name
                    break

    # Named locations.
    for location in model.locations():
        coords = location.coords.get(frame)
        if coords is None:
            continue
        cell = to_cell(coords[0], coords[1])
        if cell is not None:
            grid[cell[0]][cell[1]] = "*"
    legend["*"] = "named location"

    # The arm's reported position.
    if robot is not None:
        position = robot.status()["position"]
        cell = to_cell(position[0], position[1])
        if cell is not None:
            grid[cell[0]][cell[1]] = "@"
        legend["@"] = f"{robot.name} gripper"

    lines = ["".join(row) for row in grid]
    border = "+" + "-" * width + "+"
    body = [border] + [f"|{line}|" for line in lines] + [border]
    legend_lines = [
        f"  {symbol} = {name}" for symbol, name in sorted(legend.items())
    ]
    header = (
        f"frame {frame!r}  x: [{x_min:.2f}, {x_max:.2f}]  "
        f"y: [{y_min:.2f}, {y_max:.2f}]  (top-down)"
    )
    return "\n".join([header, *body, *legend_lines])
