"""The Extended Simulator: trajectory sweeps against device cuboids.

Implements Fig. 2 line 9's ``ValidTrajectory(a_next)``.  Where plain RABIT
checks only the *target* point, the Extended Simulator polls the full
planned trajectory of the commanded arm — starting from the arm's **actual
current posture** (it polls the robot, so a previous silently-skipped move
cannot fool it; this is how it catches the §IV footnote-2 scenario) — and
sweeps:

- the polled tool point against every configured obstacle cuboid,
- the gripper tip against obstacles **and** support surfaces,
- the held vial's tip likewise, when RABIT believes the arm holds one and
  the held-object modification is enabled,
- every polled point against the frame's software walls and (when
  configured) workspace bounds.

All geometry comes from RABIT's *configuration* (the JSON-derived
:class:`~repro.core.model.RabitLabModel`), never from ground truth — the
simulator is only as good as the researcher's cuboid entries, which is
the paper's stated limitation about non-cuboid devices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.actions import ActionCall, ActionLabel
from repro.core.model import RabitLabModel
from repro.core.state import LabState
from repro.devices.robot import RobotArmDevice
from repro.geometry.shapes import Cuboid
from repro.kinematics.arm import TrajectoryPlan, UnreachableTargetError


class ExtendedSimulator:
    """URSim extended with deck-level cuboid collision checking."""

    #: Trajectory polling resolution (samples per motion).
    RESOLUTION = 30

    def __init__(self, robots: Dict[str, RobotArmDevice]) -> None:
        #: The real arm devices the simulator polls for current postures.
        self._robots = dict(robots)

    # ------------------------------------------------------------------
    # TrajectoryChecker protocol
    # ------------------------------------------------------------------

    def validate_trajectory(
        self,
        call: ActionCall,
        state: LabState,
        model: RabitLabModel,
        account_held_objects: bool,
    ) -> Optional[str]:
        """Reason the commanded motion would collide, or ``None``."""
        if call.robot is None or call.robot not in self._robots:
            return None
        robot = self._robots[call.robot]
        robot_model = model.device(call.robot)
        frame = robot_model.frame or call.robot

        plan = self._plan_for(robot, call)
        if plan is None:
            # The controller cannot plan this motion at all; there is no
            # trajectory to sweep (the arm will skip or raise on its own).
            return None

        exclude: List[str] = []
        owner = model.interior_owner(call.location)
        if owner is not None and state.get("door_status", owner, "open") == "open":
            exclude.append(owner)
        currently_inside = state.get("robot_inside", call.robot)
        if currently_inside is not None:
            exclude.append(currently_inside)
        if call.location is not None:
            loc = model.location(call.location)
            if loc.kind == "grid_slot" and loc.device:
                exclude.append(loc.device)

        obstacles = model.obstacles_for_frame(frame, exclude=exclude)
        surfaces = model.surfaces_for_frame(frame, exclude=exclude)
        walls = model.walls.get(frame, [])
        bounds = model.workspace_bounds.get(frame)

        held = (
            state.get("robot_holding", call.robot)
            if account_held_objects
            else None
        )

        # The controller executes deck moves as straight tool-line motions
        # (moveL semantics); sweep the straight end-effector segment from
        # the arm's polled current position to the target — the same path
        # the ground-truth physics sweeps.
        ee_start = robot.kinematics.current_position()
        ee_end = plan.trajectory.chain.end_effector_position(plan.trajectory.q_end)
        ee_samples = [
            ee_start + (ee_end - ee_start) * (i / self.RESOLUTION)
            for i in range(self.RESOLUTION + 1)
        ]

        for ee in ee_samples:
            # Probe the polled tool point and gripper tip (position-only
            # control leaves the wrist orientation free, so the arm is
            # reduced to its tool for collision purposes — the same
            # modeling choice as the ground-truth physics, keeping
            # simulator and reality consistent).
            box = self._point_hit(ee, obstacles, ())
            if box is not None:
                return (
                    f"simulated trajectory of {call.robot!r}: arm would "
                    f"collide with {box!r}"
                )

            tip = ee - np.array([0.0, 0.0, robot_model.gripper_clearance])
            box = self._point_hit(tip, obstacles, surfaces)
            if box is not None:
                return (
                    f"simulated trajectory of {call.robot!r}: gripper would "
                    f"collide with {box!r}"
                )

            if held is not None:
                vial_tip = ee - np.array([0.0, 0.0, robot_model.held_drop])
                box = self._point_hit(vial_tip, obstacles, surfaces)
                if box is not None:
                    return (
                        f"simulated trajectory of {call.robot!r}: held vial "
                        f"{held!r} would collide with {box!r}"
                    )

            for wall in walls:
                if not wall.allows(ee):
                    return (
                        f"simulated trajectory of {call.robot!r} crosses "
                        f"software wall {wall.name!r}"
                    )
            if bounds is not None and not bounds.contains(ee):
                return (
                    f"simulated trajectory of {call.robot!r} leaves the "
                    f"configured workspace"
                )
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan_for(
        self, robot: RobotArmDevice, call: ActionCall
    ) -> Optional[TrajectoryPlan]:
        """Plan the commanded motion from the arm's *polled* posture."""
        kin = robot.kinematics
        if call.label is ActionLabel.GO_HOME:
            return kin.plan_posture(robot.profile.home_q)
        if call.label is ActionLabel.GO_SLEEP:
            return kin.plan_posture(robot.profile.sleep_q)
        if call.target is None:
            return None
        try:
            plan = kin.plan_move(call.target)
        except UnreachableTargetError:
            return None
        if plan.skipped:
            return None
        return plan

    @staticmethod
    def _point_hit(
        point: np.ndarray,
        obstacles: Sequence[Cuboid],
        surfaces: Sequence[Cuboid],
    ) -> Optional[str]:
        for box in list(obstacles) + list(surfaces):
            if box.contains(point):
                return box.name
        return None
