"""The Extended Simulator: trajectory sweeps against device cuboids.

Implements Fig. 2 line 9's ``ValidTrajectory(a_next)``.  Where plain RABIT
checks only the *target* point, the Extended Simulator polls the full
planned trajectory of the commanded arm — starting from the arm's **actual
current posture** (it polls the robot, so a previous silently-skipped move
cannot fool it; this is how it catches the §IV footnote-2 scenario) — and
sweeps:

- the polled tool point against every configured obstacle cuboid,
- the gripper tip against obstacles **and** support surfaces,
- the held vial's tip likewise, when RABIT believes the arm holds one and
  the held-object modification is enabled,
- every polled point against the frame's software walls and (when
  configured) workspace bounds.

All geometry comes from RABIT's *configuration* (the JSON-derived
:class:`~repro.core.model.RabitLabModel`), never from ground truth — the
simulator is only as good as the researcher's cuboid entries, which is
the paper's stated limitation about non-cuboid devices.

Two sweep implementations coexist:

- :meth:`ExtendedSimulator._sweep_scalar` is the reference: a per-sample
  Python loop, verbatim the paper's description.
- :meth:`ExtendedSimulator._sweep_batch` (the default) packs the deck's
  cuboids into a cached :class:`~repro.geometry.batch.BatchCollisionEngine`
  per ``(frame, excluded devices)`` and evaluates every polled sample
  against every cuboid in one broadcasted pass.  Engines are invalidated
  by the model's ``geometry_revision``, so time multiplexing swapping a
  sleeping arm's cuboid in or out rebuilds them.

The two produce identical verdicts and identical messages; the
differential test suite pins that equivalence.

``sweep_links=True`` additionally sweeps the **whole arm body**: the
planned joint-space trajectory is run through the batched FK kernel
(:meth:`~repro.kinematics.trajectory.JointTrajectory.link_paths_array`),
and every link segment of every polled posture is slab-tested against the
obstacle cuboids (inflated by the arm's link radius) in one
``(S x dof) x N`` pass — full-arm coverage at batched cost, catching
elbow/forearm strikes the tool-point sweep cannot see.  It is **off by
default** because it extends the paper's tool-point mechanism: enabling
it can only add verdicts, never change existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import ActionCall, ActionLabel
from repro.core.model import RabitLabModel
from repro.core.state import LabState
from repro.devices.robot import RobotArmDevice
from repro.geometry.batch import BatchCollisionEngine
from repro.geometry.shapes import Cuboid
from repro.kinematics.arm import TrajectoryPlan, UnreachableTargetError
from repro.obs import OBS
from repro.trace.recorder import TRACE

_OBS_CHECKS = OBS.registry.counter(
    "es_trajectory_checks_total",
    "Extended Simulator trajectory validations, by sweep path.",
    labels=("path",),
)
_OBS_VERDICTS = OBS.registry.counter(
    "es_trajectory_verdicts_total",
    "Extended Simulator sweep verdicts.",
    labels=("verdict",),
)
_OBS_SEGMENTS = OBS.registry.counter(
    "es_segments_swept_total",
    "Trajectory samples swept against the deck geometry.",
)
_OBS_SWEEP_SAMPLES = OBS.registry.histogram(
    "es_sweep_samples",
    "Samples per trajectory sweep.",
    buckets=(8, 16, 31, 64, 128, 256),
)
_OBS_ENGINE_CACHE = OBS.registry.counter(
    "es_engine_cache_total",
    "Per-(frame, exclusions) packed-engine cache outcomes.",
    labels=("result",),
)


@dataclass(frozen=True)
class SweepJob:
    """A fully prepared trajectory sweep, separated from its evaluation.

    :meth:`ExtendedSimulator.prepare_sweep` derives one of these from a
    command (plan the motion, resolve exclusions, sample the tool line);
    the probe arrays it yields can then be evaluated inline (the classic
    path) or concatenated with other sessions' jobs and run through one
    stacked :class:`BatchCollisionEngine` pass (the serve batcher).  The
    hit arrays go back through :func:`finish_sweep`, which owns the
    walls/bounds checks and the reference message derivation — so every
    evaluation route produces byte-identical verdict strings.
    """

    call: ActionCall
    model: RabitLabModel
    frame: str
    exclude: Tuple[str, ...]
    robot_model: Any
    held: Optional[str]
    samples: np.ndarray
    plan: TrajectoryPlan
    robot: RobotArmDevice

    def probe_points(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """The three probe families: tool points, gripper tips, vial tips.

        The offsets match the inline sweep exactly; the vial array is
        ``None`` when RABIT does not believe the arm holds anything."""
        tips = self.samples - np.array(
            [0.0, 0.0, self.robot_model.gripper_clearance]
        )
        vial_tips = None
        if self.held is not None:
            vial_tips = self.samples - np.array(
                [0.0, 0.0, self.robot_model.held_drop]
            )
        return self.samples, tips, vial_tips


def finish_sweep(
    call: ActionCall,
    samples: np.ndarray,
    walls: Sequence[Any],
    bounds: Optional[Any],
    held: Optional[str],
    arm_hit: np.ndarray,
    tip_hit: Optional[np.ndarray],
    held_hit: Optional[np.ndarray],
    obst_names: Sequence[str],
    full_names: Sequence[str],
) -> Optional[str]:
    """Walls/bounds checks + first-bad-sample message for a swept job.

    *arm_hit*/*tip_hit*/*held_hit* are ``first_containing`` results for
    the three probe families; *tip_hit* and *held_hit* may be ``None``
    (the serve layer's degraded tool-point-only mode skips them — the
    caller must flag that degradation, never hide it).  Messages and
    probe precedence (arm, gripper tip, held vial, walls, bounds) are
    verbatim the scalar reference loop's.
    """
    bad = arm_hit >= 0
    if tip_hit is not None:
        bad = bad | (tip_hit >= 0)
    if held_hit is not None:
        bad = bad | (held_hit >= 0)
    wall_bad = np.zeros((len(samples), len(walls)), dtype=bool)
    for j, wall in enumerate(walls):
        n = np.asarray(wall.normal, dtype=np.float64)
        wall_bad[:, j] = samples @ n > wall.offset + 1e-9
    if walls:
        bad = bad | wall_bad.any(axis=1)
    if bounds is not None:
        bounds_bad = ~np.all(
            (samples >= np.asarray(bounds.lo)) & (samples <= np.asarray(bounds.hi)),
            axis=1,
        )
        bad = bad | bounds_bad

    if not bad.any():
        return None

    # First failing sample, probes in the reference order: arm,
    # gripper tip, held vial, walls, bounds — identical messages to
    # the scalar loop.
    i = int(np.argmax(bad))
    if arm_hit[i] >= 0:
        return (
            f"simulated trajectory of {call.robot!r}: arm would "
            f"collide with {obst_names[arm_hit[i]]!r}"
        )
    if tip_hit is not None and tip_hit[i] >= 0:
        return (
            f"simulated trajectory of {call.robot!r}: gripper would "
            f"collide with {full_names[tip_hit[i]]!r}"
        )
    if held_hit is not None and held_hit[i] >= 0:
        return (
            f"simulated trajectory of {call.robot!r}: held vial "
            f"{held!r} would collide with {full_names[held_hit[i]]!r}"
        )
    if walls and wall_bad[i].any():
        wall = walls[int(np.argmax(wall_bad[i]))]
        return (
            f"simulated trajectory of {call.robot!r} crosses "
            f"software wall {wall.name!r}"
        )
    return (
        f"simulated trajectory of {call.robot!r} leaves the "
        f"configured workspace"
    )


def build_sweep_engines(
    model: RabitLabModel, frame: str, exclude: Sequence[str]
) -> Tuple[BatchCollisionEngine, BatchCollisionEngine]:
    """The sweep's two packed engines: obstacles-only, obstacles+surfaces.

    Shared between the simulator's per-(frame, exclusions) cache and the
    serve batcher's per-geometry-group cache, so both evaluate probes
    against identically constructed cuboid sets."""
    obstacles = model.obstacles_for_frame(frame, exclude=exclude)
    surfaces = model.surfaces_for_frame(frame, exclude=exclude)
    return (
        BatchCollisionEngine(obstacles),
        BatchCollisionEngine(list(obstacles) + list(surfaces)),
    )


class ExtendedSimulator:
    """URSim extended with deck-level cuboid collision checking."""

    #: Trajectory polling resolution (samples per motion).
    RESOLUTION = 30

    def __init__(
        self,
        robots: Dict[str, RobotArmDevice],
        use_batch: bool = True,
        sweep_links: bool = False,
    ) -> None:
        #: The real arm devices the simulator polls for current postures.
        self._robots = dict(robots)
        #: Whether to sweep with the vectorized engine (the fast path) or
        #: the scalar per-sample reference loop.
        self.use_batch = use_batch
        #: Whether to additionally sweep every arm-link segment of the
        #: planned joint-space motion (batched FK; strictly additive).
        self.sweep_links = sweep_links
        #: Packed engines per (frame, excluded devices), rebuilt whenever
        #: the model's geometry revision moves.
        self._engine_cache: Dict[
            Tuple[str, Tuple[str, ...]],
            Tuple[BatchCollisionEngine, BatchCollisionEngine, int, int],
        ] = {}
        #: Link-radius-inflated obstacle engines for the full-arm sweep,
        #: keyed by (frame, excluded devices, margin).
        self._link_engine_cache: Dict[
            Tuple[str, Tuple[str, ...], float], BatchCollisionEngine
        ] = {}
        self._engine_revision: Optional[int] = None

    # ------------------------------------------------------------------
    # TrajectoryChecker protocol
    # ------------------------------------------------------------------

    def validate_trajectory(
        self,
        call: ActionCall,
        state: LabState,
        model: RabitLabModel,
        account_held_objects: bool,
    ) -> Optional[str]:
        """Reason the commanded motion would collide, or ``None``."""
        job = self.prepare_sweep(call, state, model, account_held_objects)
        if job is None:
            # Nothing to sweep: the command targets no known arm, or the
            # controller cannot plan this motion at all (the arm will
            # skip or raise on its own).
            return None
        frame, exclude = job.frame, list(job.exclude)
        robot_model, held, samples = job.robot_model, job.held, job.samples
        robot, plan = job.robot, job.plan

        sweep = self._sweep_batch if self.use_batch else self._sweep_scalar
        if not OBS.enabled:
            problem = sweep(call, model, frame, exclude, robot_model, held, samples)
            if problem is None and self.sweep_links:
                problem = self._sweep_arm_links(call, model, frame, exclude, robot, plan)
            if TRACE.active:
                TRACE.stage_trajectory(
                    path="batch" if self.use_batch else "scalar",
                    samples=len(samples),
                    verdict=problem,
                )
            return problem

        path = "batch" if self.use_batch else "scalar"
        _OBS_CHECKS.inc(1, path=path)
        _OBS_SEGMENTS.inc(float(len(samples)))
        _OBS_SWEEP_SAMPLES.observe(float(len(samples)))
        with OBS.span(
            "es.validate_trajectory", robot=call.robot, label=call.label.value,
            path=path, samples=len(samples),
        ) as span:
            problem = sweep(call, model, frame, exclude, robot_model, held, samples)
            if problem is None and self.sweep_links:
                problem = self._sweep_arm_links(call, model, frame, exclude, robot, plan)
            _OBS_VERDICTS.inc(1, verdict="collision" if problem else "clear")
            if span is not None:
                span.set(verdict=problem or "clear")
        if TRACE.active:
            TRACE.stage_trajectory(path=path, samples=len(samples), verdict=problem)
        return problem

    def prepare_sweep(
        self,
        call: ActionCall,
        state: LabState,
        model: RabitLabModel,
        account_held_objects: bool,
    ) -> Optional[SweepJob]:
        """Plan the motion and package everything a sweep needs.

        Returns ``None`` when there is nothing to sweep (unknown arm, or
        the controller cannot plan the motion) — the caller must then
        pass the command through without staging a trajectory verdict,
        exactly the behaviour of the inline path."""
        if call.robot is None or call.robot not in self._robots:
            return None
        robot = self._robots[call.robot]
        robot_model = model.device(call.robot)
        frame = robot_model.frame or call.robot

        plan = self._plan_for(robot, call)
        if plan is None:
            return None

        exclude: List[str] = []
        owner = model.interior_owner(call.location)
        if owner is not None and state.get("door_status", owner, "open") == "open":
            exclude.append(owner)
        currently_inside = state.get("robot_inside", call.robot)
        if currently_inside is not None:
            exclude.append(currently_inside)
        if call.location is not None:
            loc = model.location(call.location)
            if loc.kind == "grid_slot" and loc.device:
                exclude.append(loc.device)

        held = (
            state.get("robot_holding", call.robot)
            if account_held_objects
            else None
        )

        # The controller executes deck moves as straight tool-line motions
        # (moveL semantics); sweep the straight end-effector segment from
        # the arm's polled current position to the target — the same path
        # the ground-truth physics sweeps.  The sampler emits one packed
        # (RESOLUTION + 1, 3) array; element i is exactly
        # ``start + (end - start) * (i / RESOLUTION)``, bit-identical to
        # the scalar loop's arithmetic.
        ee_start = np.asarray(robot.kinematics.current_position(), dtype=np.float64)
        ee_end = np.asarray(
            plan.trajectory.chain.end_effector_position(plan.trajectory.q_end),
            dtype=np.float64,
        )
        steps = np.arange(self.RESOLUTION + 1, dtype=np.float64) / self.RESOLUTION
        samples = ee_start[None, :] + (ee_end - ee_start)[None, :] * steps[:, None]

        return SweepJob(
            call=call,
            model=model,
            frame=frame,
            exclude=tuple(exclude),
            robot_model=robot_model,
            held=held,
            samples=samples,
            plan=plan,
            robot=robot,
        )

    # ------------------------------------------------------------------
    # Batched sweep (the fast path)
    # ------------------------------------------------------------------

    def _sweep_batch(
        self,
        call: ActionCall,
        model: RabitLabModel,
        frame: str,
        exclude: List[str],
        robot_model,
        held: Optional[str],
        samples: np.ndarray,
    ) -> Optional[str]:
        obst_engine, full_engine = self._engines_for(model, frame, exclude)

        # One containment matrix per probe family, all samples at once.
        arm_hit = obst_engine.first_containing(samples)
        tips = samples - np.array([0.0, 0.0, robot_model.gripper_clearance])
        tip_hit = full_engine.first_containing(tips)
        held_hit = None
        if held is not None:
            vial_tips = samples - np.array([0.0, 0.0, robot_model.held_drop])
            held_hit = full_engine.first_containing(vial_tips)

        return finish_sweep(
            call,
            samples,
            model.walls.get(frame, []),
            model.workspace_bounds.get(frame),
            held,
            arm_hit,
            tip_hit,
            held_hit,
            obst_engine.names,
            full_engine.names,
        )

    def _sweep_arm_links(
        self,
        call: ActionCall,
        model: RabitLabModel,
        frame: str,
        exclude: List[str],
        robot: RobotArmDevice,
        plan: TrajectoryPlan,
    ) -> Optional[str]:
        """Full-arm link sweep over the planned joint-space motion.

        Every polled posture's joint-origin polyline (one batched FK pass,
        no per-sample loop) is swept segment-by-segment against the
        link-radius-inflated obstacle engine.  Strictly additive: runs
        only after the tool-point probes came back clear.
        """
        paths = plan.trajectory.link_paths_array(self.RESOLUTION)
        engine = self._link_engine_for(model, frame, exclude, robot.profile.link_radius)
        if len(engine) == 0:
            return None
        hits = engine.polylines_hit_indices(paths)
        bad = hits >= 0
        if not bad.any():
            return None
        first = int(np.argmax(bad))
        return (
            f"simulated trajectory of {call.robot!r}: arm link would "
            f"collide with {engine.names[hits[first]]!r}"
        )

    def _link_engine_for(
        self, model: RabitLabModel, frame: str, exclude: Sequence[str], margin: float
    ) -> BatchCollisionEngine:
        """Link-radius-inflated obstacle engine, cached like `_engines_for`."""
        revision = model.geometry_revision
        if revision != self._engine_revision:
            self._engine_cache.clear()
            self._link_engine_cache.clear()
            self._engine_revision = revision
        key = (frame, tuple(sorted(exclude)), float(margin))
        engine = self._link_engine_cache.get(key)
        if engine is None:
            obstacles = model.obstacles_for_frame(frame, exclude=exclude)
            engine = BatchCollisionEngine(obstacles, margin=float(margin))
            self._link_engine_cache[key] = engine
        return engine

    def _engines_for(
        self, model: RabitLabModel, frame: str, exclude: Sequence[str]
    ) -> Tuple[BatchCollisionEngine, BatchCollisionEngine]:
        """Packed engines for (frame, exclude): obstacles-only and
        obstacles+surfaces, cached until the model geometry changes."""
        revision = model.geometry_revision
        if revision != self._engine_revision:
            self._engine_cache.clear()
            self._link_engine_cache.clear()
            self._engine_revision = revision
        key = (frame, tuple(sorted(exclude)))
        cached = self._engine_cache.get(key)
        if cached is not None:
            if OBS.enabled:
                _OBS_ENGINE_CACHE.inc(1, result="hit")
            return cached[0], cached[1]
        if OBS.enabled:
            _OBS_ENGINE_CACHE.inc(1, result="miss")
        obst_engine, full_engine = build_sweep_engines(model, frame, exclude)
        self._engine_cache[key] = (
            obst_engine,
            full_engine,
            revision,
            len(obst_engine),
        )
        return obst_engine, full_engine

    # ------------------------------------------------------------------
    # Scalar sweep (the reference implementation)
    # ------------------------------------------------------------------

    def _sweep_scalar(
        self,
        call: ActionCall,
        model: RabitLabModel,
        frame: str,
        exclude: List[str],
        robot_model,
        held: Optional[str],
        samples: np.ndarray,
    ) -> Optional[str]:
        obstacles = model.obstacles_for_frame(frame, exclude=exclude)
        surfaces = model.surfaces_for_frame(frame, exclude=exclude)
        walls = model.walls.get(frame, [])
        bounds = model.workspace_bounds.get(frame)

        for ee in samples:
            # Probe the polled tool point and gripper tip (position-only
            # control leaves the wrist orientation free, so the arm is
            # reduced to its tool for collision purposes — the same
            # modeling choice as the ground-truth physics, keeping
            # simulator and reality consistent).
            box = self._point_hit(ee, obstacles, ())
            if box is not None:
                return (
                    f"simulated trajectory of {call.robot!r}: arm would "
                    f"collide with {box!r}"
                )

            tip = ee - np.array([0.0, 0.0, robot_model.gripper_clearance])
            box = self._point_hit(tip, obstacles, surfaces)
            if box is not None:
                return (
                    f"simulated trajectory of {call.robot!r}: gripper would "
                    f"collide with {box!r}"
                )

            if held is not None:
                vial_tip = ee - np.array([0.0, 0.0, robot_model.held_drop])
                box = self._point_hit(vial_tip, obstacles, surfaces)
                if box is not None:
                    return (
                        f"simulated trajectory of {call.robot!r}: held vial "
                        f"{held!r} would collide with {box!r}"
                    )

            for wall in walls:
                if not wall.allows(ee):
                    return (
                        f"simulated trajectory of {call.robot!r} crosses "
                        f"software wall {wall.name!r}"
                    )
            if bounds is not None and not bounds.contains(ee):
                return (
                    f"simulated trajectory of {call.robot!r} leaves the "
                    f"configured workspace"
                )
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan_for(
        self, robot: RobotArmDevice, call: ActionCall
    ) -> Optional[TrajectoryPlan]:
        """Plan the commanded motion from the arm's *polled* posture."""
        kin = robot.kinematics
        if call.label is ActionLabel.GO_HOME:
            return kin.plan_posture(robot.profile.home_q)
        if call.label is ActionLabel.GO_SLEEP:
            return kin.plan_posture(robot.profile.sleep_q)
        if call.target is None:
            return None
        try:
            plan = kin.plan_move(call.target)
        except UnreachableTargetError:
            return None
        if plan.skipped:
            return None
        return plan

    @staticmethod
    def _point_hit(
        point: np.ndarray,
        obstacles: Sequence[Cuboid],
        surfaces: Sequence[Cuboid],
    ) -> Optional[str]:
        for box in list(obstacles) + list(surfaces):
            if box.contains(point):
                return box.name
        return None
