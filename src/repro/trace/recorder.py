"""The run-trace recorder the interception pipeline reports into.

:data:`TRACE` is a process-wide runtime with the same hot-path contract
as :data:`repro.obs.OBS`: **default off**, and while off every
instrumentation site costs exactly one attribute read
(``TRACE.active``).  Nothing is allocated, staged, or timed, the
virtual clock is never touched, and the differential suite pins the
stronger guarantee that enabling recording changes no verdicts and no
latency figures.

While recording, the pipeline contributes one *event* per intercepted
command, assembled from three sources:

- the **monitor** stages the rule verdict's cache disposition (hit /
  miss / disabled), the state delta the command produced, and a content
  fingerprint of the resulting state (:meth:`TraceRuntime.stage_rule`,
  :meth:`TraceRuntime.stage_state`);
- the **Extended Simulator** stages the trajectory-sweep outcome when a
  robot command consults it (:meth:`TraceRuntime.stage_trajectory`);
- the **interceptor** closes the event with the command itself — device,
  method, arguments, resolved label/location, virtual-clock timestamp,
  alert, and the enclosing observability span id
  (:meth:`TraceRuntime.record_command`).

Everything recorded is a deterministic function of the workload: virtual
time instead of wall time, content digests instead of object ids, and a
trace id derived from the workload identity rather than any clock — so
recording the same workload twice produces byte-identical traces, which
is the invariant replay asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.trace.canon import canonical_bytes, content_digest
from repro.trace.schema import SCHEMA_VERSION, TraceSchemaError, upgrade_trace

__all__ = ["TRACE", "TraceRuntime", "RunTrace", "TraceFormatError"]


class TraceFormatError(Exception):
    """A persisted trace file is corrupt, truncated, or malformed."""


def _jsonable(value: Any) -> Any:
    """Coerce one command argument into a canonical-JSON-safe value.

    Tuples/lists recurse (coordinate triples are the common case);
    anything beyond JSON scalars falls back to ``repr`` so the trace
    stays serializable without guessing at domain objects."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else repr(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class RunTrace:
    """One recorded run: header, per-command events, closing footer."""

    header: Dict[str, Any]
    events: List[Dict[str, Any]] = field(default_factory=list)
    footer: Dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str:
        """The deterministic, content-derived trace identifier."""
        return self.header["trace_id"]

    @property
    def schema_version(self) -> int:
        """Schema version the trace currently conforms to."""
        return self.header["schema_version"]

    def canonical_bytes(self) -> bytes:
        """Canonical serialization of the full verdict/state stream.

        The replay equality witness: two runs agree iff these bytes
        agree.  Covers the header (workload identity), every event
        (commands, verdicts, deltas, timestamps, span ids), and the
        footer (outcome, final virtual time)."""
        return canonical_bytes(
            {"header": self.header, "events": self.events, "footer": self.footer}
        )

    # -- persistence -------------------------------------------------------

    def write_jsonl(self, path: Any) -> int:
        """Write the trace as JSONL (header, events..., footer); returns
        the number of lines written."""
        lines = [self.header, *self.events, self.footer]
        with open(path, "w", encoding="ascii") as fh:
            for doc in lines:
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        return len(lines)

    @classmethod
    def read_jsonl(cls, path: Any) -> "RunTrace":
        """Load and schema-migrate a persisted trace.

        Raises :class:`TraceFormatError` on corrupt JSON, a missing
        header, or a truncated stream (no footer / event-count
        mismatch), and :class:`UnknownSchemaVersionError` via the
        schema hook for versions this build cannot read."""
        docs: List[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{path}: line {lineno} is not valid JSON ({exc.msg})"
                    ) from None
                if not isinstance(doc, dict):
                    raise TraceFormatError(
                        f"{path}: line {lineno} is not a JSON object"
                    )
                docs.append(doc)
        if not docs or docs[0].get("type") != "header":
            raise TraceFormatError(f"{path}: missing trace header line")
        header, body = docs[0], docs[1:]
        # Schema migration runs before structural checks: the footer
        # contract itself is part of every known schema version.
        header, body = upgrade_trace(header, body)
        if not body or body[-1].get("type") != "end":
            raise TraceFormatError(
                f"{path}: truncated trace (no closing 'end' record)"
            )
        footer, events = body[-1], body[:-1]
        if any(e.get("type") != "command" for e in events):
            raise TraceFormatError(f"{path}: unexpected record type in event stream")
        declared = footer.get("events")
        if declared != len(events):
            raise TraceFormatError(
                f"{path}: truncated trace (footer declares {declared} events, "
                f"found {len(events)})"
            )
        return cls(header=header, events=events, footer=footer)


def _trace_id(workload: str, params: Dict[str, Any], obs: bool) -> str:
    """Deterministic trace id from the workload identity alone.

    Deliberately independent of the schema version, so a migrated trace
    keeps its id and replay's byte comparison still passes."""
    return "t-" + content_digest(
        {"workload": workload, "params": params, "obs": obs}
    )


class TraceRuntime:
    """Process-wide recorder with per-command staging.

    One recording may be active at a time (recording is per-run, and
    every workload runs single-threaded under the virtual clock)."""

    def __init__(self) -> None:
        #: The hot-path guard; instrumented modules read this directly.
        self.active: bool = False
        self._header: Optional[Dict[str, Any]] = None
        self._events: List[Dict[str, Any]] = []
        # Per-command staging area, consumed by record_command.
        self._staged_rule: Optional[Dict[str, Any]] = None
        self._staged_state: Optional[Dict[str, Any]] = None
        self._staged_trajectory: Optional[Dict[str, Any]] = None

    @property
    def trace_id(self) -> Optional[str]:
        """Id of the in-flight recording (``None`` when inactive)."""
        return self._header["trace_id"] if self._header else None

    @property
    def next_seq(self) -> int:
        """Sequence number the next recorded command will carry."""
        return len(self._events)

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self, workload: str, params: Optional[Dict[str, Any]] = None, obs: bool = False
    ) -> None:
        """Start recording a run of *workload* with *params*."""
        if self.active:
            raise RuntimeError(
                f"a recording is already active (trace {self.trace_id})"
            )
        params = dict(params or {})
        self._header = {
            "type": "header",
            "schema_version": SCHEMA_VERSION,
            "trace_id": _trace_id(workload, params, obs),
            "workload": workload,
            "params": params,
            "obs": bool(obs),
        }
        self._events = []
        self._clear_staged()
        self.active = True

    def end(self, outcome: Dict[str, Any]) -> RunTrace:
        """Finish the recording; returns the completed :class:`RunTrace`."""
        if not self.active:
            raise RuntimeError("no recording is active")
        assert self._header is not None
        final_time = self._events[-1]["t"] if self._events else 0.0
        footer = {
            "type": "end",
            "events": len(self._events),
            "final_time": final_time,
            "outcome": {k: _jsonable(v) for k, v in sorted(outcome.items())},
        }
        trace = RunTrace(header=self._header, events=self._events, footer=footer)
        self.abort()
        return trace

    def abort(self) -> None:
        """Discard any in-flight recording and staging."""
        self.active = False
        self._header = None
        self._events = []
        self._clear_staged()

    def _clear_staged(self) -> None:
        self._staged_rule = None
        self._staged_state = None
        self._staged_trajectory = None

    # -- staging (called from monitor / simulator) -------------------------

    def stage_rule(
        self, cache: str, rule_id: Optional[str], dispatch: str = "interpreted"
    ) -> None:
        """Record the rulebase verdict's cache disposition for the
        in-flight command: ``"hit"``, ``"miss"``, or ``"disabled"``,
        plus which dispatch path produced (or would produce) the verdict
        — ``"compiled"`` decision lists or the ``"interpreted"``
        full-rulebase scan."""
        self._staged_rule = {"cache": cache, "rule_id": rule_id, "dispatch": dispatch}

    def stage_state(self, previous: Any, current: Any) -> None:
        """Record the state transition the in-flight command produced.

        *previous*/*current* are :class:`~repro.core.state.LabState`
        snapshots; the event stores the sorted delta triples plus a
        content fingerprint of the full resulting state."""
        self._staged_state = {
            "delta": [
                [var, key, _jsonable(value)]
                for var, key, value in current.delta_from(previous)
            ],
            "fp": content_digest(current.as_dict()),
        }

    def stage_trajectory(self, path: str, samples: int, verdict: Optional[str]) -> None:
        """Record the Extended Simulator sweep for the in-flight robot
        command: which sweep path ran, how many samples, and the
        collision verdict (``None`` when clear)."""
        self._staged_trajectory = {
            "path": path,
            "samples": int(samples),
            "verdict": verdict,
        }

    # -- event assembly (called from the interceptor) ----------------------

    def record_command(self, record: Any, obs_span_id: Optional[int] = None) -> None:
        """Close one event from the interceptor's :class:`CommandRecord`
        plus whatever the monitor/simulator staged for it."""
        if not self.active:
            return
        alert = record.alert
        verdict: Dict[str, Any] = {
            "outcome": alert.kind.value if alert is not None else "allowed",
            "rule_id": alert.rule_id if alert is not None else None,
            "message": alert.message if alert is not None else None,
            "cache": self._staged_rule["cache"] if self._staged_rule else None,
            "dispatch": self._staged_rule["dispatch"] if self._staged_rule else None,
        }
        staged_state = self._staged_state
        self._events.append(
            {
                "type": "command",
                "seq": len(self._events),
                "t": record.time,
                "device": record.device,
                "method": record.method,
                "args": [_jsonable(a) for a in record.args],
                "label": record.label.value if record.label is not None else None,
                "location": record.location,
                "verdict": verdict,
                "trajectory": self._staged_trajectory,
                "state_delta": staged_state["delta"] if staged_state else [],
                "state_fp": staged_state["fp"] if staged_state else None,
                "obs_span_id": obs_span_id,
            }
        )
        self._clear_staged()


#: The process-wide recorder every instrumented module imports.
TRACE = TraceRuntime()
