"""Canonical JSON — the one serialization every differential witness uses.

Three subsystems already relied on "``json.dumps(..., sort_keys=True)``
then compare bytes" as their equality witness: the Monte Carlo sweep
(:meth:`MonteCarloReport.canonical_bytes`), the campaign runner
(:meth:`CampaignResult.canonical_bytes`), and the JSONL exports of the
CLI.  Each spelled the call out locally, which left the witness's
stability properties implicit.  This module pins them explicitly:

- **Key order** — objects are serialized with ``sort_keys=True``, so two
  dicts with equal contents produce equal bytes regardless of insertion
  order (Python dicts are insertion-ordered; canonical form must not be).
- **Float format** — floats render via CPython's shortest-roundtrip
  ``repr`` (stable since 3.1 across versions and platforms); non-finite
  floats are **rejected** (``allow_nan=False``) because ``NaN`` both
  breaks JSON interchange and compares unequal to itself, which would
  make a "byte-identical" witness vacuous.
- **Separators** — the compact ``(",", ":")`` pair, so whitespace policy
  can never differ between writers.
- **Encoding** — ``ensure_ascii=True``: every byte of output is ASCII,
  sidestepping platform encoding defaults entirely.
- **Types** — tuples serialize as arrays; any other non-JSON type raises
  ``TypeError`` rather than being silently coerced.  Callers coerce
  domain objects *before* canonicalization so the coercion is visible.

The cross-version stability test (``tests/test_trace_canon.py``) pins
exact output bytes for the tricky cases (shortest-repr floats, negative
zero, large exponents, unicode escapes) on every CI Python version.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "canonical_bytes", "content_digest"]


def canonical_json(value: Any) -> str:
    """The canonical JSON text of *value* (sorted keys, compact, ASCII).

    Raises ``ValueError`` on non-finite floats and ``TypeError`` on
    values JSON cannot represent — a canonical form must never guess.
    """
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_bytes(value: Any) -> bytes:
    """Canonical JSON of *value*, encoded — the byte-equality witness."""
    return canonical_json(value).encode("ascii")


def content_digest(value: Any, length: int = 16) -> str:
    """A short hex digest of *value*'s canonical form.

    Used for state fingerprints in trace events and for deterministic
    trace ids: equal content always yields an equal digest, and no wall
    clock or randomness is involved anywhere.
    """
    return hashlib.sha256(canonical_bytes(value)).hexdigest()[:length]
