"""Trace schema versioning and the explicit upgrade hook.

Every persisted trace leads with a header carrying ``schema_version``.
Readers accept the current version directly; *older* versions are
migrated forward through an explicit chain of upgrade functions — one
per historical version, each lossless, applied in sequence until the
trace reaches :data:`SCHEMA_VERSION`.  Anything newer than the current
version (or older than the oldest known) is rejected with
:class:`UnknownSchemaVersionError` rather than guessed at: a replay
gate that silently misreads a trace is worse than one that refuses.

Version history:

- **1** — initial format: command events carried their virtual-clock
  timestamp under ``"time"`` and state deltas as ``{"var", "key",
  "value"}`` objects.
- **2** — timestamps renamed to ``"t"``; state-delta entries
  compacted to ``[var, key, value]`` triples (the form
  ``LabState.delta_from`` emits); both changes are lossless, so a v1
  trace upgraded to v2 replays byte-identically.
- **3** (current) — command verdicts gain the ``"dispatch"`` dimension
  (``"compiled"`` decision-list dispatch vs the ``"interpreted"``
  full-rulebase scan).  Verdicts are pinned identical across dispatch
  modes by the differential suite, so upgraded v2 traces adopt the
  current default label (``"compiled"``) and still replay
  byte-identically; the historical mode is not recoverable from a v2
  file and cannot have affected any recorded verdict.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "UnknownSchemaVersionError",
    "upgrade_trace",
]

#: The schema version this build writes.
SCHEMA_VERSION = 3


class TraceSchemaError(Exception):
    """A trace's structure violates its declared schema."""


class UnknownSchemaVersionError(TraceSchemaError):
    """The trace declares a schema version this build cannot read."""


def _upgrade_v1(header: dict, events: List[dict]) -> Tuple[dict, List[dict]]:
    """v1 -> v2: rename ``time`` to ``t``; compact state-delta entries."""
    upgraded: List[dict] = []
    for event in events:
        event = dict(event)
        if "time" in event:
            event["t"] = event.pop("time")
        delta = event.get("state_delta")
        if delta is not None:
            event["state_delta"] = [
                [entry["var"], entry["key"], entry["value"]]
                if isinstance(entry, dict)
                else list(entry)
                for entry in delta
            ]
        upgraded.append(event)
    header = dict(header)
    header["schema_version"] = 2
    return header, upgraded


def _upgrade_v2(header: dict, events: List[dict]) -> Tuple[dict, List[dict]]:
    """v2 -> v3: verdicts gain the dispatch-path dimension."""
    upgraded: List[dict] = []
    for event in events:
        event = dict(event)
        verdict = event.get("verdict")
        if isinstance(verdict, dict) and "dispatch" not in verdict:
            verdict = dict(verdict)
            verdict["dispatch"] = "compiled"
            event["verdict"] = verdict
        upgraded.append(event)
    header = dict(header)
    header["schema_version"] = 3
    return header, upgraded


#: version -> function lifting a trace *from* that version to the next.
_UPGRADES: Dict[int, Callable[[dict, List[dict]], Tuple[dict, List[dict]]]] = {
    1: _upgrade_v1,
    2: _upgrade_v2,
}


def upgrade_trace(header: dict, events: List[dict]) -> Tuple[dict, List[dict]]:
    """Migrate *(header, events)* to :data:`SCHEMA_VERSION`.

    Current-version traces pass through untouched.  Raises
    :class:`UnknownSchemaVersionError` for versions this build has no
    migration path for (missing, newer than current, or pre-history).
    """
    version = header.get("schema_version")
    if not isinstance(version, int):
        raise UnknownSchemaVersionError(
            f"trace header carries no integer schema_version (got {version!r})"
        )
    while version != SCHEMA_VERSION:
        upgrade = _UPGRADES.get(version)
        if upgrade is None:
            raise UnknownSchemaVersionError(
                f"unsupported trace schema_version {version}; this build "
                f"reads versions {sorted(_UPGRADES)} + [{SCHEMA_VERSION}]"
            )
        header, events = upgrade(header, events)
        version = header["schema_version"]
    return header, events
