"""Replay: re-execute a recorded trace and assert byte identity.

Replay does not interpret events — it re-runs the *workload* the trace
header names (every registered workload is a deterministic function of
its parameters under the virtual clock), records the fresh run, and
compares the two canonical byte streams.  Agreement means every
command, rule verdict, cache disposition, trajectory sweep, state
delta, timestamp, and span id came out identical; any regression in the
pipeline shows up as a first divergence with a field-level diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.canon import canonical_json
from repro.trace.recorder import RunTrace
from repro.trace.workloads import record_workload

__all__ = ["Divergence", "ReplayReport", "replay_trace", "find_divergence"]


@dataclass(frozen=True)
class Divergence:
    """The first point where a replayed run left the recorded trace."""

    #: ``"header"``, ``"event"``, ``"event_count"``, or ``"footer"``.
    kind: str
    #: Event sequence number for ``kind == "event"``; ``None`` otherwise.
    seq: Optional[int]
    #: Field-level mismatches: (field, recorded canonical, replayed canonical).
    fields: Tuple[Tuple[str, str, str], ...]


@dataclass
class ReplayReport:
    """Outcome of replaying one trace."""

    match: bool
    recorded: RunTrace
    replayed: RunTrace
    divergence: Optional[Divergence] = None

    def diff_text(self) -> str:
        """Human-readable first-divergence report (``--diff`` output)."""
        if self.match:
            return "traces are byte-identical"
        div = self.divergence
        assert div is not None
        header = self.recorded.header
        lines = [
            f"trace {header.get('trace_id')} "
            f"(workload={header.get('workload')!r}, "
            f"params={canonical_json(header.get('params', {}))})",
        ]
        if div.kind == "event":
            recorded_event = (
                self.recorded.events[div.seq]
                if div.seq is not None and div.seq < len(self.recorded.events)
                else {}
            )
            lines.append(
                f"first divergence at event {div.seq} "
                f"(t={recorded_event.get('t')}, "
                f"{recorded_event.get('device')}.{recorded_event.get('method')}):"
            )
        elif div.kind == "event_count":
            lines.append("event streams have different lengths:")
        else:
            lines.append(f"first divergence in the {div.kind}:")
        for field, recorded, replayed in div.fields:
            lines.append(f"  {field}:")
            lines.append(f"    recorded: {recorded}")
            lines.append(f"    replayed: {replayed}")
        return "\n".join(lines)


def _diff_fields(
    recorded: Dict[str, Any], replayed: Dict[str, Any]
) -> Tuple[Tuple[str, str, str], ...]:
    """Per-field canonical mismatches between two records."""
    fields: List[Tuple[str, str, str]] = []
    for key in sorted(set(recorded) | set(replayed)):
        mine = canonical_json(recorded.get(key)) if key in recorded else "<absent>"
        theirs = canonical_json(replayed.get(key)) if key in replayed else "<absent>"
        if mine != theirs:
            fields.append((key, mine, theirs))
    return tuple(fields)


def find_divergence(recorded: RunTrace, replayed: RunTrace) -> Optional[Divergence]:
    """Locate the first divergence between two traces, or ``None``.

    Checked in stream order — header, events pairwise, event count,
    footer — so the reported point is the earliest place a reader of
    the two files would see them disagree."""
    fields = _diff_fields(recorded.header, replayed.header)
    if fields:
        return Divergence(kind="header", seq=None, fields=fields)
    for seq, (mine, theirs) in enumerate(zip(recorded.events, replayed.events)):
        fields = _diff_fields(mine, theirs)
        if fields:
            return Divergence(kind="event", seq=seq, fields=fields)
    if len(recorded.events) != len(replayed.events):
        return Divergence(
            kind="event_count",
            seq=min(len(recorded.events), len(replayed.events)),
            fields=(
                (
                    "events",
                    str(len(recorded.events)),
                    str(len(replayed.events)),
                ),
            ),
        )
    fields = _diff_fields(recorded.footer, replayed.footer)
    if fields:
        return Divergence(kind="footer", seq=None, fields=fields)
    return None


def replay_trace(recorded: RunTrace) -> ReplayReport:
    """Re-execute *recorded*'s workload and compare byte streams.

    The comparison witness is :meth:`RunTrace.canonical_bytes` equality;
    on mismatch the report carries the first divergence for
    :meth:`ReplayReport.diff_text`."""
    header = recorded.header
    replayed = record_workload(
        header["workload"], header.get("params") or {}, obs=bool(header.get("obs"))
    )
    if recorded.canonical_bytes() == replayed.canonical_bytes():
        return ReplayReport(match=True, recorded=recorded, replayed=replayed)
    return ReplayReport(
        match=False,
        recorded=recorded,
        replayed=replayed,
        divergence=find_divergence(recorded, replayed),
    )
