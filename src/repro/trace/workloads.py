"""The recordable workload registry and the record entry point.

A *workload* is a named, parameterized, fully deterministic run of the
guarded-execution pipeline: given the same name and parameters it
executes the identical command sequence under the virtual clock.  That
determinism is the whole replay story — a persisted trace names its
workload in the header, and replay simply records the workload again
and compares canonical bytes.

Registered workloads:

- ``solubility`` — the Fig. 1(b) production run on the Hein deck under
  modified RABIT + headless Extended Simulator;
- ``testbed`` — the safe Fig. 5 two-arm workflow;
- ``centrifuge`` — the testbed centrifugation leg (prepared vial);
- ``multi_door`` — the §V-C two-door simultaneous-access scenario;
- ``mutant`` — the monitored leg of Monte Carlo mutant
  ``(params: seed, index)``, a pure function of the pair;
- ``bug`` — one campaign bug under one configuration
  (``params: bug_id, config``);
- ``workflow`` — a declarative workflow preset run through the DAG
  executor (``params: preset`` plus any preset parameters, or
  ``spec`` = path to an exported spec file);
- ``fuzz`` — the monitored leg of random-DAG fuzz case
  ``(params: seed, index)``, a pure function of the pair.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.trace.recorder import TRACE, RunTrace

WorkloadFn = Callable[[Dict[str, Any]], Dict[str, Any]]

#: name -> function(params) -> JSON-safe outcome dict (the trace footer).
WORKLOADS: Dict[str, WorkloadFn] = {}


def _workload(name: str) -> Callable[[WorkloadFn], WorkloadFn]:
    def register(fn: WorkloadFn) -> WorkloadFn:
        WORKLOADS[name] = fn
        return fn

    return register


def _compiled(params: Dict[str, Any]) -> bool:
    """Whether this run uses compiled rulebase dispatch.

    Every workload honours an optional ``dispatch`` parameter
    (``"compiled"``, the default, or ``"interpreted"``) so the
    compiled-vs-interpreted differential suite can record both paths of
    the same workload and pin their verdict streams identical."""
    dispatch = params.get("dispatch", "compiled")
    if dispatch not in ("compiled", "interpreted"):
        raise KeyError(
            f"unknown dispatch mode {dispatch!r}; use 'compiled' or 'interpreted'"
        )
    return dispatch == "compiled"


def _bind_obs(rabit: Any) -> None:
    """Stamp spans with the run's virtual clock when observability is on
    (the recorded ``obs_span_id`` cross-links depend on span ids, which
    are deterministic because :func:`record_workload` resets OBS)."""
    from repro.obs import OBS

    if OBS.enabled:
        OBS.bind_clock(rabit.clock)


def _result_outcome(result: Any, commands: int) -> Dict[str, Any]:
    """The footer outcome shared by every workflow-shaped workload."""
    return {
        "completed": result.completed,
        "commands": commands,
        "alert": str(result.alert) if result.alert else None,
        "device_error": result.device_error,
    }


@_workload("solubility")
def _run_solubility(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.clock import VirtualClock
    from repro.core.monitor import RabitOptions
    from repro.lab.hein import build_hein_deck, make_hein_rabit
    from repro.lab.workflows import build_solubility_workflow, run_workflow

    deck = build_hein_deck()
    options = RabitOptions.modified(
        use_extended_simulator=True, bypass_gui=True,
        compiled_dispatch=_compiled(params),
    )
    rabit, proxies, trace = make_hein_rabit(
        deck, options=options, use_extended_simulator=True, clock=VirtualClock()
    )
    _bind_obs(rabit)
    result = run_workflow(build_solubility_workflow(proxies))
    return _result_outcome(result, len(trace))


@_workload("testbed")
def _run_testbed(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.monitor import RabitOptions
    from repro.lab.workflows import build_testbed_workflow, run_workflow
    from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

    deck = build_testbed_deck(noise_sigma=0.003)
    rabit, proxies, trace = make_testbed_rabit(
        deck, options=RabitOptions.modified(compiled_dispatch=_compiled(params))
    )
    _bind_obs(rabit)
    result = run_workflow(build_testbed_workflow(proxies))
    return _result_outcome(result, len(trace))


@_workload("centrifuge")
def _run_centrifuge(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.monitor import RabitOptions
    from repro.lab.workflows import build_centrifuge_workflow, run_workflow
    from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

    deck = build_testbed_deck(noise_sigma=0.003)
    vial = deck.vials["vial_t1"]
    vial.decap_vial()
    vial.contents.solid_mg = 5.0
    vial.contents.liquid_ml = 5.0
    rabit, proxies, trace = make_testbed_rabit(
        deck, options=RabitOptions.modified(compiled_dispatch=_compiled(params))
    )
    _bind_obs(rabit)
    result = run_workflow(build_centrifuge_workflow(proxies))
    return _result_outcome(result, len(trace))


@_workload("multi_door")
def _run_multi_door(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.lab.two_door import (
        build_two_door_deck,
        build_two_door_workflow,
        make_two_door_rabit,
    )
    from repro.lab.workflows import run_workflow

    from repro.core.monitor import RabitOptions

    deck = build_two_door_deck()
    rabit, proxies, trace = make_two_door_rabit(
        deck, options=RabitOptions.modified(compiled_dispatch=_compiled(params))
    )
    _bind_obs(rabit)
    result = run_workflow(build_two_door_workflow(proxies))
    return _result_outcome(result, len(trace))


@_workload("mutant")
def _run_mutant(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.monitor import RabitOptions
    from repro.faults.montecarlo import run_mutant_monitored

    seed, index = int(params["seed"]), int(params["index"])
    description, result = run_mutant_monitored(
        seed, index,
        options=RabitOptions.modified(compiled_dispatch=_compiled(params)),
    )
    outcome = _result_outcome(result, len(result.executed_lines))
    outcome["description"] = description
    outcome["detected"] = result.stopped_by_rabit
    return outcome


@_workload("bug")
def _run_bug(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.faults.campaign import CAMPAIGN_BUGS, run_bug

    bug_id, config = str(params["bug_id"]), str(params["config"])
    by_id = {bug.bug_id: bug for bug in CAMPAIGN_BUGS}
    try:
        bug = by_id[bug_id]
    except KeyError:
        raise KeyError(
            f"unknown bug id {bug_id!r}; known: {sorted(by_id)}"
        ) from None
    outcome = run_bug(bug, config, compiled_dispatch=_compiled(params))
    return {
        "bug_id": bug_id,
        "config": config,
        "detected": outcome.detected,
        "alert": outcome.alert,
        "device_error": outcome.device_error,
        "completed": outcome.completed,
        "matches_paper": outcome.matches_paper,
    }


@_workload("workflow")
def _run_workflow(params: Dict[str, Any]) -> Dict[str, Any]:
    """A declarative workflow run: a named preset (plus preset
    parameters), or ``spec`` = path to an exported spec file.  The
    footer carries the canonical journal digest, so replay equality
    covers the full command stream end to end."""
    import json

    from repro.core.monitor import RabitOptions
    from repro.workflow import (
        WorkflowDAG,
        build_context,
        execute_dag,
        journal_digest,
        run_journal,
    )

    remaining = dict(params)
    remaining.pop("dispatch", None)
    options = RabitOptions.modified(compiled_dispatch=_compiled(params))
    spec_path = remaining.pop("spec", None)
    if spec_path is not None:
        if remaining.pop("preset", None) is not None:
            raise KeyError("workflow workload takes 'preset' or 'spec', not both")
        dag = WorkflowDAG.from_spec(json.loads(Path(spec_path).read_text()))
        if remaining:
            raise KeyError(
                f"spec runs take no extra parameters, got {sorted(remaining)}"
            )
    else:
        from repro.workflow import build_preset

        name = str(remaining.pop("preset", "solubility"))
        dag = build_preset(name, remaining)
    ctx = build_context(
        deck=dag.deck,
        deck_params=dag.deck_params,
        prepare=dag.prepare,
        options=options,
    )
    _bind_obs(ctx.rabit)
    result = execute_dag(dag, ctx)
    journal = run_journal(
        ctx.trace,
        result.executed_nodes,
        result.completed,
        result.alert,
        result.device_error,
        result.recovered,
    )
    outcome = _result_outcome(result, len(ctx.trace))
    outcome["workflow"] = dag.name
    outcome["recovered"] = result.recovered
    outcome["journal_digest"] = journal_digest(journal)
    return outcome


@_workload("fuzz")
def _run_fuzz(params: Dict[str, Any]) -> Dict[str, Any]:
    """The monitored leg of random-DAG fuzz case ``(seed, index)`` —
    pure in the pair, like the ``mutant`` workload."""
    from repro.core.monitor import RabitOptions
    from repro.workflow import build_context, execute_dag, random_dag

    seed, index = int(params["seed"]), int(params["index"])
    dag = random_dag(seed, index)
    ctx = build_context(
        deck=dag.deck,
        options=RabitOptions.modified(compiled_dispatch=_compiled(params)),
    )
    _bind_obs(ctx.rabit)
    result = execute_dag(dag, ctx)
    outcome = _result_outcome(result, len(ctx.trace))
    outcome["workflow"] = dag.name
    outcome["detected"] = result.stopped_by_rabit
    return outcome


def record_workload(
    name: str, params: Optional[Dict[str, Any]] = None, obs: bool = False
) -> RunTrace:
    """Run registered workload *name* with recording on; returns its trace.

    With ``obs=True`` the observability layer is reset and enabled for
    the duration of the run, so recorded events carry deterministic span
    ids and the spans carry the trace id — the cross-link is stable
    because span numbering restarts from 1 on every recorded run."""
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    params = dict(params or {})
    from repro.obs import OBS

    if obs:
        OBS.reset()
        OBS.enable()
    TRACE.begin(name, params, obs=obs)
    try:
        outcome = fn(params)
    except BaseException:
        TRACE.abort()
        raise
    finally:
        if obs:
            OBS.disable()
    return TRACE.end(outcome)


# ---------------------------------------------------------------------------
# Auto-dump hooks for the fault-injection engines
# ---------------------------------------------------------------------------


def dump_failed_mutant_traces(report: Any, seed: int, trace_dir: str) -> List[Path]:
    """Record and persist a trace for every failed Monte Carlo mutant.

    *Failed* means misclassified — a false negative (harm RABIT missed)
    or a false positive (a benign mutant it flagged).  Each failure's
    monitored leg is re-recorded in this process (pure in ``(seed,
    index)``, so identical to what the sweep ran, sharded or not) and
    written to ``mutant-s<seed>-i<index>.trace.jsonl``."""
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for outcome in report.outcomes:
        if outcome.classification not in ("false_negative", "false_positive"):
            continue
        if "harness_error" in outcome.damage_kinds:
            continue  # the run itself crashed; there is nothing to replay
        trace = record_workload("mutant", {"seed": seed, "index": outcome.seed})
        path = directory / f"mutant-s{seed}-i{outcome.seed}.trace.jsonl"
        trace.write_jsonl(path)
        written.append(path)
    return written


def dump_failed_dag_traces(report: Any, seed: int, trace_dir: str) -> List[Path]:
    """Record and persist a trace for every misclassified random-DAG
    fuzz case (the ``generator="dag"`` analogue of
    :func:`dump_failed_mutant_traces`); files are named
    ``fuzz-s<seed>-i<index>.trace.jsonl``."""
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for outcome in report.outcomes:
        if outcome.classification not in ("false_negative", "false_positive"):
            continue
        if "harness_error" in outcome.damage_kinds:
            continue  # the run itself crashed; there is nothing to replay
        trace = record_workload("fuzz", {"seed": seed, "index": outcome.seed})
        path = directory / f"fuzz-s{seed}-i{outcome.seed}.trace.jsonl"
        trace.write_jsonl(path)
        written.append(path)
    return written


def dump_campaign_mismatch_traces(result: Any, trace_dir: str) -> List[Path]:
    """Record and persist a trace for every campaign outcome that
    deviates from the paper's reported detection; files are named
    ``bug-<bug_id>-<config>.trace.jsonl``."""
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for outcome in result.mismatches():
        trace = record_workload(
            "bug", {"bug_id": outcome.bug.bug_id, "config": outcome.config}
        )
        path = directory / f"bug-{outcome.bug.bug_id}-{outcome.config}.trace.jsonl"
        trace.write_jsonl(path)
        written.append(path)
    return written
