"""Deterministic run traces: record, persist, replay, compare.

``repro.trace`` turns every guarded run into a canonical,
schema-versioned event stream — commands with arguments, rule verdicts
(including which rule fired and whether the verdict came from the
cache), trajectory-sweep outcomes, state deltas, virtual-clock
timestamps, and observability span ids — and replays any persisted
trace by re-executing the same workload under the virtual clock,
asserting byte-identical agreement via the shared canonical-JSON
witness in :mod:`repro.trace.canon`.

Entry points:

- :data:`~repro.trace.recorder.TRACE` — the process-wide recorder the
  interceptor/monitor/simulator consult (default off, like ``OBS``);
- :func:`~repro.trace.workloads.record_workload` — run a registered
  workload with recording on and return its :class:`RunTrace`;
- :func:`~repro.trace.replay.replay_trace` — re-execute a trace and
  report the first divergence, if any;
- ``python -m repro record`` / ``python -m repro replay`` — the CLI.
"""

from repro.trace.canon import canonical_bytes, canonical_json, content_digest
from repro.trace.recorder import TRACE, RunTrace, TraceFormatError
from repro.trace.replay import ReplayReport, replay_trace
from repro.trace.schema import (
    SCHEMA_VERSION,
    TraceSchemaError,
    UnknownSchemaVersionError,
    upgrade_trace,
)
from repro.trace.workloads import WORKLOADS, record_workload

__all__ = [
    "TRACE",
    "WORKLOADS",
    "ReplayReport",
    "RunTrace",
    "SCHEMA_VERSION",
    "TraceFormatError",
    "TraceSchemaError",
    "UnknownSchemaVersionError",
    "canonical_bytes",
    "canonical_json",
    "content_digest",
    "record_workload",
    "replay_trace",
    "upgrade_trace",
]
