"""Six-axis robot arm kinematics.

The labs in the paper use six-axis arms — the UR3e in the Hein Lab
production deck, the UR5e in the Berlinguette Lab, and the educational
ViperX-300 and Niryo Ned2 on the testbed.  This package models them with
standard Denavit-Hartenberg chains:

- :mod:`repro.kinematics.dh` -- DH links and forward kinematics.
- :mod:`repro.kinematics.profiles` -- per-arm DH tables, joint limits,
  reach, home/sleep postures, and vendor failure modes (the paper found
  that ViperX *silently skips* an unreachable command while Ned2 *throws
  an exception and halts*, a difference that drives one of the evaluation's
  missed detections).
- :mod:`repro.kinematics.ik` -- damped-least-squares inverse kinematics.
- :mod:`repro.kinematics.trajectory` -- joint-space trajectories and their
  sampled Cartesian sweeps, which the Extended Simulator polls.
- :mod:`repro.kinematics.arm` -- the :class:`ArmKinematics` facade used by
  the device layer.
"""

from repro.kinematics.dh import DHLink, DHChain
from repro.kinematics.profiles import (
    ArmProfile,
    UnreachableBehavior,
    UR3E,
    UR5E,
    VIPERX_300,
    NED2,
    N9,
    profile_by_name,
)
from repro.kinematics.ik import (
    IKResult,
    analytic_position_jacobian,
    numeric_position_jacobian,
    solve_position_ik,
    solve_position_ik_batch,
)
from repro.kinematics.trajectory import JointTrajectory, plan_joint_trajectory
from repro.kinematics.arm import ArmKinematics, TrajectoryPlan, UnreachableTargetError

__all__ = [
    "DHLink",
    "DHChain",
    "ArmProfile",
    "UnreachableBehavior",
    "UR3E",
    "UR5E",
    "VIPERX_300",
    "NED2",
    "N9",
    "profile_by_name",
    "IKResult",
    "analytic_position_jacobian",
    "numeric_position_jacobian",
    "solve_position_ik",
    "solve_position_ik_batch",
    "JointTrajectory",
    "plan_joint_trajectory",
    "ArmKinematics",
    "TrajectoryPlan",
    "UnreachableTargetError",
]
