"""The :class:`ArmKinematics` facade used by the device layer.

It binds an :class:`~repro.kinematics.profiles.ArmProfile` to a mounting
pose, tracks the current joint posture, and plans Cartesian moves.  Vendor
failure modes are reproduced here:

- ViperX (``SILENT_SKIP``): an unreachable target yields a plan marked
  ``skipped`` — the arm stays where it is and *no error is raised*, exactly
  the behaviour §IV calls "potentially unsafe".
- Ned2 / UR arms (``RAISE``): an unreachable target raises
  :class:`UnreachableTargetError` immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.shapes import Cuboid, bounding_cuboid
from repro.geometry.transforms import Transform
from repro.geometry.vec import Vec3, as_vec3
from repro.kinematics.dh import DHChain
from repro.kinematics.ik import IKResult, solve_position_ik, solve_position_ik_batch
from repro.kinematics.profiles import ArmProfile, UnreachableBehavior
from repro.kinematics.trajectory import JointTrajectory, plan_joint_trajectory


class UnreachableTargetError(Exception):
    """Raised by arms whose controller halts on an unplannable trajectory."""

    def __init__(self, arm: str, target: Sequence[float], residual: float) -> None:
        t = as_vec3(target)
        super().__init__(
            f"{arm}: cannot compute a trajectory to "
            f"({t[0]:.3f}, {t[1]:.3f}, {t[2]:.3f}) (residual {residual * 100:.1f} cm)"
        )
        self.arm = arm
        self.target = tuple(float(x) for x in t)
        self.residual = residual


@dataclass(frozen=True)
class TrajectoryPlan:
    """Result of planning a Cartesian move.

    ``skipped`` is True only for silent-skip arms given an unreachable
    target: the trajectory is then a zero-length stay-in-place motion and
    ``target_reached`` is False.  Callers that ignore ``skipped`` reproduce
    the unsafe continue-without-moving behaviour the paper observed.
    """

    trajectory: JointTrajectory
    target: Tuple[float, float, float]
    skipped: bool
    residual: float

    @property
    def target_reached(self) -> bool:
        """Whether executing the plan actually arrives at the target."""
        return not self.skipped


class ArmKinematics:
    """Kinematic state and planning for one mounted six-axis arm."""

    #: Cartesian tolerance for declaring a target reachable (2 mm).
    REACH_TOLERANCE = 0.002

    def __init__(
        self,
        profile: ArmProfile,
        base: Optional[Transform] = None,
        ik_seed: Optional[Sequence[float]] = None,
    ) -> None:
        self.profile = profile
        self._chain: DHChain = profile.chain().with_base(base or Transform())
        self._q: np.ndarray = np.asarray(
            ik_seed if ik_seed is not None else profile.home_q, dtype=np.float64
        )
        if self._q.shape != (profile.dof,):
            raise ValueError("ik_seed must match the arm's degrees of freedom")
        self._limits_lo, self._limits_hi = profile.limit_arrays()

    # -- state ---------------------------------------------------------------

    @property
    def chain(self) -> DHChain:
        """The mounted kinematic chain."""
        return self._chain

    @property
    def q(self) -> Tuple[float, ...]:
        """Current joint posture."""
        return tuple(self._q)

    def set_posture(self, q: Sequence[float]) -> None:
        """Teleport the joints to *q* (used by tests and scenario setup)."""
        arr = np.asarray(q, dtype=np.float64)
        if arr.shape != (self.profile.dof,):
            raise ValueError("posture must match the arm's degrees of freedom")
        self._q = arr.copy()

    def current_position(self) -> Vec3:
        """Current end-effector position in world coordinates."""
        return self._chain.end_effector_position(self._q)

    def base_position(self) -> Vec3:
        """World position of the arm's mounting point."""
        return self._chain.base.translation

    # -- planning --------------------------------------------------------------

    def _ik_seeds(self) -> List[np.ndarray]:
        """Deterministic IK restart seeds: current posture first, then
        canonical postures that cover distinct elbow/waist branches.

        Damped least squares is a local method; restarting from a few
        well-spread postures makes every point inside the physical workspace
        solvable, so the SILENT_SKIP/RAISE paths only trigger for genuinely
        unreachable targets (as on the real controllers).
        """
        half_pi = float(np.pi / 2)
        seeds = [
            self._q.copy(),
            np.asarray(self.profile.home_q, dtype=np.float64),
        ]
        for waist in (0.0, half_pi, -half_pi, float(np.pi) - 0.2):
            for shoulder, elbow in ((-0.8, 1.2), (-1.2, 0.6), (-0.4, 1.6)):
                q = np.zeros(self.profile.dof)
                q[0], q[1], q[2] = waist, shoulder, elbow
                if self.profile.dof >= 4:
                    q[3] = -half_pi
                seeds.append(self._clamp(q))
        return seeds

    def _clamp(self, q: np.ndarray) -> np.ndarray:
        """Clamp a posture to the profile's joint limits."""
        return np.clip(q, self._limits_lo, self._limits_hi)

    def plan_move(self, target: Sequence[float], speed: float = 1.0) -> TrajectoryPlan:
        """Plan a move of the end effector to Cartesian *target*.

        Applies the profile's unreachable-target behaviour; see the module
        docstring.  A reachable target yields a joint-space trajectory from
        the current posture to the IK solution.
        """
        tgt = as_vec3(target)
        result = None
        for seed in self._ik_seeds():
            candidate = solve_position_ik(
                self._chain,
                tgt,
                q0=seed,
                joint_limits=self.profile.joint_limits,
                tolerance=self.REACH_TOLERANCE,
            )
            if result is None or candidate.error < result.error:
                result = candidate
            if candidate.converged:
                break
        assert result is not None
        if not result.converged:
            if self.profile.unreachable_behavior is UnreachableBehavior.SILENT_SKIP:
                stay = plan_joint_trajectory(self._chain, self._q, self._q, speed=speed)
                return TrajectoryPlan(
                    trajectory=stay,
                    target=tuple(float(x) for x in tgt),
                    skipped=True,
                    residual=result.error,
                )
            raise UnreachableTargetError(self.profile.name, tgt, result.error)

        trajectory = plan_joint_trajectory(self._chain, self._q, result.q, speed=speed)
        return TrajectoryPlan(
            trajectory=trajectory,
            target=tuple(float(x) for x in tgt),
            skipped=False,
            residual=result.error,
        )

    def solve_targets(self, targets: Sequence[Sequence[float]]) -> List[IKResult]:
        """One vectorized IK solve per Cartesian target, from the current posture.

        A reachability *screen* for fault-injection campaigns: every target
        is solved concurrently through the batched analytic-Jacobian kernel
        with the current posture as seed (no multi-seed restart cascade —
        callers that need the full cascade plan targets individually via
        :meth:`plan_move`).  Joint limits are enforced, so every returned
        posture is feasible.
        """
        return solve_position_ik_batch(
            self._chain,
            targets,
            q0=self._q,
            joint_limits=self.profile.joint_limits,
            tolerance=self.REACH_TOLERANCE,
        )

    def plan_posture(self, q_end: Sequence[float], speed: float = 1.0) -> TrajectoryPlan:
        """Plan a move to an explicit joint posture (home/sleep poses)."""
        trajectory = plan_joint_trajectory(self._chain, self._q, q_end, speed=speed)
        end_position = self._chain.end_effector_position(q_end)
        return TrajectoryPlan(
            trajectory=trajectory,
            target=tuple(float(x) for x in end_position),
            skipped=False,
            residual=0.0,
        )

    def plan_home(self) -> TrajectoryPlan:
        """Plan a move to the vendor home posture."""
        return self.plan_posture(self.profile.home_q)

    def plan_sleep(self) -> TrajectoryPlan:
        """Plan a move to the vendor sleep posture."""
        return self.plan_posture(self.profile.sleep_q)

    def execute(self, plan: TrajectoryPlan) -> Vec3:
        """Commit the plan: advance the joint state to the trajectory's end.

        Returns the resulting end-effector position.  For a skipped plan the
        posture is unchanged — the silent-skip semantics.
        """
        self._q = np.asarray(plan.trajectory.q_end, dtype=np.float64)
        return self.current_position()

    # -- geometry ----------------------------------------------------------------

    def arm_polyline(self, q: Optional[Sequence[float]] = None) -> List[Vec3]:
        """Joint-origin polyline of the arm at posture *q* (default: current)."""
        return self._chain.joint_positions(self._q if q is None else q)

    def footprint_cuboid(self, margin: Optional[float] = None, name: Optional[str] = None) -> Cuboid:
        """Cuboid bounding the arm at its current posture.

        Time multiplexing models a stationary arm "as 3D cuboid spaces
        (identically to other devices)" — this is that cuboid, inflated by
        the link radius (or an explicit *margin*).
        """
        pad = self.profile.link_radius if margin is None else margin
        box = bounding_cuboid(self.arm_polyline(), name=name or self.profile.name)
        return box.inflated(pad)

    def reach_envelope(self) -> float:
        """Nominal maximum reach from the base (metres)."""
        return self.profile.reach
