"""Denavit-Hartenberg chains and forward kinematics.

A :class:`DHChain` is an ordered list of revolute :class:`DHLink` entries.
Forward kinematics returns both the end-effector pose and the positions of
every intermediate joint, because the Extended Simulator needs the whole
arm (not just the tool tip) to test against device cuboids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.transforms import Transform
from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class DHLink:
    """One link in standard DH convention — revolute or prismatic.

    Parameters follow the classic (Craig-style ordering of the) convention:

    - ``a``      link length (metres): distance along x from z_{i-1} to z_i.
    - ``alpha``  link twist (radians): angle about x from z_{i-1} to z_i.
    - ``d``      link offset (metres): distance along z_{i-1}.
    - ``theta_offset``  fixed joint-angle offset added to the commanded angle.
    - ``prismatic``  when True, the joint variable extends ``d`` instead of
      rotating ``theta`` (SCARA z-lifts, gantries — e.g. the N9 arm at the
      Berlinguette precursor station).
    """

    a: float
    alpha: float
    d: float
    theta_offset: float = 0.0
    prismatic: bool = False

    def transform(self, q: float) -> np.ndarray:
        """The 4x4 transform of this link for joint variable *q*
        (radians for revolute joints, metres for prismatic ones)."""
        if self.prismatic:
            th = self.theta_offset
            d = self.d + q
        else:
            th = q + self.theta_offset
            d = self.d
        ct, st = np.cos(th), np.sin(th)
        ca, sa = np.cos(self.alpha), np.sin(self.alpha)
        return np.array(
            [
                [ct, -st * ca, st * sa, self.a * ct],
                [st, ct * ca, -ct * sa, self.a * st],
                [0.0, sa, ca, d],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )


class DHChain:
    """A serial chain of revolute DH links mounted at a base transform."""

    def __init__(self, links: Sequence[DHLink], base: Transform | None = None) -> None:
        if not links:
            raise ValueError("a DH chain needs at least one link")
        self._links: Tuple[DHLink, ...] = tuple(links)
        self._base = base if base is not None else Transform()

    @property
    def dof(self) -> int:
        """Number of revolute joints."""
        return len(self._links)

    @property
    def base(self) -> Transform:
        """Mounting transform of the chain's base in world coordinates."""
        return self._base

    def with_base(self, base: Transform) -> "DHChain":
        """A copy of this chain mounted at a different *base* transform."""
        return DHChain(self._links, base=base)

    def _check_q(self, q: Sequence[float]) -> np.ndarray:
        arr = np.asarray(q, dtype=np.float64)
        if arr.shape != (self.dof,):
            raise ValueError(f"expected {self.dof} joint angles, got shape {arr.shape}")
        return arr

    def forward(self, q: Sequence[float]) -> Transform:
        """End-effector pose (world frame) for joint vector *q*."""
        arr = self._check_q(q)
        m = self._base.matrix.copy()
        for link, theta in zip(self._links, arr):
            m = m @ link.transform(float(theta))
        return Transform(m)

    def joint_positions(self, q: Sequence[float]) -> List[Vec3]:
        """World positions of the base and every joint frame origin.

        Returns ``dof + 1`` points: the base origin followed by the origin
        of each successive link frame (the last is the end-effector).  These
        points are the polyline the collision checker sweeps.
        """
        arr = self._check_q(q)
        m = self._base.matrix.copy()
        points: List[Vec3] = [m[:3, 3].copy()]
        for link, theta in zip(self._links, arr):
            m = m @ link.transform(float(theta))
            points.append(m[:3, 3].copy())
        return points

    def end_effector_position(self, q: Sequence[float]) -> Vec3:
        """World position of the end effector for joint vector *q*."""
        return self.forward(q).translation
