"""Denavit-Hartenberg chains and forward kinematics.

A :class:`DHChain` is an ordered list of revolute :class:`DHLink` entries.
Forward kinematics returns both the end-effector pose and the positions of
every intermediate joint, because the Extended Simulator needs the whole
arm (not just the tool tip) to test against device cuboids.

Two implementations coexist, mirroring the collision layer's layout:

- The scalar methods (:meth:`DHChain.forward`,
  :meth:`DHChain.joint_positions`, :meth:`DHChain.frames`) are the
  *reference implementation* — one 4x4 per link per call, verbatim the
  textbook recurrence.  The differential suite trusts them.
- The batched methods (:meth:`DHChain.frames_batch`,
  :meth:`DHChain.forward_batch`, :meth:`DHChain.joint_positions_batch`)
  accept an ``(S, dof)`` joint matrix and evaluate all S samples in one
  stacked pass: per-link constants (``cos/sin(alpha)``, ``a``, ``d``,
  ``theta_offset``, the prismatic mask) are precomputed at construction,
  each link contributes one ``(S, 4, 4)`` transform stack built from
  vectorized ``cos``/``sin``, and composition is ``dof`` stacked matmuls
  over the sample axis instead of ``S x dof`` per-sample rebuilds.  The
  arithmetic is element-for-element the same float64 operations as the
  scalar recurrence, so the two agree to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.transforms import Transform
from repro.geometry.vec import Vec3
from repro.obs import OBS

_OBS_FK_SAMPLES = OBS.registry.counter(
    "kinematics_fk_samples_batched_total",
    "Joint samples evaluated through the batched FK kernel.",
)


@dataclass(frozen=True)
class DHLink:
    """One link in standard DH convention — revolute or prismatic.

    Parameters follow the classic (Craig-style ordering of the) convention:

    - ``a``      link length (metres): distance along x from z_{i-1} to z_i.
    - ``alpha``  link twist (radians): angle about x from z_{i-1} to z_i.
    - ``d``      link offset (metres): distance along z_{i-1}.
    - ``theta_offset``  fixed joint-angle offset added to the commanded angle.
    - ``prismatic``  when True, the joint variable extends ``d`` instead of
      rotating ``theta`` (SCARA z-lifts, gantries — e.g. the N9 arm at the
      Berlinguette precursor station).
    """

    a: float
    alpha: float
    d: float
    theta_offset: float = 0.0
    prismatic: bool = False

    def transform(self, q: float) -> np.ndarray:
        """The 4x4 transform of this link for joint variable *q*
        (radians for revolute joints, metres for prismatic ones)."""
        if self.prismatic:
            th = self.theta_offset
            d = self.d + q
        else:
            th = q + self.theta_offset
            d = self.d
        ct, st = np.cos(th), np.sin(th)
        ca, sa = np.cos(self.alpha), np.sin(self.alpha)
        return np.array(
            [
                [ct, -st * ca, st * sa, self.a * ct],
                [st, ct * ca, -ct * sa, self.a * st],
                [0.0, sa, ca, d],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )


class DHChain:
    """A serial chain of revolute DH links mounted at a base transform."""

    def __init__(self, links: Sequence[DHLink], base: Transform | None = None) -> None:
        if not links:
            raise ValueError("a DH chain needs at least one link")
        self._links: Tuple[DHLink, ...] = tuple(links)
        self._base = base if base is not None else Transform()
        # Per-link constants for the batched kernels, packed once.  The
        # trig of the (fixed) twist angles is evaluated here so a batched
        # sweep pays only for cos/sin of the joint variables.
        self._a = np.array([l.a for l in self._links], dtype=np.float64)
        self._d = np.array([l.d for l in self._links], dtype=np.float64)
        self._theta_offset = np.array(
            [l.theta_offset for l in self._links], dtype=np.float64
        )
        alpha = np.array([l.alpha for l in self._links], dtype=np.float64)
        self._cos_alpha = np.cos(alpha)
        self._sin_alpha = np.sin(alpha)
        self._prismatic = np.array(
            [l.prismatic for l in self._links], dtype=bool
        )

    @property
    def dof(self) -> int:
        """Number of revolute joints."""
        return len(self._links)

    @property
    def base(self) -> Transform:
        """Mounting transform of the chain's base in world coordinates."""
        return self._base

    @property
    def prismatic_mask(self) -> np.ndarray:
        """Read-only ``(dof,)`` boolean mask of prismatic joints."""
        return self._prismatic.copy()

    def with_base(self, base: Transform) -> "DHChain":
        """A copy of this chain mounted at a different *base* transform."""
        return DHChain(self._links, base=base)

    def _check_q(self, q: Sequence[float]) -> np.ndarray:
        arr = np.asarray(q, dtype=np.float64)
        if arr.shape != (self.dof,):
            raise ValueError(f"expected {self.dof} joint angles, got shape {arr.shape}")
        return arr

    def _check_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        arr = np.asarray(Q, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.dof:
            raise ValueError(
                f"expected an (S, {self.dof}) joint matrix, got shape {arr.shape}"
            )
        return arr

    # ------------------------------------------------------------------
    # Scalar reference implementation
    # ------------------------------------------------------------------

    def forward(self, q: Sequence[float]) -> Transform:
        """End-effector pose (world frame) for joint vector *q*."""
        arr = self._check_q(q)
        m = self._base.matrix.copy()
        for link, theta in zip(self._links, arr):
            m = m @ link.transform(float(theta))
        return Transform(m)

    def frames(self, q: Sequence[float]) -> np.ndarray:
        """All ``dof + 1`` frame matrices as a ``(dof + 1, 4, 4)`` stack.

        Element 0 is the base frame; element ``i`` is the world pose of
        link frame ``i`` (the last is the end effector).  The analytic
        Jacobian reads joint axes and origins off this stack.
        """
        arr = self._check_q(q)
        out = np.empty((self.dof + 1, 4, 4), dtype=np.float64)
        m = self._base.matrix.copy()
        out[0] = m
        for i, (link, theta) in enumerate(zip(self._links, arr)):
            m = m @ link.transform(float(theta))
            out[i + 1] = m
        return out

    def joint_positions(self, q: Sequence[float]) -> List[Vec3]:
        """World positions of the base and every joint frame origin.

        Returns ``dof + 1`` points: the base origin followed by the origin
        of each successive link frame (the last is the end-effector).  These
        points are the polyline the collision checker sweeps.
        """
        arr = self._check_q(q)
        m = self._base.matrix.copy()
        points: List[Vec3] = [m[:3, 3].copy()]
        for link, theta in zip(self._links, arr):
            m = m @ link.transform(float(theta))
            points.append(m[:3, 3].copy())
        return points

    def end_effector_position(self, q: Sequence[float]) -> Vec3:
        """World position of the end effector for joint vector *q*."""
        return self.forward(q).translation

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------

    def link_transforms_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        """Per-link transforms for every sample: an ``(S, dof, 4, 4)`` stack.

        Row ``[s, i]`` equals ``links[i].transform(Q[s, i])`` — the same
        float64 expressions, evaluated elementwise over the whole sample
        axis at once.
        """
        arr = self._check_batch(Q)
        s, n = arr.shape
        th = np.where(self._prismatic, self._theta_offset, arr + self._theta_offset)
        d = np.where(self._prismatic, self._d + arr, self._d)
        ct, st = np.cos(th), np.sin(th)  # (S, dof)
        ca, sa = self._cos_alpha, self._sin_alpha  # (dof,)
        out = np.zeros((s, n, 4, 4), dtype=np.float64)
        out[..., 0, 0] = ct
        out[..., 0, 1] = -st * ca
        out[..., 0, 2] = st * sa
        out[..., 0, 3] = self._a * ct
        out[..., 1, 0] = st
        out[..., 1, 1] = ct * ca
        out[..., 1, 2] = -ct * sa
        out[..., 1, 3] = self._a * st
        out[..., 2, 1] = sa
        out[..., 2, 2] = ca
        out[..., 2, 3] = d
        out[..., 3, 3] = 1.0
        return out

    def frames_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        """All frames for all samples: an ``(S, dof + 1, 4, 4)`` stack.

        ``frames_batch(Q)[s]`` equals :meth:`frames` of ``Q[s]``; the
        composition runs as ``dof`` stacked matmuls over the sample axis,
        so the Python-level cost is independent of S.  This is the single
        kernel every other batched query is a view of.
        """
        arr = self._check_batch(Q)
        s = arr.shape[0]
        links = self.link_transforms_batch(arr)
        out = np.empty((s, self.dof + 1, 4, 4), dtype=np.float64)
        out[:, 0] = self._base.matrix
        cur = out[:, 0]
        for i in range(self.dof):
            cur = cur @ links[:, i]
            out[:, i + 1] = cur
        if OBS.enabled:
            _OBS_FK_SAMPLES.inc(float(s))
        return out

    def forward_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        """End-effector poses for an ``(S, dof)`` joint matrix: ``(S, 4, 4)``."""
        return self.frames_batch(Q)[:, -1]

    def joint_positions_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        """Arm polylines for all samples: an ``(S, dof + 1, 3)`` point stack.

        Row ``[s]`` is exactly :meth:`joint_positions` of ``Q[s]`` packed
        into an array — the base origin followed by every link-frame
        origin.  This is the shape
        :meth:`repro.geometry.batch.BatchCollisionEngine.polylines_hit_indices`
        consumes directly.
        """
        return np.ascontiguousarray(self.frames_batch(Q)[:, :, :3, 3])

    def end_effector_positions_batch(self, Q: Sequence[Sequence[float]]) -> np.ndarray:
        """End-effector positions for all samples: an ``(S, 3)`` array."""
        return np.ascontiguousarray(self.frames_batch(Q)[:, -1, :3, 3])
