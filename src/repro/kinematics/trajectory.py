"""Joint-space trajectories and their sampled Cartesian sweeps.

The Extended Simulator works "by continuously polling the robot arm's
trajectory and comparing it with the 3D objects' coordinates" (§III).  A
:class:`JointTrajectory` is the planned motion; :meth:`JointTrajectory.sample`
is the polling — it produces the sequence of joint vectors the simulator
inspects, and :meth:`JointTrajectory.end_effector_path` /
:meth:`JointTrajectory.link_paths` turn those into the Cartesian polylines
the collision checker sweeps against device cuboids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.vec import Vec3
from repro.kinematics.dh import DHChain


@dataclass(frozen=True)
class JointTrajectory:
    """A straight-line joint-space motion between two postures.

    ``duration`` is the nominal execution time in (virtual) seconds, used by
    the latency experiments; geometry does not depend on it.
    """

    chain: DHChain
    q_start: Tuple[float, ...]
    q_end: Tuple[float, ...]
    duration: float = 2.0

    def __post_init__(self) -> None:
        if len(self.q_start) != self.chain.dof or len(self.q_end) != self.chain.dof:
            raise ValueError("joint vectors must match the chain's degrees of freedom")

    def sample_array(self, resolution: int = 40) -> np.ndarray:
        """Polled joint vectors as one packed ``(resolution + 1, dof)`` array.

        The packed form is what the batch collision fast path consumes:
        one array out of the sampler, one broadcasted sweep in the checker,
        no per-sample Python loop in between.  Element ``[i]`` is exactly
        ``q0 + (q1 - q0) * (i / resolution)`` — the same float64 arithmetic
        as the scalar :meth:`sample`, so the two stay bit-identical.
        """
        if resolution < 1:
            raise ValueError("resolution must be at least 1")
        q0 = np.asarray(self.q_start, dtype=np.float64)
        q1 = np.asarray(self.q_end, dtype=np.float64)
        steps = np.arange(resolution + 1, dtype=np.float64) / resolution
        return q0[None, :] + (q1 - q0)[None, :] * steps[:, None]

    def sample(self, resolution: int = 40) -> List[np.ndarray]:
        """Joint vectors at *resolution* + 1 evenly spaced instants.

        This plays the role of the Extended Simulator's trajectory polling:
        each returned vector is one observation of the arm mid-motion.
        """
        return list(self.sample_array(resolution))

    def end_effector_path_array(self, resolution: int = 40) -> np.ndarray:
        """Cartesian end-effector polyline as a packed ``(R + 1, 3)`` array.

        Runs the packed sample matrix through the batched FK kernel — no
        per-sample Python loop.  Element ``[i]`` is the same float64
        arithmetic as :meth:`end_effector_path`'s scalar FK call, so the
        two stay exactly equal (the scalar path is the differential
        reference).
        """
        return self.chain.end_effector_positions_batch(self.sample_array(resolution))

    def end_effector_path(self, resolution: int = 40) -> List[Vec3]:
        """Cartesian polyline traced by the end effector (scalar reference)."""
        return [self.chain.end_effector_position(q) for q in self.sample(resolution)]

    def link_paths_array(self, resolution: int = 40) -> np.ndarray:
        """Per-sample full-arm point sets as one ``(R + 1, dof + 1, 3)`` array.

        Row ``[i]`` is the joint-origin polyline (base through end
        effector) at polled instant *i* — exactly :meth:`link_paths`
        element ``[i]`` packed into an array, produced by the batched FK
        kernel in one pass.  This is the shape the Extended Simulator
        feeds straight into the batch collision engine.
        """
        return self.chain.joint_positions_batch(self.sample_array(resolution))

    def link_paths(self, resolution: int = 40) -> List[List[Vec3]]:
        """Per-sample full-arm point sets (scalar reference).

        Each element is the list of joint-origin positions (base through end
        effector) at one polled instant; the simulator checks the segments
        between consecutive joints against obstacle cuboids.
        """
        return [self.chain.joint_positions(q) for q in self.sample(resolution)]

    def max_joint_excursion(self) -> float:
        """Largest absolute joint-angle change over the motion (radians)."""
        q0 = np.asarray(self.q_start)
        q1 = np.asarray(self.q_end)
        return float(np.max(np.abs(q1 - q0)))


def plan_joint_trajectory(
    chain: DHChain,
    q_start: Sequence[float],
    q_end: Sequence[float],
    speed: float = 1.0,
) -> JointTrajectory:
    """Plan a joint-space motion from *q_start* to *q_end*.

    *speed* is the peak joint velocity in rad/s; the duration is the time
    the slowest joint needs.  A zero-length motion still takes a small fixed
    settling time, as real controllers do.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    q0 = np.asarray(q_start, dtype=np.float64)
    q1 = np.asarray(q_end, dtype=np.float64)
    excursion = float(np.max(np.abs(q1 - q0))) if q0.size else 0.0
    duration = max(excursion / speed, 0.05)
    return JointTrajectory(chain, tuple(q0), tuple(q1), duration=duration)
