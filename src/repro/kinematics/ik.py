"""Position-only inverse kinematics via damped least squares.

The experiment scripts in the paper command arms by Cartesian target
position (the location tables of Fig. 6 are pure ``[x, y, z]`` triples), so
we only solve for end-effector *position*; the redundant orientation degrees
of freedom are absorbed by the damping term.  Damped least squares (the
Levenberg-Marquardt form of resolved-rate IK) is robust near singularities,
which matters because the testbed arms are asked to reach deliberately
awkward targets during fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.kinematics.dh import DHChain


@dataclass(frozen=True)
class IKResult:
    """Outcome of an IK solve.

    ``converged`` is False when the target is unreachable (outside the arm's
    workspace or blocked by joint limits); ``error`` is the remaining
    Cartesian distance to the target, which callers compare against their
    tolerance.
    """

    q: Tuple[float, ...]
    error: float
    iterations: int
    converged: bool


def _position_jacobian(chain: DHChain, q: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Numeric 3xN position Jacobian by central differences."""
    n = chain.dof
    jac = np.zeros((3, n))
    for i in range(n):
        dq = np.zeros(n)
        dq[i] = eps
        p_plus = chain.end_effector_position(q + dq)
        p_minus = chain.end_effector_position(q - dq)
        jac[:, i] = (p_plus - p_minus) / (2 * eps)
    return jac


def solve_position_ik(
    chain: DHChain,
    target: Sequence[float],
    q0: Sequence[float],
    joint_limits: Optional[Sequence[Tuple[float, float]]] = None,
    tolerance: float = 1e-4,
    max_iterations: int = 200,
    damping: float = 0.05,
) -> IKResult:
    """Solve for joint angles placing the end effector at *target*.

    Iterates ``q += J^T (J J^T + λ²I)^{-1} e`` from the seed posture *q0*,
    clamping to *joint_limits* after every step.  Convergence means the
    Cartesian error dropped below *tolerance*.
    """
    q = np.asarray(q0, dtype=np.float64).copy()
    tgt = np.asarray(target, dtype=np.float64)
    if tgt.shape != (3,):
        raise ValueError(f"target must be a 3D point, got shape {tgt.shape}")

    lam_sq = damping * damping
    best_q = q.copy()
    best_err = float("inf")

    for iteration in range(1, max_iterations + 1):
        error_vec = tgt - chain.end_effector_position(q)
        err = float(np.linalg.norm(error_vec))
        if err < best_err:
            best_err = err
            best_q = q.copy()
        if err < tolerance:
            return IKResult(tuple(q), err, iteration, converged=True)

        jac = _position_jacobian(chain, q)
        jjt = jac @ jac.T + lam_sq * np.eye(3)
        dq = jac.T @ np.linalg.solve(jjt, error_vec)

        # Limit the per-step joint motion so the linearization stays valid.
        step_norm = float(np.linalg.norm(dq))
        if step_norm > 0.5:
            dq *= 0.5 / step_norm
        q = q + dq

        if joint_limits is not None:
            for i, (lo, hi) in enumerate(joint_limits):
                q[i] = min(max(q[i], lo), hi)

    return IKResult(tuple(best_q), best_err, max_iterations, converged=False)
