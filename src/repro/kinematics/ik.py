"""Position-only inverse kinematics via damped least squares.

The experiment scripts in the paper command arms by Cartesian target
position (the location tables of Fig. 6 are pure ``[x, y, z]`` triples), so
we only solve for end-effector *position*; the redundant orientation degrees
of freedom are absorbed by the damping term.  Damped least squares (the
Levenberg-Marquardt form of resolved-rate IK) is robust near singularities,
which matters because the testbed arms are asked to reach deliberately
awkward targets during fault injection.

The Jacobian comes in two flavours:

- :func:`analytic_position_jacobian` (the default) reads joint axes and
  origins off one :meth:`~repro.kinematics.dh.DHChain.frames` pass and
  builds the standard geometric columns — ``z_{i-1} x (p_e - p_{i-1})``
  for a revolute joint, ``z_{i-1}`` for a prismatic one.  One FK pass per
  iteration instead of the ``2 x dof`` passes central differences need.
- :func:`numeric_position_jacobian` is the central-difference reference
  the differential suite checks the analytic columns against (they agree
  to ~1e-10; the suite gates at 1e-6).

:func:`solve_position_ik_batch` solves many targets at once — the shape
fault-injection campaigns need — by running every damped-least-squares
iteration across all still-unconverged targets through the batched FK
kernel, retiring targets as they converge.  Its per-target arithmetic is
element-for-element the scalar solver's, so verdicts and solutions match
the sequential loop exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kinematics.dh import DHChain
from repro.obs import OBS

_OBS_JACOBIANS = OBS.registry.counter(
    "kinematics_ik_jacobians_total",
    "Position-Jacobian evaluations, by mode.",
    labels=("mode",),
)

#: Largest joint-space step per iteration (keeps the linearization valid).
_MAX_STEP = 0.5


@dataclass(frozen=True)
class IKResult:
    """Outcome of an IK solve.

    ``converged`` is False when the target is unreachable (outside the arm's
    workspace or blocked by joint limits); ``error`` is the remaining
    Cartesian distance to the target, which callers compare against their
    tolerance.  ``q`` holds builtin floats (never numpy scalars) so results
    serialize type-stably into reports and JSONL traces.
    """

    q: Tuple[float, ...]
    error: float
    iterations: int
    converged: bool


def numeric_position_jacobian(
    chain: DHChain, q: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Numeric 3xN position Jacobian by central differences (the reference)."""
    if OBS.enabled:
        _OBS_JACOBIANS.inc(1, mode="numeric")
    n = chain.dof
    jac = np.zeros((3, n))
    for i in range(n):
        dq = np.zeros(n)
        dq[i] = eps
        p_plus = chain.end_effector_position(q + dq)
        p_minus = chain.end_effector_position(q - dq)
        jac[:, i] = (p_plus - p_minus) / (2 * eps)
    return jac


def analytic_position_jacobian(chain: DHChain, q: np.ndarray) -> np.ndarray:
    """Exact 3xN position Jacobian from one forward-kinematics pass.

    Standard geometric construction: for revolute joint *i* the column is
    ``z_{i-1} x (p_e - p_{i-1})``, for a prismatic joint it is ``z_{i-1}``,
    with axes and origins read off the chain's frame stack.
    """
    if OBS.enabled:
        _OBS_JACOBIANS.inc(1, mode="analytic")
    frames = chain.frames(q)  # (dof + 1, 4, 4)
    z = frames[:-1, :3, 2]  # (dof, 3) joint axes
    p = frames[:-1, :3, 3]  # (dof, 3) joint origins
    p_e = frames[-1, :3, 3]
    columns = np.where(
        chain.prismatic_mask[:, None], z, np.cross(z, p_e - p)
    )  # (dof, 3)
    return columns.T


# Backwards-compatible alias for the pre-vectorization private name.
_position_jacobian = numeric_position_jacobian


def _analytic_jacobian_from_frames(
    frames: np.ndarray, prismatic: np.ndarray
) -> np.ndarray:
    """Batched geometric Jacobians: ``(S, dof + 1, 4, 4)`` frames in,
    ``(S, 3, dof)`` Jacobians out — the same columns as
    :func:`analytic_position_jacobian`, for every sample at once."""
    z = frames[:, :-1, :3, 2]  # (S, dof, 3)
    p = frames[:, :-1, :3, 3]
    p_e = frames[:, -1:, :3, 3]  # (S, 1, 3)
    columns = np.where(prismatic[None, :, None], z, np.cross(z, p_e - p))
    return np.swapaxes(columns, 1, 2)


def _limit_bounds(joint_limits) -> Tuple[np.ndarray, np.ndarray]:
    """Joint limits as a pair of ``(dof,)`` lo/hi arrays."""
    limits = np.asarray(joint_limits, dtype=np.float64)
    return limits[..., 0], limits[..., 1]


def solve_position_ik(
    chain: DHChain,
    target: Sequence[float],
    q0: Sequence[float],
    joint_limits: Optional[Sequence[Tuple[float, float]]] = None,
    tolerance: float = 1e-4,
    max_iterations: int = 200,
    damping: float = 0.05,
    jacobian: str = "analytic",
) -> IKResult:
    """Solve for joint angles placing the end effector at *target*.

    Iterates ``q += J^T (J J^T + λ²I)^{-1} e`` from the seed posture *q0*,
    clamping to *joint_limits* before every error evaluation — so the
    recorded best posture (and therefore ``IKResult.q``) is always
    feasible, even when the seed itself violates the limits.  Convergence
    means the Cartesian error dropped below *tolerance*.

    *jacobian* selects ``"analytic"`` (default) or ``"numeric"``
    central-difference columns; the latter exists as the differential
    reference and produces identical convergence verdicts.
    """
    q = np.asarray(q0, dtype=np.float64).copy()
    tgt = np.asarray(target, dtype=np.float64)
    if tgt.shape != (3,):
        raise ValueError(f"target must be a 3D point, got shape {tgt.shape}")
    if jacobian not in ("analytic", "numeric"):
        raise ValueError(f"unknown jacobian mode {jacobian!r}")
    jac_fn = (
        analytic_position_jacobian if jacobian == "analytic"
        else numeric_position_jacobian
    )
    limits_lo = limits_hi = None
    if joint_limits is not None:
        limits_lo, limits_hi = _limit_bounds(joint_limits)
        np.clip(q, limits_lo, limits_hi, out=q)

    lam_sq = damping * damping
    best_q = q.copy()
    best_err = float("inf")

    for iteration in range(1, max_iterations + 1):
        error_vec = tgt - chain.end_effector_position(q)
        err = float(np.linalg.norm(error_vec))
        if err < best_err:
            best_err = err
            best_q = q.copy()
        if err < tolerance:
            return IKResult(
                tuple(float(x) for x in q), err, iteration, converged=True
            )

        jac = jac_fn(chain, q)
        jjt = jac @ jac.T + lam_sq * np.eye(3)
        dq = jac.T @ np.linalg.solve(jjt, error_vec)

        # Limit the per-step joint motion so the linearization stays valid.
        step_norm = float(np.linalg.norm(dq))
        if step_norm > _MAX_STEP:
            dq *= _MAX_STEP / step_norm
        q = q + dq

        if limits_lo is not None:
            np.clip(q, limits_lo, limits_hi, out=q)

    return IKResult(
        tuple(float(x) for x in best_q), best_err, max_iterations, converged=False
    )


def solve_position_ik_batch(
    chain: DHChain,
    targets: Sequence[Sequence[float]],
    q0: Sequence[float] | Sequence[Sequence[float]],
    joint_limits: Optional[Sequence[Tuple[float, float]]] = None,
    tolerance: float = 1e-4,
    max_iterations: int = 200,
    damping: float = 0.05,
) -> List[IKResult]:
    """Solve one IK problem per row of *targets*, vectorized over targets.

    *q0* is either a single seed posture shared by every target or one
    seed row per target.  Each damped-least-squares iteration runs all
    still-unconverged targets through the batched FK kernel at once:
    stacked Jacobians, stacked ``3x3`` solves, per-row step clamping, and
    joint-limit clipping.  A target that converges retires from the
    active set with its iteration count; the rest keep iterating.

    The per-target arithmetic is exactly the scalar solver's, so the
    returned :class:`IKResult` list matches ``[solve_position_ik(chain,
    t, ...) for t in targets]`` — verdicts, iteration counts, and
    solutions alike.  Fault-injection campaigns use this to precompute
    reachability for whole location tables in one call.
    """
    tgts = np.asarray(targets, dtype=np.float64)
    if tgts.ndim != 2 or tgts.shape[1] != 3:
        raise ValueError(f"targets must be (T, 3) points, got shape {tgts.shape}")
    t_count = tgts.shape[0]
    seeds = np.asarray(q0, dtype=np.float64)
    if seeds.ndim == 1:
        seeds = np.broadcast_to(seeds, (t_count, chain.dof)).copy()
    elif seeds.shape != (t_count, chain.dof):
        raise ValueError(
            f"q0 must be ({chain.dof},) or ({t_count}, {chain.dof}), "
            f"got shape {seeds.shape}"
        )
    else:
        seeds = seeds.copy()
    if t_count == 0:
        return []
    limits_lo = limits_hi = None
    if joint_limits is not None:
        limits_lo, limits_hi = _limit_bounds(joint_limits)
        np.clip(seeds, limits_lo, limits_hi, out=seeds)

    lam_sq = damping * damping
    eye3 = lam_sq * np.eye(3)
    q = seeds
    best_q = q.copy()
    best_err = np.full(t_count, np.inf)
    active = np.arange(t_count)
    results: List[Optional[IKResult]] = [None] * t_count

    for iteration in range(1, max_iterations + 1):
        frames = chain.frames_batch(q[active])  # (A, dof + 1, 4, 4)
        error_vec = tgts[active] - frames[:, -1, :3, 3]  # (A, 3)
        err = np.linalg.norm(error_vec, axis=1)

        improved = err < best_err[active]
        rows = active[improved]
        best_err[rows] = err[improved]
        best_q[rows] = q[rows]

        done = err < tolerance
        for row, e in zip(active[done], err[done]):
            results[row] = IKResult(
                tuple(float(x) for x in q[row]),
                float(e),
                iteration,
                converged=True,
            )
        if done.any():
            active = active[~done]
            if active.size == 0:
                break
            frames = frames[~done]
            error_vec = error_vec[~done]

        jac = _analytic_jacobian_from_frames(frames, chain.prismatic_mask)
        if OBS.enabled:
            _OBS_JACOBIANS.inc(float(len(active)), mode="analytic")
        jjt = jac @ np.swapaxes(jac, 1, 2) + eye3  # (A, 3, 3)
        y = np.linalg.solve(jjt, error_vec[..., None])  # (A, 3, 1)
        dq = (np.swapaxes(jac, 1, 2) @ y)[..., 0]  # (A, dof)

        step_norm = np.linalg.norm(dq, axis=1)
        over = step_norm > _MAX_STEP
        dq[over] *= (_MAX_STEP / step_norm[over])[:, None]
        stepped = q[active] + dq
        if limits_lo is not None:
            np.clip(stepped, limits_lo, limits_hi, out=stepped)
        q[active] = stepped

    for row in active:
        results[row] = IKResult(
            tuple(float(x) for x in best_q[row]),
            float(best_err[row]),
            max_iterations,
            converged=False,
        )
    return results  # type: ignore[return-value]
