"""Arm profiles for the robots used in the paper.

Each :class:`ArmProfile` bundles a DH table, joint limits, canonical
postures, and — critically for the evaluation — the vendor's behaviour when
asked to reach an infeasible target:

    "When ViperX was moved to a very high, clearly infeasible, position, it
    failed to compute the trajectory and **silently ignored the command**.
    [...] With Ned2, this was not an issue as it **throws an exception and
    halts immediately** if it cannot compute the trajectory."  (§IV)

DH parameters for the Universal Robots arms follow the vendor-published
tables; the ViperX-300 and Ned2 tables are close approximations built from
their published link lengths and reach (0.75 m and 0.44 m respectively).
Absolute link lengths only need to be realistic enough that reach limits,
ground collisions, and grid geometry behave like the paper's testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

import numpy as np

from repro.kinematics.dh import DHChain, DHLink

_PI = math.pi


class UnreachableBehavior(Enum):
    """What the arm's controller does when a target is unreachable."""

    #: Fail to plan and silently skip the command (ViperX).  The paper flags
    #: this as "potentially unsafe" because later moves assume the skipped
    #: waypoint was visited.
    SILENT_SKIP = "silent_skip"
    #: Raise an exception and halt immediately (Ned2, UR protective stop).
    RAISE = "raise"


@dataclass(frozen=True)
class ArmProfile:
    """Static description of a six-axis arm model."""

    name: str
    vendor: str
    links: Tuple[DHLink, ...]
    joint_limits: Tuple[Tuple[float, float], ...]
    reach: float
    #: Approximate radius of the arm's links, used as the sweep margin in
    #: collision checks.
    link_radius: float
    #: Length of the gripper beyond the wrist flange.
    gripper_length: float
    #: Joint posture for the vendor's "home" pose (arm raised, clear of deck).
    home_q: Tuple[float, ...]
    #: Joint posture for the vendor's "sleep" pose (arm folded over its base).
    sleep_q: Tuple[float, ...]
    unreachable_behavior: UnreachableBehavior
    #: 1-sigma repeatability of the arm in metres; production arms are far
    #: more precise than the educational testbed arms (Table I's "device
    #: precision and quality" axis).
    repeatability: float

    def __post_init__(self) -> None:
        n = len(self.links)
        if len(self.joint_limits) != n:
            raise ValueError(f"{self.name}: need {n} joint limit pairs")
        for attr in ("home_q", "sleep_q"):
            if len(getattr(self, attr)) != n:
                raise ValueError(f"{self.name}: {attr} must have {n} entries")

    @property
    def dof(self) -> int:
        """Number of joints (six for every arm in the paper)."""
        return len(self.links)

    def chain(self) -> DHChain:
        """A fresh kinematic chain for this profile (world-origin base)."""
        return DHChain(self.links)

    def limit_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Joint limits as packed ``(dof,)`` lo/hi float arrays.

        The clamping hot paths (IK steps, seed generation) clip against
        these instead of iterating the tuple-of-tuples form.
        """
        limits = np.asarray(self.joint_limits, dtype=np.float64)
        return limits[:, 0].copy(), limits[:, 1].copy()


def _limits(lo_hi: float) -> Tuple[float, float]:
    return (-lo_hi, lo_hi)


UR3E = ArmProfile(
    name="ur3e",
    vendor="Universal Robots",
    links=(
        DHLink(a=0.0, alpha=_PI / 2, d=0.15185),
        DHLink(a=-0.24355, alpha=0.0, d=0.0),
        DHLink(a=-0.2132, alpha=0.0, d=0.0),
        DHLink(a=0.0, alpha=_PI / 2, d=0.13105),
        DHLink(a=0.0, alpha=-_PI / 2, d=0.08535),
        DHLink(a=0.0, alpha=0.0, d=0.0921),
    ),
    joint_limits=tuple(_limits(2 * _PI) for _ in range(6)),
    reach=0.50,
    link_radius=0.045,
    gripper_length=0.12,
    home_q=(0.0, -_PI / 2, 0.0, -_PI / 2, 0.0, 0.0),
    sleep_q=(0.0, -_PI / 2, _PI / 2 + 0.6, -_PI / 2, 0.0, 0.0),
    unreachable_behavior=UnreachableBehavior.RAISE,
    repeatability=0.00003,  # 0.03 mm published repeatability
)

UR5E = ArmProfile(
    name="ur5e",
    vendor="Universal Robots",
    links=(
        DHLink(a=0.0, alpha=_PI / 2, d=0.1625),
        DHLink(a=-0.425, alpha=0.0, d=0.0),
        DHLink(a=-0.3922, alpha=0.0, d=0.0),
        DHLink(a=0.0, alpha=_PI / 2, d=0.1333),
        DHLink(a=0.0, alpha=-_PI / 2, d=0.0997),
        DHLink(a=0.0, alpha=0.0, d=0.0996),
    ),
    joint_limits=tuple(_limits(2 * _PI) for _ in range(6)),
    reach=0.85,
    link_radius=0.055,
    gripper_length=0.13,
    home_q=(0.0, -_PI / 2, 0.0, -_PI / 2, 0.0, 0.0),
    sleep_q=(0.0, -_PI / 2, _PI / 2 + 0.6, -_PI / 2, 0.0, 0.0),
    unreachable_behavior=UnreachableBehavior.RAISE,
    repeatability=0.00003,
)

VIPERX_300 = ArmProfile(
    name="viperx",
    vendor="Trossen Robotics",
    links=(
        DHLink(a=0.0, alpha=_PI / 2, d=0.127),
        DHLink(a=-0.30, alpha=0.0, d=0.0),
        DHLink(a=-0.30, alpha=0.0, d=0.0),
        DHLink(a=0.0, alpha=_PI / 2, d=0.10),
        DHLink(a=0.0, alpha=-_PI / 2, d=0.066),
        DHLink(a=0.0, alpha=0.0, d=0.066),
    ),
    joint_limits=(
        _limits(_PI),
        _limits(2.0),
        _limits(2.0),
        _limits(_PI),
        _limits(2.0),
        _limits(_PI),
    ),
    reach=0.75,
    link_radius=0.035,
    gripper_length=0.10,
    home_q=(0.0, -_PI / 2, 0.0, -_PI / 2, 0.0, 0.0),
    sleep_q=(0.0, -1.80, 1.55, -_PI / 2, 0.8, 0.0),
    unreachable_behavior=UnreachableBehavior.SILENT_SKIP,
    repeatability=0.005,  # educational arm: millimetre-scale, not micron
)

NED2 = ArmProfile(
    name="ned2",
    vendor="Niryo",
    links=(
        DHLink(a=0.0, alpha=_PI / 2, d=0.183),
        DHLink(a=-0.21, alpha=0.0, d=0.0),
        DHLink(a=-0.18, alpha=0.0, d=0.0),
        DHLink(a=0.0, alpha=_PI / 2, d=0.0305),
        DHLink(a=0.0, alpha=-_PI / 2, d=0.0305),
        DHLink(a=0.0, alpha=0.0, d=0.0237),
    ),
    joint_limits=(
        (-2.96, 2.96),
        _limits(2.0),
        _limits(2.0),
        (-2.09, 2.09),
        (-1.92, 1.92),
        (-2.53, 2.53),
    ),
    reach=0.44,
    link_radius=0.030,
    gripper_length=0.08,
    home_q=(0.0, -_PI / 2, 0.0, -_PI / 2, 0.0, 0.0),
    sleep_q=(0.0, -1.55, 1.40, -_PI / 2, 0.0, 0.0),
    unreachable_behavior=UnreachableBehavior.RAISE,
    repeatability=0.004,
)

N9 = ArmProfile(
    name="n9",
    vendor="North Robotics",
    links=(
        # SCARA topology: two planar revolute links, a prismatic z-lift
        # (alpha = pi on link 2 points the lift downward), and a wrist.
        DHLink(a=0.17, alpha=0.0, d=0.30),
        DHLink(a=0.15, alpha=_PI, d=0.0),
        DHLink(a=0.0, alpha=0.0, d=0.02, prismatic=True),
        DHLink(a=0.0, alpha=0.0, d=0.04),
    ),
    joint_limits=(
        _limits(_PI),
        (-2.4, 2.4),
        (0.0, 0.22),  # metres of z-lift extension
        _limits(_PI),
    ),
    reach=0.32,
    link_radius=0.030,
    gripper_length=0.05,
    home_q=(0.0, 0.0, 0.02, 0.0),
    sleep_q=(_PI / 2, 2.2, 0.0, 0.0),
    unreachable_behavior=UnreachableBehavior.RAISE,
    repeatability=0.0002,
)

_PROFILES: Dict[str, ArmProfile] = {
    p.name: p for p in (UR3E, UR5E, VIPERX_300, NED2, N9)
}


def profile_by_name(name: str) -> ArmProfile:
    """Look up an arm profile by name (``ur3e``, ``ur5e``, ``viperx``, ``ned2``)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown arm profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
