"""The workflow DAG: nodes bind steps to parameters, edges carry outcome.

The graph model follows eNMS's workflow graphs: every edge is labelled
with the *outcome* it follows — ``success`` (the step ran clean) or
``failure`` (RABIT stopped it, or the device faulted) — and the executor
walks exactly one edge per node, so a workflow with no failure edges
behaves exactly like the legacy linear scripts (first fault ends the
run), while a failure edge turns a fault into a declared recovery path.

A DAG serializes to a self-contained canonical spec
(``repro.workflow/v1``): deck name + deck parameters + declarative vial
preparation + nodes + edges.  ``from_spec(to_spec(dag))`` is the
identity, and the canonical bytes (shared :mod:`repro.trace.canon`
serialization) are the diff/export witness.

Surgery helpers (:meth:`WorkflowDAG.drop`, :meth:`WorkflowDAG.
insert_after`) mirror the fault injector's ``DeleteLine``/``InsertAfter``
mutations at node granularity, which is how the Bug A/B/C presets are
expressed as edits of the safe Fig. 5 preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.workflow.registry import REGISTRY, StepError, StepRegistry

__all__ = [
    "SCHEMA",
    "WorkflowError",
    "WorkflowNode",
    "WorkflowEdge",
    "WorkflowDAG",
]

#: The spec schema identifier; bumped on any incompatible shape change.
SCHEMA = "repro.workflow/v1"

_OUTCOMES = ("success", "failure")


class WorkflowError(ValueError):
    """A malformed workflow graph or spec."""


@dataclass
class WorkflowNode:
    """One node: a step name plus its parameter bindings."""

    id: str
    step: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkflowEdge:
    """A directed, outcome-labelled edge."""

    src: str
    dst: str
    on: str = "success"


class WorkflowDAG:
    """A declarative workflow over a named deck."""

    def __init__(
        self,
        name: str,
        deck: str = "hein",
        description: str = "",
        deck_params: Optional[Mapping[str, Any]] = None,
        prepare: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.name = name
        self.deck = deck
        self.description = description
        self.deck_params: Dict[str, Any] = dict(deck_params or {})
        self.prepare: List[Dict[str, Any]] = [dict(p) for p in (prepare or [])]
        #: Insertion-ordered; the order is purely cosmetic (spec diffs),
        #: execution order comes from the edges.
        self.nodes: Dict[str, WorkflowNode] = {}
        self.edges: List[WorkflowEdge] = []
        self.entry: Optional[str] = None
        self._tail: Optional[str] = None

    # -- construction -------------------------------------------------

    def add_node(
        self, node_id: str, step: str, params: Optional[Mapping[str, Any]] = None
    ) -> str:
        """Add an unconnected node (spec loading; explicit wiring)."""
        if node_id in self.nodes:
            raise WorkflowError(f"duplicate node id {node_id!r}")
        self.nodes[node_id] = WorkflowNode(node_id, step, dict(params or {}))
        if self.entry is None:
            self.entry = node_id
        return node_id

    def then(self, node_id: str, step: str, **params: Any) -> str:
        """Add a node chained by a success edge from the last one added —
        the builder idiom for porting the linear legacy scripts."""
        previous = self._tail
        self.add_node(node_id, step, params)
        if previous is not None:
            self.edge(previous, node_id)
        self._tail = node_id
        return node_id

    def edge(self, src: str, dst: str, on: str = "success") -> None:
        """Add an outcome-labelled edge (``on``: success or failure)."""
        if on not in _OUTCOMES:
            raise WorkflowError(f"edge outcome must be one of {_OUTCOMES}, got {on!r}")
        for existing in self.edges:
            if existing.src == src and existing.on == on:
                raise WorkflowError(
                    f"node {src!r} already has a {on} edge (to {existing.dst!r})"
                )
        self.edges.append(WorkflowEdge(src, dst, on))

    def successor(self, node_id: str, on: str) -> Optional[str]:
        """The node the executor visits after *node_id* on outcome *on*."""
        for edge in self.edges:
            if edge.src == node_id and edge.on == on:
                return edge.dst
        return None

    # -- surgery (the mutation-operator analogues) ---------------------

    def drop(self, node_id: str) -> None:
        """Remove a node, splicing predecessors onto its success
        successor — the ``DeleteLine`` analogue."""
        if node_id not in self.nodes:
            raise WorkflowError(f"cannot drop unknown node {node_id!r}")
        bypass = self.successor(node_id, "success")
        del self.nodes[node_id]
        rewired: List[WorkflowEdge] = []
        for edge in self.edges:
            if edge.src == node_id:
                continue
            if edge.dst == node_id:
                if bypass is not None:
                    rewired.append(WorkflowEdge(edge.src, bypass, edge.on))
                continue
            rewired.append(edge)
        self.edges = rewired
        if self.entry == node_id:
            self.entry = bypass
        if self._tail == node_id:
            self._tail = bypass

    def insert_after(
        self, after_id: str, node_id: str, step: str, **params: Any
    ) -> str:
        """Splice a new node into *after_id*'s success path — the
        ``InsertAfter`` analogue."""
        if after_id not in self.nodes:
            raise WorkflowError(f"cannot insert after unknown node {after_id!r}")
        displaced = self.successor(after_id, "success")
        self.add_node(node_id, step, params)
        if displaced is not None:
            self.edges = [
                e
                for e in self.edges
                if not (e.src == after_id and e.on == "success")
            ]
            self.edge(node_id, displaced)
        self.edge(after_id, node_id)
        if self._tail == after_id:
            self._tail = node_id
        return node_id

    # -- validation ----------------------------------------------------

    def validate(self, registry: StepRegistry = REGISTRY) -> None:
        """Full load-time validation: structure, steps, bindings.

        Raises :class:`WorkflowError` (graph shape) or
        :class:`~repro.workflow.registry.StepError` (step bindings)
        before anything touches a device.
        """
        if not self.nodes:
            raise WorkflowError(f"workflow {self.name!r} has no nodes")
        if self.entry is None or self.entry not in self.nodes:
            raise WorkflowError(
                f"workflow {self.name!r} entry {self.entry!r} is not a node"
            )
        for edge in self.edges:
            for end in (edge.src, edge.dst):
                if end not in self.nodes:
                    raise WorkflowError(
                        f"edge {edge.src!r} -> {edge.dst!r} references "
                        f"unknown node {end!r}"
                    )
            if edge.on not in _OUTCOMES:
                raise WorkflowError(
                    f"edge {edge.src!r} -> {edge.dst!r} has invalid "
                    f"outcome {edge.on!r}"
                )
        for node in self.nodes.values():
            spec = registry.get(node.step)
            try:
                spec.bind(node.params)
            except StepError as exc:
                raise StepError(f"node {node.id!r}: {exc}") from None
        self._check_acyclic_and_reachable()

    def _check_acyclic_and_reachable(self) -> None:
        """DFS from the entry: no cycles (executor totality) and no
        orphan nodes (a spec should not carry dead weight silently)."""
        out: Dict[str, List[str]] = {}
        for edge in self.edges:
            out.setdefault(edge.src, []).append(edge.dst)
        seen: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node_id: str, path: List[str]) -> None:
            state = seen.get(node_id)
            if state == 1:
                cycle = " -> ".join(path + [node_id])
                raise WorkflowError(f"workflow {self.name!r} has a cycle: {cycle}")
            if state == 2:
                return
            seen[node_id] = 1
            for nxt in out.get(node_id, []):
                visit(nxt, path + [node_id])
            seen[node_id] = 2

        assert self.entry is not None
        visit(self.entry, [])
        orphans = sorted(set(self.nodes) - set(seen))
        if orphans:
            raise WorkflowError(
                f"workflow {self.name!r} has unreachable nodes: {orphans}"
            )

    # -- serialization -------------------------------------------------

    def to_spec(self) -> Dict[str, Any]:
        """The self-contained JSON-safe spec (canonicalizable)."""
        return {
            "schema": SCHEMA,
            "name": self.name,
            "description": self.description,
            "deck": self.deck,
            "deck_params": dict(self.deck_params),
            "prepare": [dict(p) for p in self.prepare],
            "entry": self.entry,
            "nodes": [
                {"id": n.id, "step": n.step, "params": dict(n.params)}
                for n in self.nodes.values()
            ],
            "edges": [
                {"from": e.src, "to": e.dst, "on": e.on} for e in self.edges
            ],
        }

    def spec_bytes(self) -> bytes:
        """Canonical bytes of the spec — the export/diff witness."""
        from repro.trace.canon import canonical_bytes

        return canonical_bytes(self.to_spec())

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "WorkflowDAG":
        """Rebuild a DAG from a spec dict; strict on schema and shape."""
        schema = spec.get("schema")
        if schema != SCHEMA:
            raise WorkflowError(
                f"unsupported workflow spec schema {schema!r} (expected {SCHEMA!r})"
            )
        dag = cls(
            name=str(spec.get("name", "")),
            deck=str(spec.get("deck", "hein")),
            description=str(spec.get("description", "")),
            deck_params=spec.get("deck_params") or {},
            prepare=list(spec.get("prepare") or []),
        )
        for node in spec.get("nodes") or []:
            try:
                dag.add_node(str(node["id"]), str(node["step"]), node.get("params"))
            except (KeyError, TypeError):
                raise WorkflowError(f"malformed node entry: {node!r}") from None
        for edge in spec.get("edges") or []:
            try:
                dag.edge(str(edge["from"]), str(edge["to"]), str(edge.get("on", "success")))
            except (KeyError, TypeError):
                raise WorkflowError(f"malformed edge entry: {edge!r}") from None
        entry = spec.get("entry")
        if entry is not None:
            dag.entry = str(entry)
        return dag
