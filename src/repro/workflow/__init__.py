"""Declarative workflows: step registry, DAG engine, presets, fuzzing.

The package replaces the hardcoded Python call sequences of
:mod:`repro.lab.workflows` with a composable surface:

- :mod:`repro.workflow.registry` — typed ``@step`` registration;
- :mod:`repro.workflow.steps` — the built-in step library (every lab
  primitive, call-convention-identical to the legacy scripts);
- :mod:`repro.workflow.dag` — the success/failure-edge graph model and
  its canonical ``repro.workflow/v1`` spec serialization;
- :mod:`repro.workflow.context` — declarative deck wiring;
- :mod:`repro.workflow.executor` — the deterministic DAG walk through
  the interceptor/monitor pipeline;
- :mod:`repro.workflow.journal` — the canonical run journal (the
  byte-equality witness of the differential tests);
- :mod:`repro.workflow.presets` — named, parameterized ports of every
  legacy workflow plus the Bug A/B/C variants and the scenario matrix;
- :mod:`repro.workflow.fuzz` — seeded random-DAG generation feeding
  ``faults.montecarlo``.

Importing the package loads the built-in steps and presets into the
default registry, so ``python -m repro workflow list`` and spec loading
always see the full catalog.
"""

from repro.workflow.registry import (  # noqa: F401
    REGISTRY,
    StepError,
    StepParam,
    StepRegistry,
    StepSpec,
    step,
)
from repro.workflow import steps  # noqa: F401  (populates REGISTRY)
from repro.workflow.context import (  # noqa: F401
    DECKS,
    WorkflowContext,
    build_context,
    deck_names,
)
from repro.workflow.dag import (  # noqa: F401
    SCHEMA,
    WorkflowDAG,
    WorkflowEdge,
    WorkflowError,
    WorkflowNode,
)
from repro.workflow.executor import WorkflowRunResult, execute_dag  # noqa: F401
from repro.workflow.journal import (  # noqa: F401
    JOURNAL_SCHEMA,
    command_entry,
    journal_bytes,
    journal_digest,
    run_journal,
)
from repro.workflow.presets import (  # noqa: F401
    PRESETS,
    Preset,
    build_preset,
    list_presets,
    preset,
    preset_matrix,
    run_preset,
)
from repro.workflow.fuzz import random_dag, score_dag  # noqa: F401

__all__ = [
    "REGISTRY",
    "StepError",
    "StepParam",
    "StepRegistry",
    "StepSpec",
    "step",
    "DECKS",
    "WorkflowContext",
    "build_context",
    "deck_names",
    "SCHEMA",
    "WorkflowDAG",
    "WorkflowEdge",
    "WorkflowError",
    "WorkflowNode",
    "WorkflowRunResult",
    "execute_dag",
    "JOURNAL_SCHEMA",
    "command_entry",
    "journal_bytes",
    "journal_digest",
    "run_journal",
    "PRESETS",
    "Preset",
    "build_preset",
    "list_presets",
    "preset",
    "preset_matrix",
    "run_preset",
    "random_dag",
    "score_dag",
]
