"""The built-in step library: every lab primitive as a registered step.

Each step wraps one script statement's worth of guarded device commands
— the exact call the legacy hardcoded workflows issued, with the exact
positional/keyword convention, because :class:`~repro.core.interceptor.
CommandRecord` captures positional arguments only and the differential
journal tests pin the preset ports byte-identical to the legacy
functions.  (``run_action(delay=3, quantity=5)`` stays keyword-form;
``set_door("state", "open")`` stays positional.)

Two tiers:

- **raw** steps issue a single device command (``move``, ``dose_solid``);
- **composite** steps reproduce the Fig. 5 script-level helpers
  (``pick_up_object`` et al.), which decompose into several individually
  traced commands — one step still equals one legacy script line, so DAG
  node surgery (drop/insert) lands at the same granularity the fault
  injector mutates.
"""

from __future__ import annotations

from repro.workflow.context import WorkflowContext
from repro.workflow.registry import step

__all__: list = []  # steps are reached through the registry, not imports


# ---------------------------------------------------------------------------
# Raw robot steps
# ---------------------------------------------------------------------------


@step("move")
def _move(ctx: WorkflowContext, robot: str, location: "location") -> None:
    """Move *robot* to a named location (or explicit ``[x, y, z]``)."""
    ctx.proxy(robot).move_to_location(location)


@step("move_pose")
def _move_pose(ctx: WorkflowContext, robot: str, target: "coords") -> None:
    """Move *robot* to raw coordinates in its own frame (no location
    semantics — the Bug B ``ned2.move_pose(random_location)`` call)."""
    ctx.proxy(robot).move_pose(target)


@step("pick_vial")
def _pick_vial(ctx: WorkflowContext, robot: str, location: str) -> None:
    """Modeled wrapper pick: RABIT's container tracking stays reliable."""
    ctx.proxy(robot).pick_up_vial(location)


@step("place_vial")
def _place_vial(ctx: WorkflowContext, robot: str, location: str) -> None:
    """Modeled wrapper place (the production-API style)."""
    ctx.proxy(robot).place_vial(location)


@step("open_gripper")
def _open_gripper(ctx: WorkflowContext, robot: str) -> None:
    """Open *robot*'s gripper."""
    ctx.proxy(robot).open_gripper()


@step("close_gripper")
def _close_gripper(ctx: WorkflowContext, robot: str) -> None:
    """Close *robot*'s gripper."""
    ctx.proxy(robot).close_gripper()


@step("go_home")
def _go_home(ctx: WorkflowContext, robot: str) -> None:
    """Send *robot* to its home pose."""
    ctx.proxy(robot).go_to_home_pose()


@step("go_sleep")
def _go_sleep(ctx: WorkflowContext, robot: str) -> None:
    """Send *robot* to its sleep pose."""
    ctx.proxy(robot).go_to_sleep_pose()


# ---------------------------------------------------------------------------
# Door / dosing / action-device steps
# ---------------------------------------------------------------------------


@step("open_door")
def _open_door(ctx: WorkflowContext, device: str, door: str = "") -> None:
    """Open *device*'s door; *door* names one door of a multi-door
    device (``mdoser.open_door("front")``)."""
    proxy = ctx.proxy(device)
    if door:
        proxy.open_door(door)
    else:
        proxy.open_door()


@step("close_door")
def _close_door(ctx: WorkflowContext, device: str, door: str = "") -> None:
    """Close *device*'s door (or one named door)."""
    proxy = ctx.proxy(device)
    if door:
        proxy.close_door(door)
    else:
        proxy.close_door()


@step("set_door")
def _set_door(ctx: WorkflowContext, device: str, state: str) -> None:
    """The Fig. 5 property-style door command:
    ``set_door("state", "open"/"closed")``."""
    ctx.proxy(device).set_door("state", state)


@step("dose_solid")
def _dose_solid(ctx: WorkflowContext, device: str, amount_mg: float) -> None:
    """Dose *amount_mg* of solid from a dosing device."""
    ctx.proxy(device).dose_solid(amount_mg)


@step("run_action")
def _run_action(
    ctx: WorkflowContext, device: str, delay: float = 0.0, quantity: float = 0.0
) -> None:
    """The Fig. 5 ``run_action(delay=…, quantity=…)`` dosing command
    (keyword form, exactly as the testbed script issues it)."""
    ctx.proxy(device).run_action(delay=delay, quantity=quantity)


@step("stop_action")
def _stop_action(ctx: WorkflowContext, device: str) -> None:
    """Stop *device*'s running action (dosing, stirring, spinning…)."""
    ctx.proxy(device).stop_action()


@step("start_action")
def _start_action(ctx: WorkflowContext, device: str, value: float) -> None:
    """Start *device*'s action with a set-point (e.g. centrifuge rpm)."""
    ctx.proxy(device).start_action(value)


@step("dose_solvent")
def _dose_solvent(ctx: WorkflowContext, device: str, volume_ml: float) -> None:
    """Dispense *volume_ml* of solvent from a syringe pump."""
    ctx.proxy(device).dose_solvent(volume_ml)


@step("dose_initial_solvent")
def _dose_initial_solvent(
    ctx: WorkflowContext, device: str, volume_ml: float
) -> None:
    """The solubility run's first solvent addition."""
    ctx.proxy(device).dose_initial_solvent(volume_ml)


@step("stir_solution")
def _stir_solution(ctx: WorkflowContext, device: str, temperature: float) -> None:
    """Stir on the hotplate at *temperature*."""
    ctx.proxy(device).stir_solution(temperature)


@step("shake")
def _shake(ctx: WorkflowContext, device: str, speed_rpm: float) -> None:
    """Agitate on the thermoshaker at *speed_rpm*."""
    ctx.proxy(device).shake(speed_rpm)


@step("cap_vial")
def _cap_vial(ctx: WorkflowContext, vial: str) -> None:
    """Stopper a vial."""
    ctx.proxy(vial).cap_vial()


@step("decap_vial")
def _decap_vial(ctx: WorkflowContext, vial: str) -> None:
    """Unstopper a vial."""
    ctx.proxy(vial).decap_vial()


@step("decap")
def _decap(ctx: WorkflowContext, device: str) -> None:
    """Run the decapper station on whatever vial sits in its slot."""
    ctx.proxy(device).decap()


# ---------------------------------------------------------------------------
# Composite steps — the Fig. 5 script-level helpers
# ---------------------------------------------------------------------------


@step("pick_up_object")
def _pick_up_object(
    ctx: WorkflowContext, robot: str, safe_location: str, pickup_location: str
) -> None:
    """Fig. 5 ``*_pick_up_object``: stage, open, descend, close, retreat
    (five individually traced commands)."""
    proxy = ctx.proxy(robot)
    proxy.move_to_location(safe_location)
    proxy.open_gripper()
    proxy.move_to_location(pickup_location)
    proxy.close_gripper()
    proxy.move_to_location(safe_location)


@step("place_object")
def _place_object(
    ctx: WorkflowContext, robot: str, safe_location: str, place_location: str
) -> None:
    """Fig. 5 ``*_place_object``: stage, descend, open, retreat."""
    proxy = ctx.proxy(robot)
    proxy.move_to_location(safe_location)
    proxy.move_to_location(place_location)
    proxy.open_gripper()
    proxy.move_to_location(safe_location)


@step("place_into_dosing")
def _place_into_dosing(
    ctx: WorkflowContext,
    robot: str,
    approach: str = "dosing_approach_viperx",
    safe: str = "dosing_safe_viperx",
    slot: str = "dosing_pickup_viperx",
) -> None:
    """Approach, enter, set the vial down, retreat, leave (Fig. 5 line
    16's six-command decomposition)."""
    proxy = ctx.proxy(robot)
    proxy.move_to_location(approach)
    proxy.move_to_location(safe)
    proxy.move_to_location(slot)
    proxy.open_gripper()
    proxy.move_to_location(safe)
    proxy.move_to_location(approach)


@step("pick_from_dosing")
def _pick_from_dosing(
    ctx: WorkflowContext,
    robot: str,
    approach: str = "dosing_approach_viperx",
    safe: str = "dosing_safe_viperx",
    slot: str = "dosing_pickup_viperx",
) -> None:
    """Approach, enter, grasp the vial, retreat, leave (Fig. 5 line 25)."""
    proxy = ctx.proxy(robot)
    proxy.move_to_location(approach)
    proxy.move_to_location(safe)
    proxy.move_to_location(slot)
    proxy.close_gripper()
    proxy.move_to_location(safe)
    proxy.move_to_location(approach)
