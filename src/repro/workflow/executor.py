"""The deterministic DAG executor.

Drives a validated :class:`~repro.workflow.dag.WorkflowDAG` through the
interceptor/monitor pipeline exactly like the legacy
:func:`~repro.lab.workflows.run_workflow` loop drove script lines: every
step issues guarded proxy calls, a :class:`SafetyViolation` is a RABIT
stop, an :class:`UnreachableTargetError` is a device fault.  The only
new control flow is the outcome edge: a node with a ``failure`` edge
turns a fault into a declared recovery jump (``recovered`` is flagged
and the *first* alert retained); without one, the run ends on the fault
— byte-for-byte the legacy semantics for the ported linear presets.

Determinism: the executor adds no randomness and no wall-clock reads;
given the same DAG, registry, and context wiring it issues the identical
command sequence under the virtual clock, which is what makes workflow
runs trace-recordable and replayable.  Each node executes inside an
``workflow.node`` obs span when observability is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import Alert, SafetyViolation
from repro.kinematics.arm import UnreachableTargetError
from repro.obs import OBS
from repro.workflow.context import WorkflowContext
from repro.workflow.dag import WorkflowDAG, WorkflowError
from repro.workflow.registry import REGISTRY, StepRegistry

__all__ = ["WorkflowRunResult", "execute_dag"]


@dataclass
class WorkflowRunResult:
    """Outcome of one DAG execution (the legacy ``WorkflowResult`` shape
    plus the recovery flag)."""

    completed: bool
    executed_nodes: List[str] = field(default_factory=list)
    alert: Optional[Alert] = None
    device_error: Optional[str] = None
    #: True iff a failure edge was taken (the run continued past a fault).
    recovered: bool = False

    @property
    def stopped_by_rabit(self) -> bool:
        """Whether RABIT raised an alert during the run."""
        return self.alert is not None

    @property
    def stopped_by_device(self) -> bool:
        """Whether a device exception (not RABIT) fired during the run."""
        return self.device_error is not None


def execute_dag(
    dag: WorkflowDAG,
    ctx: WorkflowContext,
    registry: StepRegistry = REGISTRY,
    max_nodes: int = 10_000,
) -> WorkflowRunResult:
    """Execute *dag* against the wired *ctx*; returns the run result.

    Validates the whole graph (structure + step bindings) before the
    first command, so a malformed workflow never half-runs.  Node ids
    are appended to ``executed_nodes`` only after the step succeeds —
    the same convention as the legacy ``executed_lines``.
    """
    dag.validate(registry)
    executed: List[str] = []
    alert: Optional[Alert] = None
    device_error: Optional[str] = None
    recovered = False
    node_id: Optional[str] = dag.entry
    visited = 0
    while node_id is not None:
        if visited >= max_nodes:  # pragma: no cover - validate() forbids cycles
            raise WorkflowError(
                f"workflow {dag.name!r} exceeded {max_nodes} node executions"
            )
        visited += 1
        node = dag.nodes[node_id]
        spec = registry.get(node.step)
        bound = spec.bind(node.params)
        failed = False
        with OBS.span("workflow.node", node=node.id, step=node.step):
            try:
                spec.fn(ctx, **bound)
            except SafetyViolation as stop:
                failed = True
                if alert is None:
                    alert = stop.alert
            except UnreachableTargetError as err:
                failed = True
                if device_error is None:
                    device_error = str(err)
        if failed:
            recovery = dag.successor(node_id, "failure")
            if recovery is None:
                return WorkflowRunResult(
                    completed=False,
                    executed_nodes=executed,
                    alert=alert,
                    device_error=device_error,
                    recovered=recovered,
                )
            recovered = True
            node_id = recovery
        else:
            executed.append(node_id)
            node_id = dag.successor(node_id, "success")
    return WorkflowRunResult(
        completed=alert is None and device_error is None,
        executed_nodes=executed,
        alert=alert,
        device_error=device_error,
        recovered=recovered,
    )
