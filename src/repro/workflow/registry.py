"""The step registry: typed, named wrappers over the lab primitives.

A *step* is the unit a declarative workflow composes: a registered
function that receives a :class:`~repro.workflow.context.WorkflowContext`
plus keyword parameters and issues one script statement's worth of
guarded device commands.  Steps are exactly the granularity of the
legacy :class:`~repro.lab.workflows.ScriptLine` — one step execution is
one script line, whether it issues a single raw command (``move``) or a
Fig. 5 composite helper's five (``pick_up_object``).

Each step's parameters are *typed* and introspected from the function
signature at registration time, so a workflow spec is validated before
anything touches a device: unknown steps, unknown parameters, missing
required parameters, and type mismatches are all load-time errors with
messages naming the offending node.

Registration follows the percell3 ``StepRegistry`` idiom: a module-level
default registry populated by the :func:`step` decorator, plus
instantiable registries so tests can build sandboxed step sets.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "StepError",
    "StepParam",
    "StepSpec",
    "StepRegistry",
    "REGISTRY",
    "step",
]


class StepError(ValueError):
    """A step definition or binding problem (load-time, never mid-run)."""


#: Parameter kinds a step may declare, and their Python acceptance rules.
#: ``location`` is the union the lab primitives themselves accept: a
#: named location (str) or explicit ``[x, y, z]`` coordinates.
_KINDS: Dict[str, str] = {
    "str": "a string",
    "float": "a number",
    "int": "an integer",
    "bool": "a boolean",
    "coords": "a list of 3 numbers",
    "location": "a location name or a list of 3 numbers",
}

#: Annotation -> kind mapping used by signature introspection.
_ANNOTATION_KINDS: Dict[Any, str] = {
    str: "str",
    float: "float",
    int: "int",
    bool: "bool",
    "str": "str",
    "float": "float",
    "int": "int",
    "bool": "bool",
    "coords": "coords",
    "location": "location",
}


def _is_coords(value: Any) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) == 3
        and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in value)
    )


def _coerce(kind: str, value: Any) -> Any:
    """Validate *value* against *kind*; returns the normalized value.

    Raises :class:`StepError` on mismatch.  Numeric widening (int where a
    float is expected) is the only silent coercion; everything else must
    match exactly so specs stay unambiguous.
    """
    if kind == "str":
        if isinstance(value, str):
            return value
    elif kind == "float":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif kind == "int":
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif kind == "bool":
        if isinstance(value, bool):
            return value
    elif kind == "coords":
        if _is_coords(value):
            return [float(v) for v in value]
    elif kind == "location":
        if isinstance(value, str):
            return value
        if _is_coords(value):
            return [float(v) for v in value]
    else:  # pragma: no cover - registration guards against unknown kinds
        raise StepError(f"unknown parameter kind {kind!r}")
    raise StepError(f"expected {_KINDS[kind]}, got {value!r}")


@dataclass(frozen=True)
class StepParam:
    """One typed parameter of a step."""

    name: str
    kind: str
    required: bool
    default: Any = None

    def describe(self) -> str:
        """Human rendering for ``workflow list --steps``."""
        if self.required:
            return f"{self.name}: {self.kind}"
        return f"{self.name}: {self.kind} = {self.default!r}"


@dataclass(frozen=True)
class StepSpec:
    """A registered step: callable + typed parameter table."""

    name: str
    fn: Callable[..., Any]
    params: Tuple[StepParam, ...]
    description: str

    def bind(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and normalize *params* against the declared table.

        Returns the complete keyword dict (defaults filled in) ready to
        pass to the step function.  Raises :class:`StepError` naming the
        parameter on any unknown, missing, or mistyped entry.
        """
        known = {p.name: p for p in self.params}
        for name in params:
            if name not in known:
                raise StepError(
                    f"step {self.name!r} has no parameter {name!r}; "
                    f"parameters: {sorted(known)}"
                )
        bound: Dict[str, Any] = {}
        for param in self.params:
            if param.name in params:
                try:
                    bound[param.name] = _coerce(param.kind, params[param.name])
                except StepError as exc:
                    raise StepError(
                        f"step {self.name!r}, parameter {param.name!r}: {exc}"
                    ) from None
            elif param.required:
                raise StepError(
                    f"step {self.name!r} requires parameter {param.name!r}"
                )
            else:
                bound[param.name] = param.default
        return bound

    def signature(self) -> str:
        """``name(param: kind, ...)`` — the catalog rendering."""
        inner = ", ".join(p.describe() for p in self.params)
        return f"{self.name}({inner})"


def _introspect_params(
    name: str, fn: Callable[..., Any], skip_first: bool = True
) -> Tuple[StepParam, ...]:
    """Derive the typed parameter table from *fn*'s signature.

    With ``skip_first`` (the step convention) the first positional
    parameter is the context and is skipped; every other parameter must
    be keyword-bindable and annotated with a supported kind.  Preset
    builders introspect with ``skip_first=False``.
    """
    params: List[StepParam] = []
    signature = inspect.signature(fn)
    names = list(signature.parameters.values())
    if skip_first and not names:
        raise StepError(f"step {name!r} must accept a context argument")
    for parameter in names[1:] if skip_first else names:
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            raise StepError(
                f"step {name!r}: *args/**kwargs parameters are not allowed"
            )
        annotation = parameter.annotation
        if isinstance(annotation, str):
            # Under ``from __future__ import annotations`` a quoted
            # annotation like ``"location"`` arrives as ``"'location'"``.
            annotation = annotation.strip("'\"")
        if annotation is inspect.Parameter.empty:
            raise StepError(
                f"step {name!r}: parameter {parameter.name!r} needs a type "
                f"annotation (one of {sorted(_KINDS)})"
            )
        kind = _ANNOTATION_KINDS.get(annotation)
        if kind is None:
            raise StepError(
                f"step {name!r}: parameter {parameter.name!r} has unsupported "
                f"annotation {annotation!r} (use one of {sorted(_KINDS)})"
            )
        required = parameter.default is inspect.Parameter.empty
        params.append(
            StepParam(
                name=parameter.name,
                kind=kind,
                required=required,
                default=None if required else parameter.default,
            )
        )
    return tuple(params)


@dataclass
class StepRegistry:
    """A named collection of steps; the default instance is :data:`REGISTRY`."""

    steps: Dict[str, StepSpec] = field(default_factory=dict)

    def register(
        self, name: str, fn: Callable[..., Any], description: str = ""
    ) -> StepSpec:
        """Register *fn* as step *name*; introspects the parameter table."""
        if name in self.steps:
            raise StepError(f"step {name!r} is already registered")
        spec = StepSpec(
            name=name,
            fn=fn,
            params=_introspect_params(name, fn),
            description=description or (inspect.getdoc(fn) or "").split("\n")[0],
        )
        self.steps[name] = spec
        return spec

    def get(self, name: str) -> StepSpec:
        """The spec for *name*; :class:`StepError` with suggestions if absent."""
        try:
            return self.steps[name]
        except KeyError:
            raise StepError(
                f"unknown step {name!r}; registered: {sorted(self.steps)}"
            ) from None

    def list_steps(self) -> List[str]:
        """Registered step names, sorted."""
        return sorted(self.steps)

    def step(
        self, name: str, description: str = ""
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form of :meth:`register`."""

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            self.register(name, fn, description)
            return fn

        return decorate


#: The default registry the step library and presets populate.
REGISTRY = StepRegistry()

#: ``@step("name")`` — register into the default registry.
step = REGISTRY.step
