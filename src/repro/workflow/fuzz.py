"""Seeded random-DAG generation: workflow-shaped fault injection.

Where :mod:`repro.faults.montecarlo` mutates the one hardcoded Fig. 5
script, the fuzzer *composes* whole workflows from the step vocabulary —
random move/pick/door/dose sequences over the testbed deck, optionally
with failure-edge recovery tails — and scores RABIT against unmonitored
ground truth with the same confusion-matrix machinery
(``run_monte_carlo(generator="dag")``).

Determinism contract (identical to the mutant sweep): fuzz case *i* of
a sweep seeded *s* is a pure function of ``(s, i)`` — its RNG derives
from ``SeedSequence(s, spawn_key=(i,))``, so growing the sample count,
reordering execution, or sharding across a process pool never changes
an earlier case.  Every generated DAG passes full validation before it
runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.workflow.context import build_context
from repro.workflow.dag import WorkflowDAG
from repro.workflow.executor import execute_dag

__all__ = ["random_dag", "score_dag", "fuzz_descriptions"]

#: ViperX-reachable named locations the generator moves between.
_VIPERX_LOCATIONS: Tuple[str, ...] = (
    "grid_nw_viperx_safe",
    "grid_nw_viperx",
    "dosing_approach_viperx",
    "dosing_safe_viperx",
    "dosing_pickup_viperx",
    "centrifuge_approach_viperx",
    "centrifuge_slot_viperx",
)

#: Ned2-reachable named locations.
_NED2_LOCATIONS: Tuple[str, ...] = ("grid_ne_ned2_safe", "grid_ne_ned2")

#: Raw-coordinate probe box (viperx frame): spans reachable free space
#: *and* the dosing-device / platform neighbourhood, so some sampled
#: poses collide and some are fine — both confusion-matrix columns stay
#: populated.
_POSE_LO = np.array([0.15, -0.30, 0.02])
_POSE_HI = np.array([0.55, 0.35, 0.35])

#: Action vocabulary with sampling weights: movement dominates (as in
#: real scripts), device actions and door toggles salt in the hazards.
_ACTIONS: Tuple[Tuple[str, float], ...] = (
    ("move_viperx", 0.30),
    ("move_ned2", 0.10),
    ("move_pose", 0.12),
    ("door_toggle", 0.12),
    ("run_dosing", 0.08),
    ("stop_dosing", 0.06),
    ("pick_grid", 0.08),
    ("place_grid", 0.08),
    ("spin", 0.06),
)


def _rng_for_case(base_seed: int, index: int) -> np.random.Generator:
    """The RNG owned by fuzz case ``(base_seed, index)`` — the same
    spawn-key derivation as the mutant sweep."""
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(index,)))


def random_dag(base_seed: int, index: int) -> WorkflowDAG:
    """Generate fuzz case *index* of the sweep seeded *base_seed*.

    Always a valid DAG on the testbed deck: a linear backbone of 4-11
    sampled actions, sometimes ending in a recovery tail reached by
    failure edges from the riskier backbone nodes.
    """
    rng = _rng_for_case(base_seed, index)
    dag = WorkflowDAG(
        f"fuzz_{base_seed}_{index}",
        deck="testbed",
        description=f"fuzzed workflow (seed {base_seed}, case {index})",
    )
    names = [name for name, _ in _ACTIONS]
    weights = np.array([weight for _, weight in _ACTIONS])
    weights = weights / weights.sum()
    length = int(rng.integers(4, 12))
    door_state = "closed"
    risky: List[str] = []
    for position in range(length):
        action = str(rng.choice(names, p=weights))
        node_id = f"n{position:02d}_{action}"
        if action == "move_viperx":
            location = str(rng.choice(_VIPERX_LOCATIONS))
            dag.then(node_id, "move", robot="viperx", location=location)
            if "pickup" in location or "slot" in location:
                risky.append(node_id)
        elif action == "move_ned2":
            dag.then(
                node_id, "move", robot="ned2",
                location=str(rng.choice(_NED2_LOCATIONS)),
            )
        elif action == "move_pose":
            pose = _POSE_LO + rng.random(3) * (_POSE_HI - _POSE_LO)
            dag.then(
                node_id, "move_pose", robot="viperx",
                target=[round(float(v), 3) for v in pose],
            )
            risky.append(node_id)
        elif action == "door_toggle":
            door_state = "open" if door_state == "closed" else "closed"
            dag.then(node_id, "set_door", device="dosing_device", state=door_state)
        elif action == "run_dosing":
            quantity = float(rng.choice([2.0, 5.0, 15.0]))
            dag.then(
                node_id, "run_action", device="dosing_device",
                delay=3.0, quantity=quantity,
            )
            risky.append(node_id)
        elif action == "stop_dosing":
            dag.then(node_id, "stop_action", device="dosing_device")
        elif action == "pick_grid":
            dag.then(
                node_id, "pick_up_object", robot="viperx",
                safe_location="grid_nw_viperx_safe",
                pickup_location="grid_nw_viperx",
            )
        elif action == "place_grid":
            dag.then(
                node_id, "place_object", robot="viperx",
                safe_location="grid_nw_viperx_safe",
                place_location="grid_nw_viperx",
            )
        else:  # spin
            dag.then(
                node_id, "start_action", device="centrifuge",
                value=float(rng.choice([1000.0, 3000.0, 6000.0])),
            )
            risky.append(node_id)
    # A third of the cases declare a recovery tail: risky nodes route
    # their failures into a go-home + sleep sequence instead of halting.
    if risky and rng.random() < (1.0 / 3.0):
        dag.then("recover_home", "go_home", robot="viperx")
        dag.then("recover_sleep", "go_sleep", robot="viperx")
        for node_id in risky:
            if dag.successor(node_id, "failure") is None:
                dag.edge(node_id, "recover_home", on="failure")
    dag.validate()
    return dag


def score_dag(index: int, base_seed: int) -> "MutantOutcome":
    """Run fuzz case ``(base_seed, index)`` twice — unmonitored ground
    truth, then under modified RABIT — and classify the outcome.

    The DAG-generator analogue of :func:`repro.faults.montecarlo.
    score_mutant`: a pure function of the pair, so the sweep shards and
    merges exactly like the mutant sweep."""
    from repro.core.monitor import RabitOptions
    from repro.faults.montecarlo import MutantOutcome

    dag = random_dag(base_seed, index)
    description = f"dag {dag.name}: {len(dag.nodes)} nodes"
    try:
        truth_ctx = build_context("testbed", monitored=False)
        truth = execute_dag(dag, truth_ctx)
        damage = tuple(sorted({d.kind for d in truth_ctx.world.damage_log}))
        if truth.stopped_by_device:
            damage = damage + ("device_fault_halt",)
        guarded_ctx = build_context("testbed", options=RabitOptions.modified())
        guarded = execute_dag(dag, guarded_ctx)
    except Exception as exc:  # noqa: BLE001 - classify, don't crash the sweep
        return MutantOutcome(
            seed=index,
            description=f"{description} (errored: {type(exc).__name__})",
            harmful=True,
            detected=False,
            damage_kinds=("harness_error",),
        )
    return MutantOutcome(
        seed=index,
        description=description,
        harmful=bool(damage),
        detected=guarded.stopped_by_rabit,
        damage_kinds=damage,
    )


def fuzz_descriptions(base_seed: int, samples: int) -> List[str]:
    """Node-id signatures of the first *samples* cases (a cheap
    determinism probe that never touches a deck)."""
    return [
        ",".join(random_dag(base_seed, index).nodes) for index in range(samples)
    ]
