"""Deck wiring for workflow runs: one context, every registered lab.

A workflow spec names its deck declaratively (``"deck": "testbed"``);
:func:`build_context` turns that name into the same fully wired stack
the hardcoded workflows used — deck, monitor, tracing proxies — so a
DAG run drives the interceptor/monitor pipeline exactly like the legacy
``build_*_workflow`` call sites.  ``monitored=False`` wires the proxies
without a monitor (the fuzzer's ground-truth leg, same as the Monte
Carlo sweep's unmonitored runs).

Vial preparation is declarative too (``"prepare"`` entries), and runs
*before* the monitor attaches so seeded tracked state matches — the
exact ordering the legacy scenario/workload preparers relied on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.clock import VirtualClock
from repro.core.interceptor import CommandRecord, DeviceProxy, instrument
from repro.core.monitor import Rabit, RabitOptions

__all__ = ["WorkflowContext", "DECKS", "build_context", "deck_names"]


@dataclass
class WorkflowContext:
    """Everything a workflow execution touches, fully wired."""

    deck_name: str
    deck: Any
    proxies: Dict[str, DeviceProxy]
    trace: List[CommandRecord]
    rabit: Optional[Rabit] = None
    #: Parameters the deck was built with (spec round-trip bookkeeping).
    deck_params: Dict[str, Any] = field(default_factory=dict)

    def proxy(self, name: str) -> DeviceProxy:
        """The tracing proxy for device *name* (clear error when absent)."""
        try:
            return self.proxies[name]
        except KeyError:
            raise KeyError(
                f"deck {self.deck_name!r} has no device {name!r}; "
                f"devices: {sorted(self.proxies)}"
            ) from None

    @property
    def world(self) -> Any:
        """The ground-truth world (damage log lives here)."""
        return self.deck.world


def _build_hein(params: Mapping[str, Any]) -> Any:
    from repro.lab.hein import build_hein_deck

    return build_hein_deck(**dict(params))


def _make_hein(deck: Any, options: RabitOptions, clock: Optional[VirtualClock]):
    from repro.lab.hein import make_hein_rabit

    return make_hein_rabit(
        deck,
        options=options,
        use_extended_simulator=options.use_extended_simulator,
        clock=clock,
    )


def _build_testbed(params: Mapping[str, Any]) -> Any:
    from repro.testbed.deck import build_testbed_deck

    merged = {"noise_sigma": 0.003}
    merged.update(params)
    return build_testbed_deck(**merged)


def _make_testbed(deck: Any, options: RabitOptions, clock: Optional[VirtualClock]):
    from repro.testbed.deck import make_testbed_rabit

    return make_testbed_rabit(
        deck,
        options=options,
        use_extended_simulator=options.use_extended_simulator,
        clock=clock,
    )


def _build_two_door(params: Mapping[str, Any]) -> Any:
    from repro.lab.two_door import build_two_door_deck

    if params:
        raise ValueError(f"deck 'two_door' takes no parameters, got {sorted(params)}")
    return build_two_door_deck()


def _make_two_door(deck: Any, options: RabitOptions, clock: Optional[VirtualClock]):
    from repro.lab.two_door import make_two_door_rabit

    return make_two_door_rabit(deck, options=options, clock=clock)


def _build_berlinguette(params: Mapping[str, Any]) -> Any:
    from repro.lab.berlinguette import build_berlinguette_deck

    return build_berlinguette_deck(**dict(params))


def _make_berlinguette(deck: Any, options: RabitOptions, clock: Optional[VirtualClock]):
    from repro.lab.berlinguette import make_berlinguette_rabit

    return make_berlinguette_rabit(
        deck,
        options=options,
        use_extended_simulator=options.use_extended_simulator,
        clock=clock,
    )


#: name -> (deck builder, monitor wiring).  The builder receives the
#: spec's ``deck_params``; the wiring mirrors the legacy ``make_*_rabit``
#: call sites exactly (testbed defaults to the 0.003 actuation noise the
#: hardcoded workloads always used).
DECKS: Dict[
    str,
    Tuple[
        Callable[[Mapping[str, Any]], Any],
        Callable[[Any, RabitOptions, Optional[VirtualClock]], Any],
    ],
] = {
    "hein": (_build_hein, _make_hein),
    "testbed": (_build_testbed, _make_testbed),
    "two_door": (_build_two_door, _make_two_door),
    "berlinguette": (_build_berlinguette, _make_berlinguette),
}


def deck_names() -> List[str]:
    """Registered deck names, sorted."""
    return sorted(DECKS)


def _apply_prepare(deck: Any, prepare: Sequence[Mapping[str, Any]]) -> None:
    """Apply declarative vial preparation entries to *deck*.

    Each entry: ``{"vial": name, "solid_mg"?: float, "liquid_ml"?: float,
    "stoppered"?: bool}`` — the same knobs the legacy preparers poked by
    hand (e.g. the centrifuge workload's pre-filled, decapped vial).
    """
    for entry in prepare:
        entry = dict(entry)
        try:
            name = entry.pop("vial")
        except KeyError:
            raise ValueError(f"prepare entry missing 'vial': {entry!r}") from None
        try:
            vial = deck.vials[name]
        except (AttributeError, KeyError):
            raise ValueError(
                f"deck has no vial {name!r}; vials: "
                f"{sorted(getattr(deck, 'vials', {}))}"
            ) from None
        if "solid_mg" in entry:
            vial.contents.solid_mg = float(entry.pop("solid_mg"))
        if "liquid_ml" in entry:
            vial.contents.liquid_ml = float(entry.pop("liquid_ml"))
        if "stoppered" in entry:
            if not entry.pop("stoppered"):
                vial.decap_vial()
        if entry:
            raise ValueError(f"unknown prepare keys {sorted(entry)} for vial {name!r}")


def build_context(
    deck: str = "hein",
    deck_params: Optional[Mapping[str, Any]] = None,
    prepare: Sequence[Mapping[str, Any]] = (),
    options: Optional[RabitOptions] = None,
    clock: Optional[VirtualClock] = None,
    monitored: bool = True,
) -> WorkflowContext:
    """Build and wire deck *deck*; returns the run-ready context.

    With ``monitored=False`` the proxies trace but never consult a
    monitor — the ground-truth configuration of the fuzz campaign and
    the §II-C latency baseline.
    """
    try:
        build, make = DECKS[deck]
    except KeyError:
        raise ValueError(f"unknown deck {deck!r}; known: {deck_names()}") from None
    params = dict(deck_params or {})
    the_deck = build(params)
    _apply_prepare(the_deck, prepare)
    if monitored:
        rabit, proxies, trace = make(
            the_deck, options or RabitOptions.modified(), clock
        )
        return WorkflowContext(
            deck_name=deck,
            deck=the_deck,
            proxies=proxies,
            trace=trace,
            rabit=rabit,
            deck_params=params,
        )
    proxies, trace = instrument(the_deck.devices, rabit=None, clock=clock)
    return WorkflowContext(
        deck_name=deck,
        deck=the_deck,
        proxies=proxies,
        trace=trace,
        rabit=None,
        deck_params=params,
    )
