"""The workflow journal: a canonical, comparable record of one run.

A journal is the JSON-safe rendering of everything a workflow run did —
the full intercepted command stream (time, device, method, positional
args, action label, resolved location, alert), the executed node/line
ids, and the outcome footer.  Serialized through the shared
:mod:`repro.trace.canon` witness, two runs did the same thing iff their
journal bytes agree.

This is the equality witness of the differential preset tests (legacy
hardcoded function vs. registry preset) and of the export→load→run
round-trip: both legs render through the same functions, so the
comparison is exact, not structural.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import Alert
from repro.core.interceptor import CommandRecord

__all__ = [
    "JOURNAL_SCHEMA",
    "command_entry",
    "run_journal",
    "journal_bytes",
    "journal_digest",
]

#: Journal schema identifier (bumped on any shape change).
JOURNAL_SCHEMA = "repro.workflow-journal/v1"


def _jsonify(value: Any) -> Any:
    """JSON-safe rendering of a command argument (tuples become lists;
    numpy scalars collapse to Python numbers via their dunder ints/floats)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return _jsonify(value.item())
    return str(value)


def _alert_entry(alert: Optional[Alert]) -> Optional[Dict[str, Any]]:
    if alert is None:
        return None
    return {
        "kind": alert.kind.value,
        "message": alert.message,
        "command": alert.command,
        "rule_id": alert.rule_id,
        "involved": list(alert.involved),
    }


def command_entry(record: CommandRecord) -> Dict[str, Any]:
    """One trace line as a JSON-safe dict."""
    return {
        "t": float(record.time),
        "device": record.device,
        "method": record.method,
        "args": _jsonify(record.args),
        "label": record.label.value if record.label is not None else None,
        "location": record.location,
        "alert": _alert_entry(record.alert),
    }


def run_journal(
    records: Sequence[CommandRecord],
    executed: Sequence[str],
    completed: bool,
    alert: Optional[Alert] = None,
    device_error: Optional[str] = None,
    recovered: bool = False,
) -> Dict[str, Any]:
    """The full journal dict for one run (legacy or DAG — both legs of
    the differential tests call this with their own result fields)."""
    return {
        "schema": JOURNAL_SCHEMA,
        "commands": [command_entry(r) for r in records],
        "executed": list(executed),
        "completed": completed,
        "alert": _alert_entry(alert),
        "device_error": device_error,
        "recovered": recovered,
    }


def journal_bytes(journal: Dict[str, Any]) -> bytes:
    """Canonical bytes — the byte-equality witness."""
    from repro.trace.canon import canonical_bytes

    return canonical_bytes(journal)


def journal_digest(journal: Dict[str, Any]) -> str:
    """Short content digest of the canonical journal bytes."""
    from repro.trace.canon import content_digest

    return content_digest(journal)
