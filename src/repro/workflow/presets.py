"""Named workflow presets: every legacy hardcoded workflow, declaratively.

A *preset* is a parameterized builder that emits a
:class:`~repro.workflow.dag.WorkflowDAG` — the percell3
``WorkflowPreset`` idiom.  Builders are typed the same way steps are
(signature introspection), so ``--param`` values are validated before a
DAG is built.

Every port is pinned **byte-identical** to its legacy function by the
differential journal suite (``tests/test_workflow_presets.py``): same
node ids as the legacy line ids, same commands with the same
positional/keyword conventions, same virtual-clock timestamps.  The Bug
A/B/C presets are expressed as DAG surgery on the safe Fig. 5 preset —
exactly the ``DeleteLine``/``InsertAfter`` edits the §IV campaign
injects — and are pinned against ``apply_mutations`` the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.workflow.context import WorkflowContext, build_context
from repro.workflow.dag import WorkflowDAG
from repro.workflow.executor import WorkflowRunResult, execute_dag
from repro.workflow.registry import (
    REGISTRY,
    StepError,
    StepParam,
    StepRegistry,
    _coerce,
    _introspect_params,
)

__all__ = [
    "Preset",
    "PRESETS",
    "preset",
    "build_preset",
    "list_presets",
    "run_preset",
    "preset_matrix",
]


@dataclass(frozen=True)
class Preset:
    """A registered preset: DAG builder + typed parameter table."""

    name: str
    builder: Callable[..., WorkflowDAG]
    params: Tuple[StepParam, ...]
    description: str

    def build(self, params: Optional[Mapping[str, Any]] = None) -> WorkflowDAG:
        """Validate *params* against the table and build the DAG."""
        given = dict(params or {})
        known = {p.name: p for p in self.params}
        for name in given:
            if name not in known:
                raise StepError(
                    f"preset {self.name!r} has no parameter {name!r}; "
                    f"parameters: {sorted(known)}"
                )
        bound: Dict[str, Any] = {}
        for param in self.params:
            if param.name in given:
                try:
                    bound[param.name] = _coerce(param.kind, given[param.name])
                except StepError as exc:
                    raise StepError(
                        f"preset {self.name!r}, parameter {param.name!r}: {exc}"
                    ) from None
            elif param.required:
                raise StepError(
                    f"preset {self.name!r} requires parameter {param.name!r}"
                )
            else:
                bound[param.name] = param.default
        return self.builder(**bound)

    def signature(self) -> str:
        """``name(param: kind = default, ...)`` for the catalog."""
        inner = ", ".join(p.describe() for p in self.params)
        return f"{self.name}({inner})"


#: name -> Preset; populated by the :func:`preset` decorator below.
PRESETS: Dict[str, Preset] = {}


def preset(name: str, description: str = "") -> Callable:
    """Register a DAG builder as preset *name*."""

    def register(fn: Callable[..., WorkflowDAG]) -> Callable[..., WorkflowDAG]:
        if name in PRESETS:
            raise StepError(f"preset {name!r} is already registered")
        import inspect

        PRESETS[name] = Preset(
            name=name,
            builder=fn,
            params=_introspect_params(name, fn, skip_first=False),
            description=description or (inspect.getdoc(fn) or "").split("\n")[0],
        )
        return fn

    return register


def build_preset(
    name: str, params: Optional[Mapping[str, Any]] = None
) -> WorkflowDAG:
    """Build preset *name* with *params* (typed, validated)."""
    try:
        entry = PRESETS[name]
    except KeyError:
        raise StepError(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    return entry.build(params)


def list_presets() -> List[str]:
    """Registered preset names, sorted."""
    return sorted(PRESETS)


def run_preset(
    name: str,
    params: Optional[Mapping[str, Any]] = None,
    options: Any = None,
    monitored: bool = True,
    registry: StepRegistry = REGISTRY,
) -> Tuple[WorkflowDAG, WorkflowContext, WorkflowRunResult]:
    """Build, wire, and execute preset *name* end to end."""
    dag = build_preset(name, params)
    ctx = build_context(
        deck=dag.deck,
        deck_params=dag.deck_params,
        prepare=dag.prepare,
        options=options,
        monitored=monitored,
    )
    result = execute_dag(dag, ctx, registry)
    return dag, ctx, result


# ---------------------------------------------------------------------------
# Hein production presets (Fig. 1(b) API style: modeled wrapper commands)
# ---------------------------------------------------------------------------


@preset("solubility")
def _solubility(
    amount_mg: float = 5.0,
    initial_solvent_ml: float = 4.0,
    temperature: float = 60.0,
    dissolution_rounds: int = 2,
    centrifuge_rpm: float = 3000.0,
) -> WorkflowDAG:
    """The Fig. 1(b) automated solubility measurement (with the
    centrifugation leg that exercises the Table IV custom rules)."""
    dag = WorkflowDAG(
        "solubility",
        deck="hein",
        description="Fig. 1(b) solubility measurement incl. centrifugation",
    )
    robot, dosing, pump = "ur3e", "dosing_device", "syringe_pump"
    dag.then("decap", "decap_vial", vial="vial_1")
    dag.then("open_door_1", "open_door", device=dosing)
    dag.then("stage_grid", "move", robot=robot, location="grid_a1_safe")
    dag.then("pick_vial_grid", "pick_vial", robot=robot, location="grid_a1")
    dag.then("lift_grid", "move", robot=robot, location="grid_a1_safe")
    dag.then("approach_dosing", "move", robot=robot, location="dosing_approach")
    dag.then("place_vial_dosing", "place_vial", robot=robot, location="dosing_interior")
    dag.then("exit_dosing_1", "move", robot=robot, location="dosing_approach")
    dag.then("home_1", "go_home", robot=robot)
    dag.then("close_door_1", "close_door", device=dosing)
    dag.then("dose_solid", "dose_solid", device=dosing, amount_mg=amount_mg)
    dag.then("stop_dosing", "stop_action", device=dosing)
    dag.then("open_door_2", "open_door", device=dosing)
    dag.then("approach_dosing_2", "move", robot=robot, location="dosing_approach")
    dag.then("pick_vial_dosing", "pick_vial", robot=robot, location="dosing_interior")
    dag.then("exit_dosing_2", "move", robot=robot, location="dosing_approach")
    dag.then("close_door_2", "close_door", device=dosing)
    dag.then("stage_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then("place_vial_hotplate", "place_vial", robot=robot, location="hotplate_top")
    dag.then("clear_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then(
        "dose_initial_solvent",
        "dose_initial_solvent",
        device=pump,
        volume_ml=initial_solvent_ml,
    )
    dag.then("stir_initial", "stir_solution", device="hotplate", temperature=temperature)
    dag.then("stop_stir_initial", "stop_action", device="hotplate")
    for round_no in range(1, dissolution_rounds + 1):
        dag.then(f"dose_solvent_{round_no}", "dose_solvent", device=pump, volume_ml=2.0)
        dag.then(
            f"stir_{round_no}",
            "stir_solution",
            device="hotplate",
            temperature=temperature,
        )
        dag.then(f"stop_stir_{round_no}", "stop_action", device="hotplate")
    dag.then("pick_vial_hotplate", "pick_vial", robot=robot, location="hotplate_top")
    dag.then("lift_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then("cap", "cap_vial", vial="vial_1")
    dag.then("approach_centrifuge", "move", robot=robot, location="centrifuge_approach")
    dag.then(
        "place_vial_centrifuge", "place_vial", robot=robot, location="centrifuge_slot"
    )
    dag.then("exit_centrifuge", "move", robot=robot, location="centrifuge_approach")
    dag.then("close_lid", "close_door", device="centrifuge")
    dag.then("spin", "start_action", device="centrifuge", value=centrifuge_rpm)
    dag.then("stop_spin", "stop_action", device="centrifuge")
    dag.then("open_lid", "open_door", device="centrifuge")
    dag.then(
        "approach_centrifuge_2", "move", robot=robot, location="centrifuge_approach"
    )
    dag.then(
        "pick_vial_centrifuge", "pick_vial", robot=robot, location="centrifuge_slot"
    )
    dag.then("exit_centrifuge_2", "move", robot=robot, location="centrifuge_approach")
    dag.then("return_stage", "move", robot=robot, location="grid_a1_safe")
    dag.then("return_vial", "place_vial", robot=robot, location="grid_a1")
    dag.then("home_final", "go_home", robot=robot)
    return dag


@preset("crystallization")
def _crystallization(
    amount_mg: float = 4.0,
    solvent_ml: float = 3.0,
    shake_rpm: float = 800.0,
    vial_name: str = "vial_2",
) -> WorkflowDAG:
    """The Hein crystallization screen (thermoshaker leg, second grid
    vial, runs back-to-back with solubility)."""
    dag = WorkflowDAG(
        "crystallization",
        deck="hein",
        description="Hein crystallization screen (thermoshaker agitation)",
    )
    robot, dosing, pump = "ur3e", "dosing_device", "syringe_pump"
    dag.then("decap", "decap_vial", vial=vial_name)
    dag.then("open_door", "open_door", device=dosing)
    dag.then("stage_grid", "move", robot=robot, location="grid_a2_safe")
    dag.then("pick_grid", "pick_vial", robot=robot, location="grid_a2")
    dag.then("lift_grid", "move", robot=robot, location="grid_a2_safe")
    dag.then("approach_dosing", "move", robot=robot, location="dosing_approach")
    dag.then("place_dosing", "place_vial", robot=robot, location="dosing_interior")
    dag.then("exit_dosing", "move", robot=robot, location="dosing_approach")
    dag.then("close_door", "close_door", device=dosing)
    dag.then("dose_solid", "dose_solid", device=dosing, amount_mg=amount_mg)
    dag.then("stop_dosing", "stop_action", device=dosing)
    dag.then("reopen_door", "open_door", device=dosing)
    dag.then("approach_dosing_2", "move", robot=robot, location="dosing_approach")
    dag.then("pick_dosing", "pick_vial", robot=robot, location="dosing_interior")
    dag.then("exit_dosing_2", "move", robot=robot, location="dosing_approach")
    dag.then("close_door_2", "close_door", device=dosing)
    dag.then("stage_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then("place_hotplate", "place_vial", robot=robot, location="hotplate_top")
    dag.then("clear_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then("dose_solvent", "dose_solvent", device=pump, volume_ml=solvent_ml)
    dag.then("pick_hotplate", "pick_vial", robot=robot, location="hotplate_top")
    dag.then("lift_hotplate", "move", robot=robot, location="hotplate_safe")
    dag.then("stage_shaker", "move", robot=robot, location="shaker_safe")
    dag.then("place_shaker", "place_vial", robot=robot, location="shaker_top")
    dag.then("clear_shaker", "move", robot=robot, location="shaker_safe")
    dag.then("shake", "shake", device="thermoshaker", speed_rpm=shake_rpm)
    dag.then("stop_shake", "stop_action", device="thermoshaker")
    dag.then("restage_shaker", "move", robot=robot, location="shaker_safe")
    dag.then("pick_shaker", "pick_vial", robot=robot, location="shaker_top")
    dag.then("lift_shaker", "move", robot=robot, location="shaker_safe")
    dag.then("restage_grid", "move", robot=robot, location="grid_a2_safe")
    dag.then("return_vial", "place_vial", robot=robot, location="grid_a2")
    dag.then("cap", "cap_vial", vial=vial_name)
    dag.then("home", "go_home", robot=robot)
    return dag


# ---------------------------------------------------------------------------
# Berlinguette spray-coating presets
# ---------------------------------------------------------------------------


@preset("spray_coating")
def _spray_coating(solvent_only: bool = False) -> WorkflowDAG:
    """The §V-B spray-coating run; ``solvent_only=True`` reproduces the
    runs that break the Hein solids-before-liquids invariant."""
    suffix = "_solvent_only" if solvent_only else ""
    dag = WorkflowDAG(
        f"spray_coating{suffix}",
        deck="berlinguette",
        description="Berlinguette spray coating (decap, dose, spin, spray)",
    )
    robot, dosing = "ur5e", "dosing_device"
    dag.then("stage_grid", "move", robot=robot, location="bgrid_1_safe")
    dag.then("pick_grid", "pick_vial", robot=robot, location="bgrid_1")
    dag.then("lift_grid", "move", robot=robot, location="bgrid_1_safe")
    dag.then("stage_decapper", "move", robot=robot, location="decapper_safe")
    dag.then("place_decapper", "place_vial", robot=robot, location="decapper_slot")
    dag.then("clear_decapper", "move", robot=robot, location="decapper_safe")
    dag.then("decap", "decap", device="decapper")
    dag.then("pick_decapper", "pick_vial", robot=robot, location="decapper_slot")
    dag.then("lift_decapper", "move", robot=robot, location="decapper_safe")
    if not solvent_only:
        dag.then("open_door", "open_door", device=dosing)
        dag.then("approach_dosing", "move", robot=robot, location="bdosing_approach")
        dag.then("place_dosing", "place_vial", robot=robot, location="bdosing_interior")
        dag.then("exit_dosing", "move", robot=robot, location="bdosing_approach")
        dag.then("close_door", "close_door", device=dosing)
        dag.then("dose_solid", "dose_solid", device=dosing, amount_mg=4.0)
        dag.then("stop_dose", "stop_action", device=dosing)
        dag.then("reopen_door", "open_door", device=dosing)
        dag.then("approach_dosing_2", "move", robot=robot, location="bdosing_approach")
        dag.then("pick_dosing", "pick_vial", robot=robot, location="bdosing_interior")
        dag.then("exit_dosing_2", "move", robot=robot, location="bdosing_approach")
        dag.then("close_door_2", "close_door", device=dosing)
    dag.then("stage_coater", "move", robot=robot, location="coater_safe")
    dag.then("place_coater", "place_vial", robot=robot, location="coater_top")
    dag.then("clear_coater", "move", robot=robot, location="coater_safe")
    dag.then("dose_solvent", "dose_solvent", device="syringe_pump", volume_ml=3.0)
    dag.then("spin", "start_action", device="spin_coater", value=2000.0)
    dag.then("stop_spin", "stop_action", device="spin_coater")
    dag.then("spray", "start_action", device="nozzle", value=30.0)
    dag.then("stop_spray", "stop_action", device="nozzle")
    dag.then("pick_coater", "pick_vial", robot=robot, location="coater_top")
    dag.then("lift_coater", "move", robot=robot, location="coater_safe")
    dag.then("restage_grid", "move", robot=robot, location="bgrid_1_safe")
    dag.then("return_vial", "place_vial", robot=robot, location="bgrid_1")
    dag.then("home", "go_home", robot=robot)
    return dag


# ---------------------------------------------------------------------------
# Testbed presets (Fig. 5 API style: script-level helpers, raw commands)
# ---------------------------------------------------------------------------


def _fig5_dag(name: str) -> WorkflowDAG:
    """The safe Fig. 5 two-arm workflow, shared by the bug variants."""
    dag = WorkflowDAG(
        name,
        deck="testbed",
        description="Fig. 5 safe two-arm testbed workflow (plus Ned2 tail)",
    )
    dosing = "dosing_device"
    dag.then("open_door_initial", "set_door", device=dosing, state="open")
    dag.then("decap_vial", "decap_vial", vial="vial_t1")
    dag.then("home_1", "go_home", robot="viperx")
    dag.then(
        "pick_grid",
        "pick_up_object",
        robot="viperx",
        safe_location="grid_nw_viperx_safe",
        pickup_location="grid_nw_viperx",
    )
    dag.then("place_dosing", "place_into_dosing", robot="viperx")
    dag.then("home_2", "go_home", robot="viperx")
    dag.then("close_door_before_dose", "set_door", device=dosing, state="closed")
    dag.then("run_dosing", "run_action", device=dosing, delay=3.0, quantity=5.0)
    dag.then("stop_dosing", "stop_action", device=dosing)
    dag.then("open_door_after_dose", "set_door", device=dosing, state="open")
    dag.then("pick_dosing", "pick_from_dosing", robot="viperx")
    dag.then(
        "place_grid",
        "place_object",
        robot="viperx",
        safe_location="grid_nw_viperx_safe",
        place_location="grid_nw_viperx",
    )
    dag.then("close_door_final", "set_door", device=dosing, state="closed")
    dag.then("home_3", "go_home", robot="viperx")
    dag.then("sleep_viperx", "go_sleep", robot="viperx")
    dag.then(
        "ned2_pick_grid",
        "pick_up_object",
        robot="ned2",
        safe_location="grid_ne_ned2_safe",
        pickup_location="grid_ne_ned2",
    )
    dag.then(
        "ned2_place_grid",
        "place_object",
        robot="ned2",
        safe_location="grid_ne_ned2_safe",
        place_location="grid_ne_ned2",
    )
    dag.then("ned2_sleep", "go_sleep", robot="ned2")
    return dag


@preset("testbed_fig5")
def _testbed_fig5() -> WorkflowDAG:
    """The safe Fig. 5 testbed workflow."""
    return _fig5_dag("testbed_fig5")


@preset("testbed_bug_a")
def _testbed_bug_a() -> WorkflowDAG:
    """Bug A (campaign H1): the door-reopen line is dropped; the arm
    drives into the closed dosing device."""
    dag = _fig5_dag("testbed_bug_a")
    dag.drop("open_door_after_dose")
    dag.description = "Fig. 5 with Bug A: open_door_after_dose deleted"
    return dag


@preset("testbed_bug_b")
def _testbed_bug_b() -> WorkflowDAG:
    """Bug B (campaign MH4): Ned2 commanded next to the grid while
    ViperX is stationed there (no common frame of reference)."""
    dag = _fig5_dag("testbed_bug_b")
    dag.insert_after(
        "place_grid",
        "ned2_random_move",
        "move_pose",
        robot="ned2",
        target=[0.365, -0.010, 0.192],
    )
    dag.description = "Fig. 5 with Bug B: stray ned2.move_pose after place_grid"
    return dag


@preset("testbed_bug_c")
def _testbed_bug_c() -> WorkflowDAG:
    """Bug C (campaign L2): the pick-up call is omitted; the experiment
    continues without a vial (never detectable without a pressure
    sensor)."""
    dag = _fig5_dag("testbed_bug_c")
    dag.drop("pick_grid")
    dag.description = "Fig. 5 with Bug C: pick_grid deleted"
    return dag


@preset("centrifuge")
def _centrifuge(spin_rpm: float = 3000.0) -> WorkflowDAG:
    """The testbed centrifugation leg: cap the pre-filled vial, ferry it
    into the mock centrifuge, spin, and return it (lid rules G9/G10,
    spin threshold G11, Table IV custom rules at place time)."""
    dag = WorkflowDAG(
        "centrifuge",
        deck="testbed",
        description="Testbed centrifugation leg (prepared vial, lid + spin rules)",
        prepare=[
            {"vial": "vial_t1", "solid_mg": 5.0, "liquid_ml": 5.0, "stoppered": False}
        ],
    )
    dag.then("cap_vial", "cap_vial", vial="vial_t1")
    dag.then("home_1", "go_home", robot="viperx")
    dag.then(
        "pick_grid",
        "pick_up_object",
        robot="viperx",
        safe_location="grid_nw_viperx_safe",
        pickup_location="grid_nw_viperx",
    )
    dag.then(
        "place_centrifuge",
        "place_object",
        robot="viperx",
        safe_location="centrifuge_approach_viperx",
        place_location="centrifuge_slot_viperx",
    )
    dag.then("home_2", "go_home", robot="viperx")
    dag.then("close_lid", "set_door", device="centrifuge", state="closed")
    dag.then("spin", "start_action", device="centrifuge", value=spin_rpm)
    dag.then("stop_spin", "stop_action", device="centrifuge")
    dag.then("open_lid", "set_door", device="centrifuge", state="open")
    dag.then(
        "pick_centrifuge",
        "pick_up_object",
        robot="viperx",
        safe_location="centrifuge_approach_viperx",
        pickup_location="centrifuge_slot_viperx",
    )
    dag.then(
        "place_grid",
        "place_object",
        robot="viperx",
        safe_location="grid_nw_viperx_safe",
        place_location="grid_nw_viperx",
    )
    dag.then("home_3", "go_home", robot="viperx")
    dag.then("sleep_viperx", "go_sleep", robot="viperx")
    return dag


# ---------------------------------------------------------------------------
# Two-door preset
# ---------------------------------------------------------------------------


@preset("two_door")
def _two_door(amount_mg: float = 3.0) -> WorkflowDAG:
    """The §V-C simultaneous-access workflow: both arms enter the shared
    device through their own doors, retreat, then it doses."""
    dag = WorkflowDAG(
        "two_door",
        deck="two_door",
        description="§V-C two-door simultaneous access (per-door G1/G2, G9)",
    )
    dag.then("open_front", "open_door", device="mdoser", door="front")
    dag.then("open_back", "open_door", device="mdoser", door="back")
    dag.then("viperx_approach", "move", robot="viperx", location="front_approach")
    dag.then("viperx_enter", "move", robot="viperx", location="mdoser_front")
    dag.then("ned2_approach", "move", robot="ned2", location="back_approach")
    dag.then("ned2_enter", "move", robot="ned2", location="mdoser_back")
    dag.then("viperx_exit", "move", robot="viperx", location="front_approach")
    dag.then("ned2_exit", "move", robot="ned2", location="back_approach")
    dag.then("close_front", "close_door", device="mdoser", door="front")
    dag.then("close_back", "close_door", device="mdoser", door="back")
    dag.then("dose", "dose_solid", device="mdoser", amount_mg=amount_mg)
    dag.then("stop_dosing", "stop_action", device="mdoser")
    dag.then("viperx_sleep", "go_sleep", robot="viperx")
    dag.then("ned2_sleep", "go_sleep", robot="ned2")
    return dag


# ---------------------------------------------------------------------------
# The parameterized preset matrix
# ---------------------------------------------------------------------------


def preset_matrix() -> List[Tuple[str, Dict[str, Any]]]:
    """The scenario matrix: every preset crossed with meaningful
    parameter variations — the mass-produced diversity the north star
    asks for.  Each entry is ``(preset_name, params)``; all entries
    build valid DAGs, and the matrix suite executes a rotating subset
    end to end."""
    matrix: List[Tuple[str, Dict[str, Any]]] = []
    for rounds in (1, 2, 3):
        for temperature in (40.0, 60.0):
            matrix.append(
                ("solubility",
                 {"dissolution_rounds": rounds, "temperature": temperature})
            )
    for amount in (3.0, 5.0):
        matrix.append(("solubility", {"amount_mg": amount}))
    for rpm in (600.0, 800.0, 1200.0):
        matrix.append(("crystallization", {"shake_rpm": rpm}))
    matrix.append(("crystallization", {"vial_name": "vial_2", "solvent_ml": 2.0}))
    matrix.append(("spray_coating", {}))
    matrix.append(("spray_coating", {"solvent_only": True}))
    matrix.append(("testbed_fig5", {}))
    for rpm in (2000.0, 3000.0):
        matrix.append(("centrifuge", {"spin_rpm": rpm}))
    for amount in (2.0, 3.0):
        matrix.append(("two_door", {"amount_mg": amount}))
    return matrix
