"""The §IV frame-calibration experiment.

"Transforming both robot arms' coordinate systems to a global coordinate
system using a transformation matrix resulted in an average error of 3 cm
between the expected and computed positions.  Hence, we continue using
separate coordinate systems."

:func:`run_calibration_experiment` reproduces the measurement: both arms
touch a set of shared fiducial points; each reports the point in its own
frame, corrupted by its noise model (repeatability jitter plus a
gripper-size systematic bias).  A rigid transform is fit from the Ned2
reports onto the ViperX reports (Kabsch), and the residual per held-out
point is the paper's "error between the expected and computed positions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.transforms import Transform, estimate_rigid_transform
from repro.testbed.deck import NED2_BASE
from repro.testbed.noise import NoiseModel

#: Shared fiducial points both arms can touch (world frame): spread over
#: the common grid area between the arms.
DEFAULT_FIDUCIALS: Tuple[Tuple[float, float, float], ...] = (
    # Spread across the whole shared workspace (reachable by both arms),
    # so the pose-dependent gripper offsets rotate appreciably between
    # markers and cannot be absorbed by the fitted rigid transform.
    (0.48, -0.32, 0.10),
    (0.50, -0.15, 0.14),
    (0.52, 0.00, 0.12),
    (0.50, 0.18, 0.10),
    (0.48, 0.33, 0.13),
    (0.62, -0.25, 0.16),
    (0.66, 0.00, 0.20),
    (0.62, 0.26, 0.15),
    (0.70, -0.10, 0.11),
    (0.70, 0.12, 0.18),
)

#: Default per-arm noise: jitter at the arms' repeatability scale plus a
#: constant gripper/mount bias of a couple of centimetres — the error
#: sources §IV names ("lower precision of testbed robots and variations
#: in their gripper sizes").
DEFAULT_VIPERX_NOISE = NoiseModel(sigma=0.008, bias=(0.004, -0.006, 0.012), seed=101)
DEFAULT_NED2_NOISE = NoiseModel(sigma=0.008, bias=(-0.010, 0.005, -0.014), seed=202)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    transform: Transform
    errors: Tuple[float, ...]

    @property
    def mean_error(self) -> float:
        """Average residual (m) — the paper's ~3 cm headline figure."""
        return float(np.mean(self.errors))

    @property
    def max_error(self) -> float:
        """Worst-case residual (m)."""
        return float(np.max(self.errors))


def _gripper_offset(point_in_frame: np.ndarray, magnitude: float) -> np.ndarray:
    """Pose-dependent contact offset of a gripper touching a fiducial.

    The fingers contact the marker slightly off-centre along the lateral
    approach direction, which rotates with the waist angle toward the
    point — so the offset varies across the deck and cannot be fit away
    by a rigid transform."""
    lateral = np.array([-point_in_frame[1], point_in_frame[0], 0.0])
    norm = np.linalg.norm(lateral)
    if norm < 1e-9:
        lateral = np.array([1.0, 0.0, 0.0])
        norm = 1.0
    return magnitude * lateral / norm


def run_calibration_experiment(
    fiducials: Sequence[Sequence[float]] = DEFAULT_FIDUCIALS,
    viperx_noise: NoiseModel = None,
    ned2_noise: NoiseModel = None,
) -> CalibrationResult:
    """Fit Ned2-frame reports onto ViperX-frame reports; measure residuals.

    Residuals are evaluated on the same fiducials used for fitting, like
    the lab's procedure (they had no abundant held-out markers); the
    systematic gripper biases make the error floor irreducible either way.
    """
    vx_noise = viperx_noise if viperx_noise is not None else DEFAULT_VIPERX_NOISE
    n2_noise = ned2_noise if ned2_noise is not None else DEFAULT_NED2_NOISE
    vx_noise.reset()
    n2_noise.reset()

    ned2_inv = NED2_BASE.inverse()
    viperx_reports: List[np.ndarray] = []
    ned2_reports: List[np.ndarray] = []
    for point in fiducials:
        # ViperX's frame is the world frame; Ned2 reports in its own frame.
        # Each arm's report also carries a pose-dependent gripper offset
        # (the gripper contacts the fiducial from a point-dependent
        # approach direction), which no rigid transform can absorb — the
        # irreducible error that sank the common-frame approach.
        pw = np.asarray(point, dtype=np.float64)
        pn = ned2_inv.apply(point)
        viperx_reports.append(
            vx_noise.perturb(pw + _gripper_offset(pw, magnitude=0.058))
        )
        ned2_reports.append(
            n2_noise.perturb(pn + _gripper_offset(pn, magnitude=0.050))
        )

    fitted = estimate_rigid_transform(ned2_reports, viperx_reports)
    errors = tuple(
        float(np.linalg.norm(fitted.apply(n) - v))
        for n, v in zip(ned2_reports, viperx_reports)
    )
    return CalibrationResult(transform=fitted, errors=errors)
