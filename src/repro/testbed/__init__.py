"""The low-fidelity testbed (§III, Fig. 4).

"The testbed emulates the Hein Lab using lower precision robot arms and
low-fidelity device mockups": a six-axis ViperX-300 and a six-axis Niryo
Ned2 around cardboard/toy stand-ins for the dosing device, centrifuge,
thermoshaker, and hotplate, sharing a vial grid.

- :mod:`repro.testbed.deck` -- the dual-arm deck with all mockups, each
  arm keeping its own coordinate frame.
- :mod:`repro.testbed.noise` -- actuation/reporting noise models for the
  educational arms.
- :mod:`repro.testbed.calibration` -- the §IV frame-calibration
  experiment: fitting a rigid transform between the two arms' coordinate
  systems from noisy correspondences and measuring the residual error
  (~3 cm in the paper), which motivated multiplexing instead.
"""

from repro.testbed.deck import TestbedDeck, build_testbed_deck, make_testbed_rabit
from repro.testbed.noise import NoiseModel
from repro.testbed.calibration import CalibrationResult, run_calibration_experiment

__all__ = [
    "TestbedDeck",
    "build_testbed_deck",
    "make_testbed_rabit",
    "NoiseModel",
    "CalibrationResult",
    "run_calibration_experiment",
]
