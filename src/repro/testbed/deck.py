"""The dual-arm testbed deck (Fig. 4).

ViperX-300 at the world origin; Ned2 mounted 0.82 m away, rotated 180°
so the two arms face each other across a shared vial grid.  Each arm
keeps **its own coordinate frame** (the lab's de facto convention); only
the ground-truth world knows the exact transform between them.

Deck geometry is chosen so that:

- the Fig. 6 location table reproduces (dosing-device approach /
  pickup-safe-height / pickup staging for ViperX, with the pickup at
  z = 0.10 leaving 1 cm of held-vial clearance over the platform slab —
  Bug D's z = 0.08 removes it);
- both arms can reach their own grid slots but legitimate workflows never
  cross the deck midline, so space multiplexing's software wall at world
  x = 0.47 is compatible with all safe traffic;
- the Fig. 5 ``random_location`` analogue sits inside ViperX's parked
  envelope, reproducing Bug B's arm-arm collision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.clock import VirtualClock
from repro.core.config import build_model
from repro.core.interceptor import CommandRecord, DeviceProxy, instrument
from repro.core.model import RabitLabModel
from repro.core.monitor import Rabit, RabitOptions
from repro.core.multiplexing import SpaceMultiplexer, TimeMultiplexer
from repro.devices.action_device import Centrifuge, Hotplate, Thermoshaker
from repro.devices.base import Device, DoorState
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice
from repro.devices.locations import LocationKind
from repro.devices.robot import RobotArmDevice
from repro.devices.world import LabWorld
from repro.geometry.shapes import Cuboid, bounding_cuboid
from repro.geometry.transforms import identity, rotation_z, translation
from repro.geometry.walls import SoftwareWall, Workspace
from repro.kinematics.profiles import NED2, VIPERX_300
from repro.simulator.extended import ExtendedSimulator

#: Ned2's mounting: 0.82 m along world x, rotated 180° about z.
NED2_BASE = translation([0.82, 0.0, 0.0]) @ rotation_z(math.pi)

#: World-frame obstacle cuboids of the mockups.
GEOMETRY: Dict[str, Dict[str, Any]] = {
    "platform": {"min": [-0.6, -0.6, -0.02], "max": [1.4, 0.6, 0.03], "surface": True},
    "grid": {"min": [0.38, -0.08, 0.0], "max": [0.64, 0.10, 0.05], "surface": False},
    "dosing_device": {"min": [0.05, 0.38, 0.0], "max": [0.25, 0.58, 0.30], "surface": False},
    "thermoshaker": {"min": [0.30, -0.44, 0.0], "max": [0.44, -0.26, 0.12], "surface": False},
    "centrifuge": {"min": [-0.30, 0.30, 0.0], "max": [-0.10, 0.50, 0.22], "surface": False},
    "hotplate": {"min": [0.95, -0.45, 0.0], "max": [1.15, -0.25, 0.08], "surface": False},
}

#: Locations: name -> (kind, owning device/obstacle, {frame: [x, y, z]}).
#: Coordinates are deliberately only provided in the frame(s) of the
#: arm(s) that use them (the Fig. 6 style).
LOCATIONS: Dict[str, Tuple[str, Optional[str], Dict[str, List[float]]]] = {
    # ViperX side (frame == world).
    "grid_nw_viperx": ("grid_slot", "grid", {"viperx": [0.44, 0.0, 0.12]}),
    "grid_nw_viperx_safe": ("free", None, {"viperx": [0.44, 0.0, 0.25]}),
    "dosing_approach_viperx": (
        "device_approach", "dosing_device", {"viperx": [0.15, 0.33, 0.19]}
    ),
    "dosing_safe_viperx": (
        "device_interior", "dosing_device", {"viperx": [0.15, 0.48, 0.19]}
    ),
    "dosing_pickup_viperx": (
        "device_interior", "dosing_device", {"viperx": [0.15, 0.45, 0.10]}
    ),
    "centrifuge_approach_viperx": (
        "device_approach", "centrifuge", {"viperx": [-0.20, 0.26, 0.30]}
    ),
    "centrifuge_slot_viperx": (
        "device_interior", "centrifuge", {"viperx": [-0.20, 0.40, 0.12]}
    ),
    # Ned2 side (ned2 frame).  The shared grid slot also carries
    # ViperX-frame coordinates (world == viperx frame), so a buggy script
    # can command ViperX across the deck midline (the MH6 scenario).
    "grid_ne_ned2": (
        "grid_slot", "grid",
        {"ned2": [0.25, -0.05, 0.12], "viperx": [0.57, 0.05, 0.12]},
    ),
    "grid_ne_ned2_safe": (
        "free", None,
        {"ned2": [0.25, -0.05, 0.25], "viperx": [0.57, 0.05, 0.25]},
    ),
    "hotplate_top_ned2": ("device_interior", "hotplate", {"ned2": [-0.23, 0.35, 0.14]}),
    "hotplate_safe_ned2": ("free", None, {"ned2": [-0.23, 0.35, 0.26]}),
}

VIAL_CAPACITY_SOLID_MG = 10.0

#: Physical room limits: a real wall runs along world y = 0.58 on the
#: ViperX side (the wall Bug MH5 pokes a hole in).
ROOM = Cuboid((-0.7, -0.6, -0.05), (1.5, 0.58, 1.0), name="testbed_room")

#: Configured per-frame workspace bounds (modified RABIT's deck-edge fix).
WORKSPACE_BOUNDS: Dict[str, Dict[str, List[float]]] = {
    "viperx": {"min": [-0.55, -0.52, 0.02], "max": [0.72, 0.55, 1.0]},
    "ned2": {"min": [-0.40, -0.50, 0.02], "max": [0.60, 0.50, 0.9]},
}

#: Space multiplexing: the software wall sits at world x = 0.47.
WALL_WORLD_X = 0.47


@dataclass
class TestbedDeck:
    """The assembled testbed."""

    world: LabWorld
    devices: Dict[str, Device]
    vials: Dict[str, Vial]
    config: Dict[str, Any]
    model: RabitLabModel

    @property
    def viperx(self) -> RobotArmDevice:
        """The ViperX-300 arm."""
        arm = self.devices["viperx"]
        assert isinstance(arm, RobotArmDevice)
        return arm

    @property
    def ned2(self) -> RobotArmDevice:
        """The Ned2 arm."""
        arm = self.devices["ned2"]
        assert isinstance(arm, RobotArmDevice)
        return arm


def _world_to_ned2(box: Cuboid) -> Cuboid:
    """Express a world-frame cuboid in the Ned2 frame (180° z-rotation
    keeps AABBs axis-aligned)."""
    inv = NED2_BASE.inverse()
    corners = [inv.apply(c) for c in box.corners()]
    return bounding_cuboid(corners, name=box.name)


def build_testbed_deck(
    noise_sigma: float = 0.0, vial_names: Tuple[str, ...] = ("vial_t1", "vial_t2")
) -> TestbedDeck:
    """Construct the testbed; ``noise_sigma`` adds arm actuation noise."""
    world = LabWorld("testbed", Workspace(bounds=ROOM))
    world.register_frame("viperx", identity())
    world.register_frame("ned2", NED2_BASE)

    boxes = {
        name: Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)
        for name, spec in GEOMETRY.items()
    }
    world.add_surface(boxes["platform"])

    for name, (kind, device, coords) in LOCATIONS.items():
        world.locations.define(name, LocationKind(kind), coords=coords, device=device)

    viperx = RobotArmDevice("viperx", VIPERX_300, world, noise_sigma=noise_sigma, seed=7)
    ned2 = RobotArmDevice("ned2", NED2, world, noise_sigma=noise_sigma, seed=11)
    dosing = SolidDosingDevice(
        "dosing_device", world, max_dose_mg=VIAL_CAPACITY_SOLID_MG,
        door_initial=DoorState.CLOSED,
    )
    centrifuge = Centrifuge("centrifuge", world)
    shaker = Thermoshaker("thermoshaker", world)
    hotplate = Hotplate("hotplate", world)

    world.add_device(viperx)
    world.add_device(ned2)
    world.add_device(dosing, footprint=boxes["dosing_device"])
    world.add_device(centrifuge, footprint=boxes["centrifuge"])
    world.add_device(shaker, footprint=boxes["thermoshaker"])
    world.add_device(hotplate, footprint=boxes["hotplate"])
    world.add_obstacle(boxes["grid"])  # passive fixture, not a device

    vials: Dict[str, Vial] = {}
    slots = ["grid_nw_viperx", "grid_ne_ned2"]
    for i, vial_name in enumerate(vial_names):
        vial = Vial(vial_name, capacity_solid_mg=VIAL_CAPACITY_SOLID_MG, stoppered=True)
        world.add_vial(vial, at_location=slots[i] if i < len(slots) else None)
        vials[vial_name] = vial

    devices: Dict[str, Device] = {
        "viperx": viperx,
        "ned2": ned2,
        "dosing_device": dosing,
        "centrifuge": centrifuge,
        "thermoshaker": shaker,
        "hotplate": hotplate,
        **vials,
    }
    config = _testbed_config(vial_names)
    model = build_model(config)
    return TestbedDeck(world=world, devices=devices, vials=vials, config=config, model=model)


def _testbed_config(vial_names: Tuple[str, ...]) -> Dict[str, Any]:
    """The testbed's RABIT JSON configuration.

    ``reliable_container_tracking`` is **False**: pick/place on the
    testbed go through raw gripper commands, so container positions are
    best-effort beliefs and presence-requiring rules only alarm on
    provable violations (the Bug C mechanism).
    """
    device_entries: List[Dict[str, Any]] = [
        {
            "name": "viperx",
            "type": "robot_arm",
            "class": "RobotArmDevice",
            "frame": "viperx",
            "link_radius": VIPERX_300.link_radius,
            "gripper_clearance": RobotArmDevice.GRIPPER_CLEARANCE,
            "held_drop": RobotArmDevice.HELD_DROP,
        },
        {
            "name": "ned2",
            "type": "robot_arm",
            "class": "RobotArmDevice",
            "frame": "ned2",
            "link_radius": NED2.link_radius,
            "gripper_clearance": RobotArmDevice.GRIPPER_CLEARANCE,
            "held_drop": RobotArmDevice.HELD_DROP,
        },
        {
            "name": "dosing_device",
            "type": "dosing_system",
            "class": "SolidDosingDevice",
            "door": {"present": True, "initial": "closed"},
            "load_location": "dosing_pickup_viperx",
        },
        {
            "name": "centrifuge",
            "type": "action_device",
            "class": "Centrifuge",
            "threshold": 6000.0,
            "door": {"present": True, "initial": "open"},
            "load_location": "centrifuge_slot_viperx",
        },
        {
            "name": "thermoshaker",
            "type": "action_device",
            "class": "Thermoshaker",
            "threshold": 1500.0,
        },
        {
            "name": "hotplate",
            "type": "action_device",
            "class": "Hotplate",
            "threshold": 120.0,
            "load_location": "hotplate_top_ned2",
        },
    ]
    for vial_name in vial_names:
        device_entries.append(
            {
                "name": vial_name,
                "type": "container",
                "class": "Vial",
                "capacity_solid_mg": VIAL_CAPACITY_SOLID_MG,
            }
        )

    obstacles = []
    for name, spec in GEOMETRY.items():
        box = Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)
        ned2_box = _world_to_ned2(box)
        obstacles.append(
            {
                "name": name,
                "surface": spec["surface"],
                "frames": {
                    "viperx": {"min": list(spec["min"]), "max": list(spec["max"])},
                    "ned2": {
                        "min": [round(v, 6) for v in ned2_box.lo],
                        "max": [round(v, 6) for v in ned2_box.hi],
                    },
                },
            }
        )

    return {
        "lab": "testbed",
        "devices": device_entries,
        "locations": [
            {"name": name, "kind": kind, "device": device,
             "coords": {f: list(c) for f, c in coords.items()}}
            for name, (kind, device, coords) in LOCATIONS.items()
        ],
        "obstacles": obstacles,
        "workspace": WORKSPACE_BOUNDS,
        "custom_rules": ["C1", "C2", "C3", "C4"],
        "reliable_container_tracking": False,
    }


def make_testbed_rabit(
    deck: TestbedDeck,
    options: Optional[RabitOptions] = None,
    use_extended_simulator: bool = False,
    clock: Optional[VirtualClock] = None,
    exclude_rules: Tuple[str, ...] = (),
) -> Tuple[Rabit, Dict[str, DeviceProxy], List[CommandRecord]]:
    """Wire RABIT onto the testbed (monitor + proxies, optional ES).

    ``exclude_rules`` drops rules by id (the ablation benchmark's knob)."""
    from repro.core.rulebase import build_default_rulebase

    opts = options or RabitOptions.modified()
    if use_extended_simulator and not opts.use_extended_simulator:
        from dataclasses import replace

        opts = replace(opts, use_extended_simulator=True)
    checker = (
        ExtendedSimulator({"viperx": deck.viperx, "ned2": deck.ned2})
        if opts.use_extended_simulator
        else None
    )
    rabit = Rabit(
        model=deck.model,
        devices=deck.devices,
        options=opts,
        rulebase=build_default_rulebase(deck.model.custom_rule_ids, exclude=exclude_rules),
        trajectory_checker=checker,
        clock=clock,
    )
    for vial_name, vial in deck.vials.items():
        if vial.resting_at is not None:
            rabit.seed_tracked("container_at", vial_name, vial.resting_at)
        # The researcher declares the starting inventory; we read it off
        # the (correctly prepared) deck, like the lab does at setup time.
        rabit.seed_tracked("container_solid", vial_name, vial.contents.solid_mg)
        rabit.seed_tracked("container_liquid", vial_name, vial.contents.liquid_ml)
    rabit.initialize()
    proxies, trace = instrument(deck.devices, rabit, clock=rabit.clock)
    return rabit, proxies, trace


def sleep_footprints(deck: TestbedDeck) -> Dict[str, Dict[str, Cuboid]]:
    """Each arm's sleep-pose cuboid, expressed in **both** frames.

    This is the paper's time-multiplexing prerequisite: "we specify Ned2's
    shape and sleep position in ViperX's environment (and vice versa)".
    """
    out: Dict[str, Dict[str, Cuboid]] = {}
    for arm in (deck.viperx, deck.ned2):
        chain = arm.kinematics.chain
        polyline_own = chain.joint_positions(arm.profile.sleep_q)
        to_world = deck.world.frames.to_world(arm.name)
        world_pts = [to_world.apply(p) for p in polyline_own]
        world_box = bounding_cuboid(world_pts, name=f"sleeping_{arm.name}").inflated(
            arm.profile.link_radius
        )
        frames: Dict[str, Cuboid] = {}
        for frame in ("viperx", "ned2"):
            inv = deck.world.frames.to_world(frame).inverse()
            corners = [inv.apply(c) for c in world_box.corners()]
            frames[frame] = bounding_cuboid(corners, name=world_box.name)
        out[arm.name] = frames
    return out


def attach_time_multiplexing(rabit: Rabit, deck: TestbedDeck) -> TimeMultiplexer:
    """Enable time multiplexing on a testbed monitor."""
    return TimeMultiplexer(rabit, sleep_footprints(deck))


def attach_space_multiplexing(rabit: Rabit, deck: TestbedDeck) -> SpaceMultiplexer:
    """Enable space multiplexing: one software wall at world x = 0.47.

    ViperX (frame == world) must keep x <= 0.47; Ned2, whose frame is the
    180°-rotated one, must keep its own x <= 0.82 - 0.47 = 0.35.
    """
    walls = {
        "viperx": SoftwareWall((1.0, 0.0, 0.0), WALL_WORLD_X, name="deck_divider"),
        "ned2": SoftwareWall((1.0, 0.0, 0.0), 0.82 - WALL_WORLD_X, name="deck_divider"),
    }
    return SpaceMultiplexer(rabit, walls)
