"""Noise models for the low-precision testbed arms.

The educational arms have millimetre-scale repeatability (versus the
UR3e's 0.03 mm), and their grippers differ in size — both effects the
paper names as reasons the common-frame mapping accumulated ~3 cm of
error.  :class:`NoiseModel` captures them as a per-arm systematic offset
(gripper-size/mounting bias) plus zero-mean Gaussian jitter, with a seeded
generator so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.vec import Vec3, as_vec3


@dataclass
class NoiseModel:
    """Systematic offset + Gaussian jitter applied to reported positions."""

    sigma: float = 0.005
    bias: Sequence[float] = (0.0, 0.0, 0.0)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._bias = as_vec3(self.bias)

    def perturb(self, point: Sequence[float]) -> Vec3:
        """Apply the model to one reported point."""
        return as_vec3(point) + self._bias + self._rng.normal(0.0, self.sigma, size=3)

    def perturb_many(self, points: np.ndarray) -> np.ndarray:
        """Apply the model to an ``(N, 3)`` array of points."""
        pts = np.asarray(points, dtype=np.float64)
        return pts + self._bias + self._rng.normal(0.0, self.sigma, size=pts.shape)

    def reset(self) -> None:
        """Restart the generator from the seed (scenario teardown)."""
        self._rng = np.random.default_rng(self.seed)
