"""One multiplexed lab session inside the guard service.

A :class:`GuardSession` owns everything per-session the monitor's
correctness depends on — deck, :class:`LabState`, rule-verdict cache,
virtual clock, verdict journal — and shares exactly two things with its
siblings: the tenant's :class:`~repro.core.rulebase.RuleBase` (hence its
memoized compiled dispatch snapshot) and the
:class:`~repro.serve.batcher.SweepBatcher`.

Command handling mirrors :class:`~repro.core.interceptor.DeviceProxy`
step for step — the same action resolution, the same virtual-clock
charges, the same alert bookkeeping — but guards through
:meth:`Rabit.guard_async` so the event loop can overlap many sessions'
device I/O, and routes trajectory sweeps through the shared batcher.
``io_latency`` models the wall-clock the physical lab spends per command
(arm motion, device round-trips) as a real ``asyncio.sleep``: virtual
-clock accounting is untouched, but the service gets to interleave other
sessions' guard work under it — which is where the aggregate throughput
win comes from.

The deck executes *inside the service* here; a production deployment
would swap :meth:`_execute` for the remote lab driver's awaitable.  The
session journals every guarded command via
:mod:`repro.serve.journal`, byte-identical to the in-process path when
no degradation occurred.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.actions import ActionCall
from repro.core.clock import VirtualClock
from repro.core.errors import Alert, SafetyViolation
from repro.core.interceptor import BASELINE_DURATION, resolve_action
from repro.core.monitor import Rabit, RabitOptions
from repro.core.rulebase import RuleBase
from repro.serve.batcher import SweepBatcher
from repro.serve.journal import cache_disposition, journal_record
from repro.trace.canon import content_digest

__all__ = [
    "DECK_BUILDERS",
    "GuardSession",
    "build_guarded_deck",
    "default_serve_options",
]


def _build_hein(params: Dict[str, Any]) -> Any:
    from repro.lab.hein import build_hein_deck

    vials = tuple(params.get("vials", ("vial_1", "vial_2")))
    return build_hein_deck(vials)


def _build_hein_lean(params: Dict[str, Any]) -> Any:
    from repro.lab.hein import build_hein_deck

    vials = tuple(params.get("vials", ("vial_1", "vial_2")))
    return build_hein_deck(vials, world_geometry=False)


#: Decks a session can be opened on.  ``hein_lean`` is the same deck
#: without ground-truth world geometry (the throughput benchmark's
#: stand-in for a remote lab whose physics live across an I/O boundary);
#: guard verdicts are identical because RABIT only reads the config model.
DECK_BUILDERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "hein": _build_hein,
    "hein_lean": _build_hein_lean,
}


def default_serve_options() -> RabitOptions:
    """The service's monitor profile: modified RABIT + headless ES.

    ``preemptive_stop=False`` because a multi-tenant service must answer
    an unsafe command with a verdict, not tear down its own call stack —
    the unsafe command is still *skipped* (precondition and trajectory
    alerts return before execution), only the exception is traded for a
    flagged response.
    """
    return RabitOptions.modified(
        use_extended_simulator=True, bypass_gui=True, preemptive_stop=False
    )


def build_guarded_deck(
    deck_name: str,
    deck_params: Dict[str, Any],
    rulebase: Optional[RuleBase],
    options: RabitOptions,
    clock: Optional[VirtualClock] = None,
) -> Tuple[Any, Rabit]:
    """Deck + wired monitor, shared by sessions and the in-process runner."""
    try:
        builder = DECK_BUILDERS[deck_name]
    except KeyError:
        raise KeyError(
            f"unknown deck {deck_name!r}; known: {', '.join(sorted(DECK_BUILDERS))}"
        ) from None
    from repro.lab.hein import make_hein_rabit

    deck = builder(deck_params)
    rabit, _proxies, _trace = make_hein_rabit(
        deck, options=options, clock=clock, rulebase=rulebase
    )
    return deck, rabit


class GuardSession:
    """Isolated per-client guard context inside one service process."""

    def __init__(
        self,
        session_id: int,
        deck_name: str,
        deck_params: Optional[Dict[str, Any]] = None,
        rulebase: Optional[RuleBase] = None,
        batcher: Optional[SweepBatcher] = None,
        io_latency: float = 0.0,
        options: Optional[RabitOptions] = None,
        tenant: str = "default",
    ) -> None:
        self.session_id = session_id
        self.deck_name = deck_name
        self.deck_params = dict(deck_params or {})
        self.tenant = tenant
        self.io_latency = float(io_latency)
        self.batcher = batcher
        self.options = options or default_serve_options()
        self.deck, self.rabit = build_guarded_deck(
            deck_name, self.deck_params, rulebase, self.options
        )
        self.journal: List[Dict[str, Any]] = []
        #: Sessions opened on the same deck+params share a signature, so
        #: their sweep jobs land in the same batcher geometry group …
        self._deck_signature = content_digest(
            {"deck": deck_name, "params": self.deck_params}
        )
        #: … until a session's geometry revision moves (time multiplexing
        #: swapping cuboids), after which its jobs key on the session
        #: itself — correctness over batching.
        self._initial_geometry_revision = self.rabit.model.geometry_revision

    @property
    def clock(self) -> VirtualClock:
        """This session's private virtual clock."""
        return self.rabit.clock

    def geom_key(self, frame: str, exclude: Tuple[str, ...]) -> Hashable:
        revision = self.rabit.model.geometry_revision
        if revision != self._initial_geometry_revision:
            return (f"session:{self.session_id}", revision, frame, exclude)
        return (self._deck_signature, frame, exclude)

    async def run_command(
        self,
        device_name: str,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Guard and execute one command; the wire-level verdict dict."""
        kwargs = kwargs or {}
        try:
            device = self.deck.devices[device_name]
        except KeyError:
            raise KeyError(f"unknown device {device_name!r}") from None
        try:
            attr = getattr(device, method)
        except AttributeError:
            raise KeyError(f"device {device_name!r} has no method {method!r}") from None
        if not callable(attr):
            raise KeyError(f"{device_name}.{method} is not callable")

        call = resolve_action(device, method, tuple(args), kwargs)
        if call is None:
            # Unmodeled method: pass through untraced, like DeviceProxy.
            result = attr(*args, **kwargs)
            return {"ok": True, "traced": False, "result": _json_safe(result)}

        rabit = self.rabit
        rabit.clock.advance(
            device.connection.command_latency + BASELINE_DURATION.get(call.label, 1.0),
            "experiment",
        )

        degraded = False

        async def execute() -> Any:
            # The stand-in for the physical lab's round-trip: real
            # wall-clock the event loop overlaps across sessions.
            if self.io_latency > 0.0:
                await asyncio.sleep(self.io_latency)
            return attr(*args, **kwargs)

        trajectory: Optional[Callable[[ActionCall], Any]] = None
        if self.batcher is not None and rabit.trajectory_checker is not None:
            checker = rabit.trajectory_checker

            async def trajectory(call: ActionCall) -> Optional[str]:
                nonlocal degraded
                job = checker.prepare_sweep(
                    call, rabit.state, rabit.model, self.options.account_held_objects
                )
                if job is None:
                    return None
                problem, was_degraded = await self.batcher.submit(
                    job, self.geom_key(job.frame, job.exclude)
                )
                degraded = was_degraded
                return problem

        cache = rabit.rule_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        before = rabit.alert_count
        alert: Optional[Alert] = None
        try:
            await rabit.guard_async(call, execute, trajectory=trajectory)
            if rabit.alert_count > before:
                alert = rabit.last_alert()
        except SafetyViolation as violation:
            # Only reachable with preemptive_stop=True options; a service
            # session still answers with the verdict.
            alert = violation.alert

        entry = journal_record(
            seq=len(self.journal),
            device=device.name,
            method=method,
            label=call.label,
            location=call.location,
            t=rabit.clock.now,
            alert=alert,
            rule_cache=cache_disposition(rabit, hits_before, misses_before),
            degraded=degraded,
        )
        self.journal.append(entry)
        return {
            "ok": alert is None,
            "traced": True,
            "seq": entry["seq"],
            "t": entry["t"],
            "label": entry["label"],
            "alert": entry["alert"],
            "rule_cache": entry["rule_cache"],
            "degraded": degraded,
        }


def _json_safe(value: Any) -> Any:
    """Coerce a pass-through result into something the wire can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)
