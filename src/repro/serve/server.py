"""The guard service: many sessions, one process, one compiled rulebase.

:class:`GuardServer` accepts asyncio stream connections (unix socket or
TCP), speaks the newline-delimited canonical-JSON protocol, and hosts
one :class:`~repro.serve.session.GuardSession` per connection.  All
sessions share the process-wide :class:`~repro.serve.batcher.SweepBatcher`
and, per tenant, one :class:`~repro.core.rulebase.RuleBase` instance —
so the compiled dispatch tables are built once per tenant revision and
read concurrently by every session (they are immutable snapshots;
:meth:`RuleBase.compiled` memoizes on revision).

Tenant overlays are extra :meth:`RuleBase.add` calls on top of the
default rulebase; each tenant's revision keys its own compiled snapshot,
and tenants that add nothing share the base instance.  Admission is
capped at ``max_sessions`` — a full service refuses new sessions
explicitly rather than degrading everyone.

Wire operations (all request/response, one JSON object per line):

- ``{"op": "ping"}``
- ``{"op": "open", "deck": "hein", "params": {…}, "tenant": "…",
  "io_latency": 0.004}`` → ``{"ok": true, "session": N}``
- ``{"op": "command", "device": "ur3e", "method": "go_to_home_pose",
  "args": […], "kwargs": {…}}`` → the verdict dict
- ``{"op": "journal"}`` → the session's full verdict journal
- ``{"op": "stats"}`` → service-wide counters/gauges
- ``{"op": "close"}`` → close this session/connection

Errors come back as ``{"ok": false, "error": "…"}``; protocol-level
garbage closes the connection after a best-effort error frame.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.core.monitor import RabitOptions
from repro.core.rulebase import Rule, RuleBase, build_default_rulebase
from repro.obs import OBS
from repro.serve.batcher import SweepBatcher
from repro.serve.protocol import ProtocolError, encode_message, read_message
from repro.serve.session import DECK_BUILDERS, GuardSession, default_serve_options

__all__ = ["GuardServer", "SessionRejected", "TenantRulebases"]


class SessionRejected(ValueError):
    """A session open the service refused, with a machine-readable code.

    ``retryable`` distinguishes transient refusals (admission cap hit,
    worker draining before a respawn) from permanent ones; the wire
    frame carries both fields so :class:`~repro.serve.client.ServeClient`
    can raise the retry-eligible
    :class:`~repro.serve.client.ServeUnavailableError` for the former.
    """

    def __init__(self, message: str, code: str, retryable: bool) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable

_OBS_SESSIONS = OBS.registry.gauge(
    "serve_sessions_open", "Guard sessions currently open."
)
_OBS_COMMANDS = OBS.registry.counter(
    "serve_commands_total",
    "Commands guarded by the service, by outcome.",
    labels=("outcome",),
)
_OBS_DEGRADED = OBS.registry.counter(
    "serve_degraded_commands_total",
    "Commands whose trajectory verdict came from the degraded path.",
)
_OBS_REJECTED = OBS.registry.counter(
    "serve_sessions_rejected_total",
    "Session opens refused (admission cap or bad request).",
)


class TenantRulebases:
    """One shared rulebase (→ one compiled snapshot) per tenant.

    The base rulebase depends on which custom rules the deck's config
    enables, so the cache key is ``(custom_rule_ids, tenant)``.  Every
    session of a tenant receives the *same* :class:`RuleBase` object;
    adding an overlay rule at run time bumps that instance's revision
    and transparently recompiles for all of them.
    """

    def __init__(self) -> None:
        self._overlays: Dict[str, List[Rule]] = {}
        self._cache: Dict[Any, RuleBase] = {}

    def add_overlay(self, tenant: str, rule: Rule) -> None:
        """Register an extra rule for *tenant* (before or after sessions
        exist; existing shared instances pick it up immediately)."""
        self._overlays.setdefault(tenant, []).append(rule)
        for (key_ids, key_tenant), rulebase in self._cache.items():
            if key_tenant == tenant:
                rulebase.add(rule)

    def get(self, custom_rule_ids: tuple, tenant: str) -> RuleBase:
        key = (tuple(custom_rule_ids), tenant)
        rulebase = self._cache.get(key)
        if rulebase is None:
            rulebase = build_default_rulebase(custom_rule_ids)
            for rule in self._overlays.get(tenant, []):
                rulebase.add(rule)
            self._cache[key] = rulebase
        return rulebase


class GuardServer:
    """The long-running multi-session guard front-end."""

    def __init__(
        self,
        max_sessions: int = 32,
        queue_size: int = 64,
        high_watermark: int = 48,
        max_batch: int = 16,
        default_io_latency: float = 0.0,
        options: Optional[RabitOptions] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.default_io_latency = float(default_io_latency)
        self.options = options or default_serve_options()
        self.batcher = SweepBatcher(
            maxsize=queue_size, high_watermark=high_watermark, max_batch=max_batch
        )
        self.tenants = TenantRulebases()
        self.sessions: Dict[int, GuardSession] = {}
        self._next_session_id = 1
        self._server: Optional[asyncio.AbstractServer] = None
        self.stats: Dict[str, int] = {
            "sessions_opened": 0,
            "sessions_rejected": 0,
            "commands": 0,
            "alerts": 0,
            "degraded_commands": 0,
            "protocol_errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start_unix(self, path: str) -> None:
        """Listen on a unix socket at *path*."""
        self.batcher.start()
        self._server = await asyncio.start_unix_server(self._handle_connection, path)

    async def start_tcp(self, host: str, port: int) -> None:
        """Listen on TCP *host*:*port*."""
        self.batcher.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        assert self._server is not None, "call start_unix/start_tcp first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening, drop sessions, and stop the batcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.sessions.clear()
        if OBS.enabled:
            _OBS_SESSIONS.set(0.0)
        await self.batcher.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[GuardSession] = None
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    self.stats["protocol_errors"] += 1
                    await self._send(writer, {"ok": False, "error": str(exc)})
                    break
                if request is None:
                    break
                response, session, keep_open = await self._dispatch(request, session)
                await self._send(writer, response)
                if not keep_open:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if session is not None:
                self._close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        await writer.drain()

    async def _dispatch(
        self, request: dict, session: Optional[GuardSession]
    ) -> tuple:
        """(response, session, keep_connection_open) for one request."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}, session, True
        if op == "open":
            if session is not None:
                return (
                    {"ok": False, "error": "session already open on this connection"},
                    session,
                    True,
                )
            try:
                session = self._open_session(request)
            except (KeyError, ValueError, TypeError) as exc:
                self.stats["sessions_rejected"] += 1
                if OBS.enabled:
                    _OBS_REJECTED.inc(1)
                refusal: Dict[str, Any] = {"ok": False, "error": str(exc)}
                if isinstance(exc, SessionRejected):
                    refusal["code"] = exc.code
                    refusal["retryable"] = exc.retryable
                return refusal, None, True
            return (
                {"ok": True, "session": session.session_id, "deck": session.deck_name},
                session,
                True,
            )
        if op == "command":
            if session is None:
                return {"ok": False, "error": "no session open (send op=open first)"}, None, True
            try:
                response = await session.run_command(
                    str(request.get("device", "")),
                    str(request.get("method", "")),
                    tuple(request.get("args", ())),
                    dict(request.get("kwargs", {})),
                )
            except KeyError as exc:
                return {"ok": False, "error": str(exc.args[0])}, session, True
            self.stats["commands"] += 1
            if response.get("alert") is not None:
                self.stats["alerts"] += 1
            if response.get("degraded"):
                self.stats["degraded_commands"] += 1
                if OBS.enabled:
                    _OBS_DEGRADED.inc(1)
            if OBS.enabled:
                _OBS_COMMANDS.inc(
                    1, outcome="alert" if response.get("alert") else "allowed"
                )
            return response, session, True
        if op == "journal":
            if session is None:
                return {"ok": False, "error": "no session open"}, None, True
            return {"ok": True, "journal": list(session.journal)}, session, True
        if op == "stats":
            return {"ok": True, "stats": self.snapshot()}, session, True
        if op == "close":
            return {"ok": True, "op": "close"}, session, False
        return {"ok": False, "error": f"unknown op {op!r}"}, session, True

    # -- sessions ----------------------------------------------------------

    def _open_session(self, request: dict) -> GuardSession:
        if len(self.sessions) >= self.max_sessions:
            raise SessionRejected(
                f"session limit reached ({self.max_sessions}); retry later",
                code="session-limit",
                retryable=True,
            )
        deck_name = str(request.get("deck", "hein"))
        if deck_name not in DECK_BUILDERS:
            raise KeyError(
                f"unknown deck {deck_name!r}; known: {', '.join(sorted(DECK_BUILDERS))}"
            )
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise TypeError("params must be an object")
        tenant = str(request.get("tenant", "default"))
        io_latency = float(request.get("io_latency", self.default_io_latency))
        if io_latency < 0:
            raise ValueError("io_latency must be >= 0")

        # The shared rulebase needs the deck's enabled custom-rule ids;
        # build a probe model cheaply via the session itself: sessions on
        # the same deck share config, so read it off DECK_BUILDERS once.
        session_id = self._next_session_id
        self._next_session_id += 1
        session = GuardSession(
            session_id=session_id,
            deck_name=deck_name,
            deck_params=params,
            rulebase=None,  # placeholder; replaced below with the shared one
            batcher=self.batcher,
            io_latency=io_latency,
            options=self.options,
            tenant=tenant,
        )
        # Swap in the tenant-shared rulebase now that the model (and its
        # custom-rule ids) exists.  The monitor holds no derived rulebase
        # state beyond cached verdicts, which key on the rulebase
        # revision — and this session has guarded nothing yet.
        shared = self.tenants.get(
            tuple(session.rabit.model.custom_rule_ids), tenant
        )
        session.rabit.rulebase = shared
        self.sessions[session_id] = session
        self.stats["sessions_opened"] += 1
        if OBS.enabled:
            _OBS_SESSIONS.set(float(len(self.sessions)))
        return session

    def _close_session(self, session: GuardSession) -> None:
        self.sessions.pop(session.session_id, None)
        if OBS.enabled:
            _OBS_SESSIONS.set(float(len(self.sessions)))

    # -- stats -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Service-wide operational counters and gauges."""
        return {
            "sessions_open": len(self.sessions),
            "max_sessions": self.max_sessions,
            "queue_depth": self.batcher.queue_depth,
            **self.stats,
            "sweeps": dict(self.batcher.stats),
        }
