"""The thin asyncio client for the guard service.

One :class:`ServeClient` wraps one stream connection (unix socket or
TCP) and one session.  Requests and responses are the newline-delimited
canonical-JSON frames of :mod:`repro.serve.protocol`; connect attempts
are wrapped in :func:`repro.serve.retry.retrying` so a client racing the
server's startup backs off instead of failing instantly.

Typical use::

    client = await ServeClient.open_unix("/tmp/rabit.sock")
    await client.open_session(deck="hein", io_latency=0.004)
    verdict = await client.command("ur3e", "go_to_home_pose")
    journal = await client.journal()
    await client.close()
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.protocol import ProtocolError, encode_message, read_message
from repro.serve.retry import RetryPolicy, retrying

__all__ = [
    "ServeClient",
    "ServeConnectionLost",
    "ServeError",
    "ServeUnavailableError",
]


class ServeError(Exception):
    """The service answered ``ok: false`` (or hung up mid-request)."""


class ServeConnectionLost(ServeError, ConnectionError):
    """The connection died mid-session (worker drain, crash, or restart).

    Distinct from a verdict-level ``ok: false`` — the request may never
    have reached the guard, so replaying it against a fresh connection
    is safe and expected.  Subclassing :class:`ConnectionError` makes it
    retry-eligible under the default :class:`~repro.serve.retry.RetryPolicy`
    without any policy change.
    """


class ServeUnavailableError(ServeError, ConnectionError):
    """The service refused the request but said to retry (``retryable: true``).

    Carries the server's machine-readable ``code`` (e.g.
    ``worker-unavailable`` while a crashed shard worker respawns,
    ``draining`` during a graceful drain, ``session-limit`` at the
    admission cap).  Subclasses :class:`ConnectionError` so the existing
    retry policy treats it as the transient it is.
    """

    def __init__(self, message: str, code: str = "unavailable") -> None:
        super().__init__(message)
        self.code = code


#: Unix-socket connects surface a missing socket file as
#: ``FileNotFoundError`` rather than ``ConnectionRefusedError``; for a
#: client racing server startup the two are the same transient.
_CONNECT_POLICY = RetryPolicy(
    retry_on=(ConnectionError, TimeoutError, FileNotFoundError)
)


class ServeClient:
    """One connection + one session against a :class:`GuardServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.session_id: Optional[int] = None

    # -- connecting --------------------------------------------------------

    @classmethod
    async def open_unix(
        cls, path: str, retry: Optional[RetryPolicy] = None
    ) -> "ServeClient":
        """Connect to a unix-socket service, retrying transient failures."""
        policy = retry or _CONNECT_POLICY

        @retrying(policy)
        async def connect() -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            return await asyncio.open_unix_connection(path)

        reader, writer = await connect()
        return cls(reader, writer)

    @classmethod
    async def open_tcp(
        cls, host: str, port: int, retry: Optional[RetryPolicy] = None
    ) -> "ServeClient":
        """Connect to a TCP service, retrying transient failures."""
        policy = retry or replace(
            _CONNECT_POLICY, retry_on=(ConnectionError, TimeoutError)
        )

        @retrying(policy)
        async def connect() -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            return await asyncio.open_connection(host, port)

        reader, writer = await connect()
        return cls(reader, writer)

    # -- request/response --------------------------------------------------

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServeError` on ``ok: false``.

        A connection that dies mid-request (worker drain or crash)
        raises :class:`ServeConnectionLost` — retry-eligible — rather
        than a bare :class:`ConnectionResetError`; a refusal stamped
        ``retryable: true`` raises :class:`ServeUnavailableError`.
        """
        try:
            self._writer.write(encode_message(payload))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ServeConnectionLost(
                f"connection lost while sending request: {exc}"
            ) from exc
        try:
            response = await read_message(self._reader)
        except ProtocolError as exc:
            raise ServeError(f"malformed response: {exc}") from exc
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            raise ServeConnectionLost(
                f"connection lost awaiting response: {exc}"
            ) from exc
        if response is None:
            raise ServeConnectionLost("connection closed by the service")
        if not response.get("ok", False) and "error" in response:
            if response.get("retryable"):
                raise ServeUnavailableError(
                    response["error"], code=str(response.get("code", "unavailable"))
                )
            raise ServeError(response["error"])
        return response

    # -- operations --------------------------------------------------------

    async def ping(self) -> None:
        """Liveness round-trip."""
        await self.request({"op": "ping"})

    async def open_session(
        self,
        deck: str = "hein",
        params: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        io_latency: Optional[float] = None,
        key: Optional[str] = None,
        worker: Optional[int] = None,
    ) -> int:
        """Open this connection's session; returns the session id.

        Against a sharded service, *key* routes the session
        deterministically (``shard_for(tenant, key) % N``) and *worker*
        pins it to an explicit worker index; a single-process service
        ignores both.
        """
        payload: Dict[str, Any] = {"op": "open", "deck": deck, "tenant": tenant}
        if params:
            payload["params"] = params
        if io_latency is not None:
            payload["io_latency"] = io_latency
        if key is not None:
            payload["key"] = key
        if worker is not None:
            payload["worker"] = worker
        response = await self.request(payload)
        self.session_id = int(response["session"])
        return self.session_id

    async def command(
        self,
        device: str,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> Dict[str, Any]:
        """Guard one device command; returns the verdict dict.

        Unlike the in-process proxy, an alert does not raise — the
        verdict comes back with ``ok: false``-style fields (``alert``,
        ``degraded``) for the caller to inspect.
        """
        return await self.request(
            {
                "op": "command",
                "device": device,
                "method": method,
                "args": list(args),
                "kwargs": kwargs,
            }
        )

    async def journal(self) -> List[Dict[str, Any]]:
        """The session's verdict journal so far."""
        response = await self.request({"op": "journal"})
        return response["journal"]

    async def stats(self) -> Dict[str, Any]:
        """Service-wide counters/gauges."""
        response = await self.request({"op": "stats"})
        return response["stats"]

    async def close(self) -> None:
        """Close the session and the connection."""
        try:
            await self.request({"op": "close"})
        except (ServeError, ConnectionError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
