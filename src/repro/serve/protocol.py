"""The wire format: newline-delimited canonical JSON.

Every message — request or response — is one line: the
:func:`repro.trace.canon.canonical_json` rendering of a JSON object,
terminated by ``\\n``.  Canonical form (sorted keys, compact separators,
ASCII) means a message's bytes are a pure function of its content, so
the differential suite can compare whole conversations byte-for-byte
and a response can double as its own equality witness.

The framing is deliberately the simplest thing that works over
:mod:`asyncio` streams; per-message size is bounded by
:data:`MAX_MESSAGE_BYTES` so one malformed client cannot balloon server
memory.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.trace.canon import canonical_bytes

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "read_message",
]

#: Per-message ceiling (bytes, including the newline).  Generous for any
#: legitimate command or journal chunk; a hard stop for garbage.
MAX_MESSAGE_BYTES = 1 << 20


class ProtocolError(Exception):
    """The peer sent something that is not a protocol message."""


def encode_message(payload: Any) -> bytes:
    """One wire frame: canonical JSON + newline."""
    data = canonical_bytes(payload) + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte frame limit"
        )
    return data


async def read_message(reader: Any) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF, :class:`ProtocolError` on junk.

    *reader* is an :class:`asyncio.StreamReader` (or anything with an
    async ``readline``).  A line that is not a JSON object, is not valid
    JSON, or overruns the frame limit raises — the connection is then
    unusable and should be closed.
    """
    try:
        line = await reader.readline()
    except (ValueError, LookupError) as exc:
        # StreamReader raises ValueError (LimitOverrunError under the
        # hood) when a line exceeds the stream's limit.
        raise ProtocolError(f"oversized or unframed message: {exc}") from exc
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-message")
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte frame limit"
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"expected a JSON object frame, got {type(payload).__name__}"
        )
    return payload
