"""Cross-session collision-sweep batching with backpressure.

The dominant per-command cost of a guarded robot move is the trajectory
sweep.  Its kernel — :meth:`BatchCollisionEngine.first_containing` — is
row-independent, so probe arrays from *different sessions* that share
deck geometry can be stacked into one containment pass and pay the
kernel's fixed costs once per batch instead of once per command.

:class:`SweepBatcher` is the funnel: sessions submit prepared
:class:`~repro.simulator.extended.SweepJob` s into one bounded
:class:`asyncio.Queue`; a drainer task coalesces whatever has
accumulated (up to ``max_batch``), groups it by geometry key, runs one
stacked pass per (group, probe family), and resolves each job's future
with the verdict :func:`~repro.simulator.extended.finish_sweep` derives.
Because every per-job result is bit-identical to evaluating that job
alone, batching is invisible to verdicts — the differential suite pins
this.

Two overload behaviours, both explicit, never silent:

- **Backpressure** — the queue is bounded; when it is full, ``submit``
  blocks the producing session (``await queue.put``), throttling
  admission at the source and counting the event.
- **Degradation** — above ``high_watermark`` the sweep falls back to an
  *inline tool-point-only* probe (arm points against obstacles, plus
  walls/bounds; gripper-tip and held-vial probes skipped).  The verdict
  comes back flagged ``degraded`` so the caller can surface it — a
  degraded clearance is weaker evidence than a full sweep and must never
  masquerade as one.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable, List, Optional, Tuple

from repro.geometry.batch import BatchCollisionEngine
from repro.obs import OBS
from repro.simulator.extended import SweepJob, build_sweep_engines, finish_sweep

__all__ = ["SweepBatcher"]

_OBS_SWEEPS = OBS.registry.counter(
    "serve_sweeps_total",
    "Sweeps routed through the cross-session batcher, by mode.",
    labels=("mode",),
)
_OBS_BATCHES = OBS.registry.counter(
    "serve_batches_total", "Cross-session sweep batches executed."
)
_OBS_BATCH_SIZE = OBS.registry.histogram(
    "serve_batch_size",
    "Jobs per cross-session sweep batch.",
    buckets=(1, 2, 4, 8, 16, 32),
)
_OBS_QUEUE_DEPTH = OBS.registry.gauge(
    "serve_sweep_queue_depth", "Sweep jobs waiting in the batcher queue."
)
_OBS_THROTTLED = OBS.registry.counter(
    "serve_admission_throttled_total",
    "Submissions that blocked on a full sweep queue (backpressure).",
)


class SweepBatcher:
    """One bounded sweep queue + drainer shared by every session."""

    def __init__(
        self,
        maxsize: int = 64,
        high_watermark: int = 48,
        max_batch: int = 16,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if not 0 < high_watermark <= maxsize:
            raise ValueError("high_watermark must be in [1, maxsize]")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.maxsize = maxsize
        self.high_watermark = high_watermark
        self.max_batch = max_batch
        self._queue: asyncio.Queue = asyncio.Queue(maxsize)
        #: Engine pairs per geometry key.  Keys embed the deck signature
        #: (or a per-session unique token once a session's geometry
        #: revision moves), the frame, and the exclusion set — everything
        #: engine construction reads — so an entry can never serve stale
        #: geometry.
        self._engines: Dict[
            Hashable, Tuple[BatchCollisionEngine, BatchCollisionEngine]
        ] = {}
        self._drainer: Optional[asyncio.Task] = None
        #: Operational counters.  Plain ints mutated only between awaits,
        #: authoritative regardless of whether observability is enabled.
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "batched": 0,
            "batches": 0,
            "max_batch": 0,
            "degraded": 0,
            "throttled": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the drainer task on the running event loop."""
        if self._drainer is None or self._drainer.done():
            self._drainer = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="sweep-batcher-drain"
            )

    async def stop(self) -> None:
        """Cancel the drainer and fail any jobs still queued."""
        if self._drainer is not None:
            self._drainer.cancel()
            try:
                await self._drainer
            except asyncio.CancelledError:
                pass
            self._drainer = None
        while not self._queue.empty():
            _job, _key, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(RuntimeError("sweep batcher stopped"))

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (gauge snapshot)."""
        return self._queue.qsize()

    # -- submission --------------------------------------------------------

    async def submit(
        self, job: SweepJob, geom_key: Hashable
    ) -> Tuple[Optional[str], bool]:
        """Sweep *job*, batched when possible; ``(problem, degraded)``.

        *geom_key* must be equal for two jobs only when their deck
        geometry (frame, exclusions, cuboid contents) is identical —
        sessions compute it from the deck signature and their geometry
        revision.  Returns the verdict message (or ``None`` for clear)
        plus whether the degraded tool-point-only path produced it.
        """
        self.stats["submitted"] += 1
        if self._queue.qsize() >= self.high_watermark:
            # Over the watermark: shed load by answering inline with the
            # cheaper tool-point-only probe, explicitly flagged.
            self.stats["degraded"] += 1
            if OBS.enabled:
                _OBS_SWEEPS.inc(1, mode="degraded")
            return self._degraded_probe(job, geom_key), True

        future = asyncio.get_running_loop().create_future()
        item = (job, geom_key, future)
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            # Backpressure: block this session's admission until the
            # drainer frees a slot.  The command stalls at its source
            # instead of the service buffering unboundedly.
            self.stats["throttled"] += 1
            if OBS.enabled:
                _OBS_THROTTLED.inc(1)
            await self._queue.put(item)
        if OBS.enabled:
            _OBS_QUEUE_DEPTH.set(float(self._queue.qsize()))
            _OBS_SWEEPS.inc(1, mode="batched")
        return await future, False

    # -- the drainer -------------------------------------------------------

    async def _drain_loop(self) -> None:
        while True:
            first = await self._queue.get()
            # One cooperative yield lets sessions that were about to
            # submit land in this batch instead of the next.
            await asyncio.sleep(0)
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if OBS.enabled:
                _OBS_QUEUE_DEPTH.set(float(self._queue.qsize()))
            self._run_batch(batch)

    def _run_batch(self, batch: List[tuple]) -> None:
        self.stats["batches"] += 1
        self.stats["batched"] += len(batch)
        self.stats["max_batch"] = max(self.stats["max_batch"], len(batch))
        if OBS.enabled:
            _OBS_BATCHES.inc(1)
            _OBS_BATCH_SIZE.observe(float(len(batch)))

        groups: Dict[Hashable, List[tuple]] = {}
        for item in batch:
            groups.setdefault(item[1], []).append(item)
        for geom_key, items in groups.items():
            try:
                self._run_group(geom_key, items)
            except Exception as exc:  # pragma: no cover - defensive
                for _job, _key, future in items:
                    if not future.done():
                        future.set_exception(exc)

    def _run_group(self, geom_key: Hashable, items: List[tuple]) -> None:
        """Evaluate one geometry-homogeneous group in stacked passes."""
        obst_engine, full_engine = self._engines_for(geom_key, items[0][0])

        jobs = [item[0] for item in items]
        probe_sets = [job.probe_points() for job in jobs]
        arm_hits = obst_engine.first_containing_many([p[0] for p in probe_sets])
        # Gripper tips for every job, then vial tips for the jobs that
        # hold something — one stacked pass against the full engine.
        full_arrays = [p[1] for p in probe_sets]
        vial_jobs = [i for i, p in enumerate(probe_sets) if p[2] is not None]
        full_arrays.extend(probe_sets[i][2] for i in vial_jobs)
        full_hits = full_engine.first_containing_many(full_arrays)
        tip_hits = full_hits[: len(jobs)]
        vial_hits = dict(zip(vial_jobs, full_hits[len(jobs) :]))

        for i, (job, _key, future) in enumerate(items):
            problem = finish_sweep(
                job.call,
                job.samples,
                job.model.walls.get(job.frame, []),
                job.model.workspace_bounds.get(job.frame),
                job.held,
                arm_hits[i],
                tip_hits[i],
                vial_hits.get(i),
                obst_engine.names,
                full_engine.names,
            )
            if not future.done():
                future.set_result(problem)

    # -- degraded path -----------------------------------------------------

    def _degraded_probe(self, job: SweepJob, geom_key: Hashable) -> Optional[str]:
        """Tool-point-only sweep: arm points, walls, bounds — no tips.

        Strictly weaker than the full sweep (it can miss gripper-tip and
        held-vial strikes), which is exactly why its verdicts are always
        flagged degraded by :meth:`submit`."""
        obst_engine, full_engine = self._engines_for(geom_key, job)
        arm_hit = obst_engine.first_containing(job.samples)
        return finish_sweep(
            job.call,
            job.samples,
            job.model.walls.get(job.frame, []),
            job.model.workspace_bounds.get(job.frame),
            job.held,
            arm_hit,
            None,
            None,
            obst_engine.names,
            full_engine.names,
        )

    # -- engines -----------------------------------------------------------

    def _engines_for(
        self, geom_key: Hashable, job: SweepJob
    ) -> Tuple[BatchCollisionEngine, BatchCollisionEngine]:
        engines = self._engines.get(geom_key)
        if engines is None:
            if len(self._engines) >= 256:
                # Safety valve: geometry keys churn only when sessions
                # mutate geometry; cap the cache rather than grow forever.
                self._engines.clear()
            engines = build_sweep_engines(job.model, job.frame, list(job.exclude))
            self._engines[geom_key] = engines
        return engines
