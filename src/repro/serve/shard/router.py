"""The shard front-end: route ``open``, then pipe bytes.

The router owns the public endpoint (unix socket or TCP).  It parses a
connection's frames only until it knows where the session belongs —
answering ``ping`` and merged ``stats`` itself — and on ``open`` it
resolves the worker (pin > deterministic key hash > round-robin),
forwards the open frame, and collapses into a dumb byte pipe.  After the
handoff the router adds no parsing, no re-framing, and no reordering,
which is why a sharded session's journal is byte-identical to the
single-process service: the worker *is* the single-process service and
the router never touches its frames.

When the target worker is down (crashed, mid-respawn, or draining at
connect time) the router answers the ``open`` itself with a
``retryable: true`` refusal (code ``worker-unavailable``) instead of
letting the connect error leak — the client's retry policy already knows
what to do with it, and the session key will land on the same worker
once the supervisor has respawned it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.serve.protocol import ProtocolError, encode_message, read_message
from repro.serve.shard.routing import shard_for

__all__ = ["ShardRouter"]

_PIPE_CHUNK = 1 << 16


class ShardRouter:
    """Public listener that routes sessions onto per-worker sockets."""

    def __init__(self, supervisor: Any) -> None:
        #: The owning :class:`~repro.serve.shard.supervisor.ShardService`;
        #: the router asks it for worker socket paths, liveness, and the
        #: merged stats view.
        self.supervisor = supervisor
        self._server: Optional[asyncio.AbstractServer] = None
        self._round_robin = 0
        self.stats: Dict[str, int] = {
            "connections": 0,
            "sessions_routed": 0,
            "rejected_unavailable": 0,
            "protocol_errors": 0,
        }
        self.routed_per_worker: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start_unix(self, path: str) -> None:
        self._server = await asyncio.start_unix_server(self._handle, path)

    async def start_tcp(self, host: str, port: int) -> int:
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- routing -----------------------------------------------------------

    def resolve_worker(self, request: dict) -> int:
        """The worker index an ``open`` request routes to."""
        workers = self.supervisor.worker_count
        if "worker" in request:
            index = int(request["worker"])
            if not 0 <= index < workers:
                raise ValueError(
                    f"worker {index} out of range (service has {workers})"
                )
            return index
        if "key" in request:
            return shard_for(
                str(request.get("tenant", "default")), str(request["key"]), workers
            )
        index = self._round_robin % workers
        self._round_robin += 1
        return index

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["connections"] += 1
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    self.stats["protocol_errors"] += 1
                    await self._send(writer, {"ok": False, "error": str(exc)})
                    break
                if request is None:
                    break
                op = request.get("op")
                if op == "ping":
                    await self._send(writer, {"ok": True, "op": "ping"})
                elif op == "stats":
                    stats = await self.supervisor.merged_stats()
                    await self._send(writer, {"ok": True, "stats": stats})
                elif op == "close":
                    await self._send(writer, {"ok": True, "op": "close"})
                    break
                elif op == "open":
                    handed_off = await self._route_session(request, reader, writer)
                    if handed_off:
                        return  # the pipe owns (and closed) both ends
                else:
                    await self._send(
                        writer,
                        {"ok": False, "error": f"unknown op {op!r} (no session open)"},
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        await writer.drain()

    async def _route_session(
        self,
        request: dict,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> bool:
        """Hand the connection to its worker; True once piping has run."""
        try:
            index = self.resolve_worker(request)
        except (ValueError, TypeError) as exc:
            await self._send(client_writer, {"ok": False, "error": str(exc)})
            return False
        try:
            upstream = await self.supervisor.connect_worker(index)
        except (ConnectionError, OSError) as exc:
            self.stats["rejected_unavailable"] += 1
            await self._send(
                client_writer,
                {
                    "ok": False,
                    "error": (
                        f"worker {index} unavailable ({exc.__class__.__name__}); "
                        "retry shortly"
                    ),
                    "code": "worker-unavailable",
                    "retryable": True,
                },
            )
            return False
        worker_reader, worker_writer = upstream
        self.stats["sessions_routed"] += 1
        self.routed_per_worker[index] = self.routed_per_worker.get(index, 0) + 1
        worker_writer.write(encode_message(request))
        try:
            await worker_writer.drain()
        except (ConnectionError, OSError):
            pass
        await asyncio.gather(
            self._pipe(client_reader, worker_writer),
            self._pipe(worker_reader, client_writer),
        )
        return True

    async def _pipe(
        self, src: asyncio.StreamReader, dst: asyncio.StreamWriter
    ) -> None:
        """Copy bytes until EOF/error, then close *dst* to unblock its peer."""
        try:
            while True:
                chunk = await src.read(_PIPE_CHUNK)
                if not chunk:
                    break
                dst.write(chunk)
                await dst.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            dst.close()
            try:
                await dst.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
