"""Deterministic cross-worker aggregation of stats and obs metrics.

Each shard worker owns its own :meth:`GuardServer.snapshot` counters and
(optionally) its own :mod:`repro.obs` registry; the supervisor collects
them over the control channel and merges them **in worker-index order**
into one canonical view.  Determinism is the contract: given equal
per-worker payloads, the merged view — and the Prometheus text rendered
from it — is byte-identical regardless of collection timing, respawn
history, or scrape interleaving.

Merge rules:

- numeric leaves are **summed** across workers, recursively, except
  ``max_batch`` (a high-water mark, so the merge takes the **max**);
- ``per_worker`` keeps every worker's own snapshot at its index (``None``
  for a worker that was down at collection time), so the canonical view
  never hides skew behind the totals;
- obs registry snapshots merge series-by-series: counters and gauges sum
  per labelled series, histograms sum their bucket/sum/count vectors
  (buckets must agree — every worker runs the same code).

The merged obs view is materialised into a *fresh*
:class:`~repro.obs.metrics.MetricsRegistry`, so the existing Prometheus
text exporter (:meth:`MetricsRegistry.to_prometheus`) renders the
service-wide scrape without a second exporter implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "merge_numeric",
    "merged_view",
    "merge_obs_snapshots",
    "stats_to_gauges",
]

#: Keys whose merge is a max, not a sum — per-worker high-water marks.
_MAX_KEYS = frozenset({"max_batch"})


def merge_numeric(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum (or max, for high-water marks) numeric leaves across dicts.

    Nested dicts merge recursively; non-numeric leaves keep the first
    worker's value (they are configuration echoes like ``max_sessions``
    that agree across workers by construction — and ``max_sessions``
    itself is numeric and sums into total capacity).
    """
    merged: Dict[str, Any] = {}
    for payload in payloads:
        for key, value in payload.items():
            if isinstance(value, dict):
                merged[key] = merge_numeric(
                    [merged[key], value] if isinstance(merged.get(key), dict)
                    else [value]
                )
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            elif key in _MAX_KEYS:
                merged[key] = max(merged.get(key, value), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def merged_view(worker_stats: List[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """The canonical service-wide stats view, in worker-index order."""
    alive = [stats for stats in worker_stats if stats is not None]
    return {
        "workers": len(worker_stats),
        "workers_alive": len(alive),
        "per_worker": list(worker_stats),
        "totals": merge_numeric(alive),
    }


def merge_obs_snapshots(
    snapshots: List[Dict[str, Any]], registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Merge per-worker obs registry snapshots into one fresh registry.

    *snapshots* are :meth:`MetricsRegistry.snapshot` dicts in
    worker-index order.  Series sums are order-independent, but the
    registry's metric iteration (and therefore the Prometheus text) is
    name-sorted, so the rendering is canonical either way.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for snapshot in snapshots:
        for name, data in snapshot.get("counters", {}).items():
            for series in data.get("values", []):
                counter = registry.counter(
                    name, data.get("help", ""), tuple(series["labels"])
                )
                counter.inc(series["value"], **series["labels"])
        for name, data in snapshot.get("gauges", {}).items():
            for series in data.get("values", []):
                gauge = registry.gauge(
                    name, data.get("help", ""), tuple(series["labels"])
                )
                gauge.inc(series["value"], **series["labels"])
        for name, data in snapshot.get("histograms", {}).items():
            buckets = tuple(data.get("buckets", ()))
            for series in data.get("values", []):
                histogram = registry.histogram(
                    name, data.get("help", ""), tuple(series["labels"]),
                    buckets=buckets,
                )
                if tuple(histogram.buckets) != buckets:
                    raise ValueError(
                        f"histogram {name!r}: bucket mismatch across workers"
                    )
                slot = histogram._slot(histogram._key(series["labels"]))
                counts = series["counts"]  # finite buckets + the +Inf bucket
                for i, count in enumerate(counts):
                    slot[i] += count
                slot[-2] += series["sum"]
                slot[-1] += series["count"]
    return registry


def stats_to_gauges(
    registry: MetricsRegistry,
    values: Dict[str, Any],
    prefix: str = "shard_",
    help_text: str = "Merged cross-worker service counter.",
) -> None:
    """Flatten a merged stats dict into ``<prefix><path>`` gauges.

    Nested dicts flatten with ``_`` separators (``sweeps.batched`` →
    ``shard_sweeps_batched``); non-numeric leaves are skipped.  Gauges
    (not counters) because a respawned worker restarts its counts — the
    merged series may legitimately move down.
    """
    for key, value in values.items():
        if isinstance(value, dict):
            stats_to_gauges(registry, value, f"{prefix}{key}_", help_text)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            registry.gauge(f"{prefix}{key}", help_text).set(float(value))
