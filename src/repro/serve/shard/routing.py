"""Deterministic session→worker routing.

A sharded service must send a reconnecting session back to the *same*
worker every time — per-worker state (journals, tenant rulebase
overlays, warm sweep engines) is only coherent shard-locally.  Python's
builtin ``hash`` is salted per process, so the routing hash is a
truncated SHA-256 over the canonical JSON of ``[tenant, key]``: equal
``(tenant, key)`` pairs map to equal worker indices in every process, on
every run, forever.

Routing precedence (resolved by the router per ``open`` request):

1. ``worker: i`` — explicit pinning override; the client names the
   worker index outright (benchmarks and drain tests use this).
2. ``key: "…"`` — deterministic: ``shard_for(tenant, key, N)``.
3. neither — round-robin over the workers, because hashing every keyless
   default-tenant session to one shard would defeat the point of
   sharding.  Round-robin placement is *not* stable across reconnects;
   clients that care pass a key.

Worker sockets live next to the public socket (or in the supervisor's
scratch directory for TCP front-ends) as ``<base>.w<index>``.
"""

from __future__ import annotations

import hashlib

from repro.trace.canon import canonical_bytes

__all__ = ["shard_for", "worker_socket_path"]


def shard_for(tenant: str, key: str, workers: int) -> int:
    """The worker index for ``(tenant, key)`` — pure, process-independent."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    digest = hashlib.sha256(canonical_bytes([tenant, key])).digest()
    return int.from_bytes(digest[:8], "big") % workers


def worker_socket_path(base: str, index: int) -> str:
    """Where worker *index* of a service rooted at *base* listens."""
    if index < 0:
        raise ValueError("worker index must be >= 0")
    return f"{base}.w{index}"
