"""The shard supervisor: fork workers, watch them, merge their stats.

:class:`ShardService` is the parent process of the sharded guard
service.  It forks ``workers`` child processes (fork-only, mirroring
:mod:`repro.parallel` — children inherit warm module state instead of
re-importing cold), each running a full
:class:`~repro.serve.shard.worker.ShardWorkerServer` event loop on its
own unix socket; fronts them with a
:class:`~repro.serve.shard.router.ShardRouter`; and runs two service
loops of its own:

- a **watchdog** that polls child liveness and — unless respawn is
  disabled — forks a replacement at the same index when a worker dies.
  While the slot is empty the router refuses that shard's sessions with
  the retryable ``worker-unavailable`` code; once the replacement binds
  its socket, the same routing key lands on the fresh worker.
- an optional **metrics endpoint** (``/metrics`` + ``/healthz``, see
  :mod:`repro.serve.shard.http`) publishing the merged cross-worker
  view for scraping.

Stat collection is the control channel: one short-lived connection per
worker, in worker-index order, speaking the ``control_stats`` op; the
responses merge deterministically via :mod:`repro.serve.shard.merge`.
Graceful teardown drains through ``control_shutdown`` before falling
back to signals, so tests and operators both get prompt, clean exits.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.monitor import RabitOptions
from repro.parallel.engine import fork_pool_available
from repro.serve.protocol import encode_message, read_message
from repro.serve.shard.http import MetricsEndpoint
from repro.serve.shard.merge import merged_view
from repro.serve.shard.router import ShardRouter
from repro.serve.shard.routing import worker_socket_path
from repro.serve.shard.worker import worker_entry

__all__ = ["ShardConfig", "ShardService", "ShardUnsupportedError"]


class ShardUnsupportedError(RuntimeError):
    """This platform cannot host a sharded service (no ``fork``)."""


@dataclass
class ShardConfig:
    """Everything a sharded service needs to come up."""

    workers: int = 2
    #: Public unix socket the router binds ('' → TCP host/port instead).
    socket: str = ""
    host: str = "127.0.0.1"
    port: int = 0
    #: Per-worker GuardServer knobs (each worker gets the full budget).
    max_sessions: int = 32
    queue_size: int = 64
    high_watermark: int = 48
    max_batch: int = 16
    default_io_latency: float = 0.0
    #: Metrics endpoint port (``None`` → no HTTP endpoint; 0 → ephemeral,
    #: rewritten to the bound port by :meth:`ShardService.start`).
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    #: Enable the obs layer inside each worker so ``/metrics`` carries
    #: the full serve_* counter families, not just the always-on stats.
    enable_obs: bool = False
    #: Fork a replacement when a worker dies (the watchdog's other half).
    respawn: bool = True
    watchdog_interval: float = 0.05
    options: Optional[RabitOptions] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def server_kwargs(self) -> Dict[str, Any]:
        return {
            "max_sessions": self.max_sessions,
            "queue_size": self.queue_size,
            "high_watermark": self.high_watermark,
            "max_batch": self.max_batch,
            "default_io_latency": self.default_io_latency,
            "options": self.options,
        }


@dataclass
class WorkerHandle:
    """One shard slot: its process, socket, and respawn history."""

    index: int
    socket_path: str
    process: Optional[multiprocessing.process.BaseProcess] = None
    respawns: int = 0
    draining: bool = False

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardService:
    """Supervisor + router + workers; the sharded service's front door."""

    def __init__(self, config: ShardConfig) -> None:
        if not fork_pool_available():
            raise ShardUnsupportedError(
                "sharded serving requires the 'fork' start method "
                "(unavailable on this platform); run without --shard-workers"
            )
        self.config = config
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        base = config.socket
        if not base:
            self._scratch = tempfile.TemporaryDirectory(prefix="rabit-shard-")
            base = os.path.join(self._scratch.name, "guard.sock")
        self._socket_base = base
        self.workers: List[WorkerHandle] = [
            WorkerHandle(index=i, socket_path=worker_socket_path(base, i))
            for i in range(config.workers)
        ]
        self.router = ShardRouter(self)
        self.metrics: Optional[MetricsEndpoint] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self.stats: Dict[str, int] = {"workers_respawned": 0}
        self._mp = multiprocessing.get_context("fork")

    # -- properties the router reads ---------------------------------------

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    def alive_flags(self) -> List[bool]:
        return [handle.alive() for handle in self.workers]

    async def connect_worker(
        self, index: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """One fresh stream to worker *index* (raises OSError when down)."""
        return await asyncio.open_unix_connection(self.workers[index].socket_path)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Fork the workers, wait for their sockets, start the router."""
        for handle in self.workers:
            self._spawn(handle)
        await asyncio.gather(
            *[self._wait_ready(handle) for handle in self.workers]
        )
        if self.config.socket:
            await self.router.start_unix(self.config.socket)
        else:
            self.config.port = await self.router.start_tcp(
                self.config.host, self.config.port
            )
        if self.config.metrics_port is not None:
            self.metrics = MetricsEndpoint(self)
            self.config.metrics_port = await self.metrics.start(
                self.config.metrics_host, self.config.metrics_port
            )
        self._watchdog_task = asyncio.get_running_loop().create_task(
            self._watchdog(), name="shard-watchdog"
        )

    async def stop(self) -> None:
        """Stop routing, shut workers down, reap the processes."""
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass
            self._watchdog_task = None
        await self.router.stop()
        if self.metrics is not None:
            await self.metrics.stop()
            self.metrics = None
        for handle in self.workers:
            if handle.alive():
                try:
                    await self._control(handle.index, {"op": "control_shutdown"})
                except (ConnectionError, OSError):
                    pass
        for handle in self.workers:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
            handle.process = None
        for handle in self.workers:
            try:
                os.unlink(handle.socket_path)
            except OSError:
                pass
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None

    # -- worker management -------------------------------------------------

    def _spawn(self, handle: WorkerHandle) -> None:
        handle.draining = False
        process = self._mp.Process(
            target=worker_entry,
            args=(
                handle.index,
                handle.socket_path,
                self.config.enable_obs,
                self.config.server_kwargs(),
            ),
            daemon=True,
            name=f"rabit-shard-w{handle.index}",
        )
        process.start()
        handle.process = process

    async def _wait_ready(self, handle: WorkerHandle, budget: float = 5.0) -> None:
        """Poll until the worker's socket accepts (it binds before serving)."""
        deadline = asyncio.get_running_loop().time() + budget
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    handle.socket_path
                )
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return
            except (ConnectionError, OSError):
                if asyncio.get_running_loop().time() >= deadline:
                    raise RuntimeError(
                        f"worker {handle.index} did not come up within {budget}s"
                    ) from None
                await asyncio.sleep(0.01)

    async def _watchdog(self) -> None:
        while True:
            await asyncio.sleep(self.config.watchdog_interval)
            for handle in self.workers:
                if handle.process is not None and not handle.process.is_alive():
                    handle.process.join(timeout=0)
                    handle.process = None
                    try:
                        os.unlink(handle.socket_path)
                    except OSError:
                        pass
                    if self.config.respawn and not handle.draining:
                        handle.respawns += 1
                        self.stats["workers_respawned"] += 1
                        self._spawn(handle)

    async def restart_worker(self, index: int) -> None:
        """Drain-and-respawn worker *index* gracefully.

        The worker refuses new sessions immediately (retryable
        ``draining`` code), exits once its open sessions close, and the
        supervisor forks a fresh replacement at the same index.
        """
        handle = self.workers[index]
        handle.draining = True
        try:
            await self._control(index, {"op": "control_drain"})
        except (ConnectionError, OSError):
            pass  # already dead: the respawn below still runs
        process = handle.process
        if process is not None:
            while process.is_alive():
                await asyncio.sleep(self.config.watchdog_interval)
            process.join(timeout=0)
            handle.process = None
        handle.respawns += 1
        self.stats["workers_respawned"] += 1
        self._spawn(handle)
        await self._wait_ready(handle)

    # -- the control channel -----------------------------------------------

    async def _control(self, index: int, request: dict) -> dict:
        reader, writer = await self.connect_worker(index)
        try:
            writer.write(encode_message(request))
            await writer.drain()
            response = await read_message(reader)
            if response is None:
                raise ConnectionError(
                    f"worker {index} closed the control connection"
                )
            return response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def collect_worker_payloads(self) -> List[Optional[dict]]:
        """``control_stats`` from every worker, in index order; ``None``
        for a worker that is down mid-respawn."""
        payloads: List[Optional[dict]] = []
        for handle in self.workers:
            try:
                payloads.append(
                    await self._control(handle.index, {"op": "control_stats"})
                )
            except (ConnectionError, OSError):
                payloads.append(None)
        return payloads

    async def merged_stats(self) -> dict:
        """The canonical cross-worker stats view (+ router/supervisor)."""
        payloads = await self.collect_worker_payloads()
        view = merged_view(
            [p["stats"] if p is not None else None for p in payloads]
        )
        view["router"] = {
            **self.router.stats,
            "routed_per_worker": [
                self.router.routed_per_worker.get(i, 0)
                for i in range(self.worker_count)
            ],
        }
        view["supervisor"] = {
            **self.stats,
            "respawns_per_worker": [h.respawns for h in self.workers],
        }
        return view
