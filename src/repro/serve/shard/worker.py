"""One shard worker: a full :class:`GuardServer` in a forked process.

Each worker is the entire single-process guard service — its own asyncio
event loop, its own :class:`~repro.serve.batcher.SweepBatcher`, its own
tenant rulebase cache — listening on a private unix socket the router
proxies sessions into.  Because a worker *is* the single-process
service, every per-session guarantee (journal byte-identity to the
in-process path, flagged degradation, backpressure) holds per shard by
construction; sharding adds capacity without touching verdict semantics.

On top of the session protocol, a worker answers three **control ops**
(the supervisor's control channel, spoken over the same socket by
connections that never open a session):

- ``control_stats`` → ``{"index", "draining", "stats", "obs"}`` — the
  worker's :meth:`snapshot` plus its obs registry snapshot (``null``
  when observability is off); the supervisor merges these in
  worker-index order.
- ``control_drain`` → stop admitting sessions (opens are refused with
  the retryable ``draining`` code) and exit once the last session
  closes — the graceful half of drain-and-respawn.
- ``control_shutdown`` → exit now, dropping open sessions (their
  clients see a retry-eligible connection loss).

The fork-only discipline mirrors :mod:`repro.parallel`: workers inherit
warm module state (compiled rulebases, geometry kernels) from the
supervisor instead of re-importing cold, and platforms without ``fork``
don't get a sharded service at all rather than a subtly different one.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, Optional, Tuple

from repro.obs import OBS
from repro.serve.server import GuardServer, SessionRejected
from repro.serve.session import GuardSession

__all__ = ["ShardWorkerServer", "worker_entry"]


class ShardWorkerServer(GuardServer):
    """A :class:`GuardServer` that also speaks the shard control ops."""

    def __init__(self, index: int, enable_obs: bool = False, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.index = index
        self.enable_obs = enable_obs
        self.draining = False
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def wait_shutdown(self) -> None:
        """Block until ``control_shutdown`` or a completed drain."""
        await self._shutdown.wait()

    def begin_drain(self) -> None:
        """Refuse new sessions; shut down once the open ones close."""
        self.draining = True
        if not self.sessions:
            self._shutdown.set()

    # -- control + session dispatch ----------------------------------------

    async def _dispatch(
        self, request: dict, session: Optional[GuardSession]
    ) -> Tuple[dict, Optional[GuardSession], bool]:
        op = request.get("op")
        if op == "control_stats":
            payload: Dict[str, Any] = {
                "ok": True,
                "index": self.index,
                "pid": os.getpid(),
                "draining": self.draining,
                "stats": self.snapshot(),
                "obs": OBS.registry.snapshot() if OBS.enabled else None,
            }
            return payload, session, True
        if op == "control_drain":
            self.begin_drain()
            return (
                {"ok": True, "draining": True, "sessions_open": len(self.sessions)},
                session,
                True,
            )
        if op == "control_shutdown":
            self._shutdown.set()
            return {"ok": True, "op": "control_shutdown"}, session, False
        return await super()._dispatch(request, session)

    def _open_session(self, request: dict) -> GuardSession:
        if self.draining:
            raise SessionRejected(
                f"worker {self.index} draining; retry later",
                code="draining",
                retryable=True,
            )
        return super()._open_session(request)

    def _close_session(self, session: GuardSession) -> None:
        super()._close_session(session)
        if self.draining and not self.sessions:
            self._shutdown.set()


def _reset_asyncio_after_fork() -> None:
    """Clear inherited event-loop state so the child can run its own loop.

    A respawn forks from *inside* the supervisor's running loop; the
    child's surviving thread still carries the thread-local
    "a loop is running" flag, which would make ``asyncio.run`` refuse to
    start.  The child never touches the inherited loop — it only needs
    the flag gone.
    """
    try:
        asyncio.events._set_running_loop(None)  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - future CPython drift
        pass
    asyncio.set_event_loop(None)


async def _worker_async(
    index: int,
    socket_path: str,
    enable_obs: bool,
    server_kwargs: Dict[str, Any],
) -> None:
    server = ShardWorkerServer(index=index, enable_obs=enable_obs, **server_kwargs)
    await server.start_unix(socket_path)
    try:
        await server.wait_shutdown()
    finally:
        await server.stop()


def worker_entry(
    index: int,
    socket_path: str,
    enable_obs: bool,
    server_kwargs: Dict[str, Any],
) -> None:
    """The forked child's target: run one worker to completion."""
    _reset_asyncio_after_fork()
    # Start from a clean observability slate: the fork inherits whatever
    # the supervisor had recorded, which must not leak into this
    # worker's scrape.
    OBS.reset()
    if enable_obs:
        OBS.enable()
    else:
        OBS.disable()
    try:
        os.unlink(socket_path)  # a crashed predecessor's stale socket
    except OSError:
        pass
    asyncio.run(_worker_async(index, socket_path, enable_obs, server_kwargs))
