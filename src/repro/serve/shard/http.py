"""Scrapeable ``/metrics`` + ``/healthz`` for the sharded service.

A deliberately tiny HTTP/1.0 responder on asyncio streams — enough for a
Prometheus scrape loop and a load-balancer health check, with no web
framework (the container has none, and a scrape endpoint needs none).
One request per connection, ``Connection: close``, Content-Length always
set.

- ``GET /metrics`` — Prometheus text exposition of the merged
  cross-worker view: every worker's obs registry merged series-by-series
  (when workers run with observability enabled) plus ``shard_*`` gauges
  flattened from the always-on stats totals and supervisor/router
  counters.  Rendering reuses
  :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus` — the shard
  layer adds merging, not a second exporter.
- ``GET /healthz`` — canonical JSON; ``200`` when every worker process
  is alive, ``503`` otherwise (the scrape body still enumerates
  per-worker liveness and respawn counts so operators can see *which*
  shard is flapping).

Anything else is a ``404``, non-GET methods a ``405``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.serve.shard.merge import (
    merge_obs_snapshots,
    merged_view,
    stats_to_gauges,
)
from repro.trace.canon import canonical_bytes

__all__ = ["MetricsEndpoint"]

_MAX_REQUEST_BYTES = 8192


class MetricsEndpoint:
    """The supervisor's HTTP face: ``/metrics`` and ``/healthz``."""

    def __init__(self, supervisor: Any) -> None:
        self.supervisor = supervisor
        self._server: Optional[asyncio.AbstractServer] = None
        self.stats = {"scrapes": 0, "health_checks": 0, "bad_requests": 0}

    async def start(self, host: str, port: int) -> int:
        """Listen on *host*:*port* (0 → ephemeral); return the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await reader.readuntil(b"\r\n")
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionError,
            ):
                return
            if len(request_line) > _MAX_REQUEST_BYTES:
                self.stats["bad_requests"] += 1
                await self._respond(writer, 400, b"request line too long\n")
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                self.stats["bad_requests"] += 1
                await self._respond(writer, 400, b"malformed request line\n")
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            # Drain headers (ignored) so well-behaved clients aren't reset
            # mid-write; cap total header bytes against abuse.
            drained = 0
            while drained < _MAX_REQUEST_BYTES:
                try:
                    line = await reader.readuntil(b"\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    break
                drained += len(line)
                if line in (b"\r\n", b"\n"):
                    break
            if method != "GET":
                self.stats["bad_requests"] += 1
                await self._respond(writer, 405, b"method not allowed\n")
            elif path == "/metrics":
                self.stats["scrapes"] += 1
                body = await self._metrics_body()
                await self._respond(
                    writer,
                    200,
                    body,
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                self.stats["health_checks"] += 1
                status, body = self._health_body()
                await self._respond(
                    writer, status, body, content_type="application/json"
                )
            else:
                await self._respond(writer, 404, b"not found\n")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            503: "Service Unavailable",
        }.get(status, "OK")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass

    # -- bodies ---------------------------------------------------------------

    async def _metrics_body(self) -> bytes:
        payloads = await self.supervisor.collect_worker_payloads()
        registry = merge_obs_snapshots(
            [p["obs"] for p in payloads if p is not None and p.get("obs")]
        )
        view = merged_view(
            [p["stats"] if p is not None else None for p in payloads]
        )
        stats_to_gauges(registry, view["totals"], prefix="shard_")
        stats_to_gauges(
            registry,
            self.supervisor.router.stats,
            prefix="shard_router_",
            help_text="Shard router counter.",
        )
        registry.gauge(
            "shard_workers", "Configured worker count."
        ).set(float(view["workers"]))
        registry.gauge(
            "shard_workers_alive", "Workers answering the control channel."
        ).set(float(view["workers_alive"]))
        registry.gauge(
            "shard_workers_respawned",
            "Workers respawned by the watchdog since service start.",
        ).set(float(self.supervisor.stats["workers_respawned"]))
        return registry.to_prometheus().encode("utf-8")

    def _health_body(self) -> tuple:
        flags = self.supervisor.alive_flags()
        healthy = all(flags) and bool(flags)
        payload = {
            "ok": healthy,
            "workers": len(flags),
            "workers_alive": sum(flags),
            "per_worker": [
                {
                    "index": handle.index,
                    "alive": flags[handle.index],
                    "draining": handle.draining,
                    "respawns": handle.respawns,
                }
                for handle in self.supervisor.workers
            ],
        }
        return (200 if healthy else 503), canonical_bytes(payload) + b"\n"
