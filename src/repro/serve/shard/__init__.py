"""Multi-process sharded guard service.

One :class:`~repro.serve.server.GuardServer` process saturates at one
event loop's worth of CPU; heavy lab fleets need more.  This package
scales the service *out* without changing what it promises:

- :mod:`~repro.serve.shard.supervisor` — :class:`ShardService` forks N
  full worker services (fork-only, like :mod:`repro.parallel`), watches
  them, respawns crashed ones, and merges their stats.
- :mod:`~repro.serve.shard.router` — the public endpoint; resolves each
  session's worker (pin > deterministic key hash > round-robin) and then
  pipes bytes untouched, which is what keeps sharded journals
  byte-identical to the single-process service.
- :mod:`~repro.serve.shard.worker` — a :class:`GuardServer` subclass
  adding the supervisor's control ops (stats / drain / shutdown).
- :mod:`~repro.serve.shard.routing` — salted-``hash``-free
  ``(tenant, key) → worker`` mapping, stable across processes and runs.
- :mod:`~repro.serve.shard.merge` — deterministic worker-index-order
  aggregation of stats and obs metric snapshots.
- :mod:`~repro.serve.shard.http` — ``/metrics`` (Prometheus text) and
  ``/healthz`` on ``--metrics-port``.

Start one with ``python -m repro serve --shard-workers 4 --socket
/tmp/rabit.sock --metrics-port 9115``.
"""

from repro.serve.shard.http import MetricsEndpoint
from repro.serve.shard.merge import (
    merge_numeric,
    merge_obs_snapshots,
    merged_view,
    stats_to_gauges,
)
from repro.serve.shard.router import ShardRouter
from repro.serve.shard.routing import shard_for, worker_socket_path
from repro.serve.shard.supervisor import (
    ShardConfig,
    ShardService,
    ShardUnsupportedError,
)
from repro.serve.shard.worker import ShardWorkerServer, worker_entry

__all__ = [
    "MetricsEndpoint",
    "ShardConfig",
    "ShardRouter",
    "ShardService",
    "ShardUnsupportedError",
    "ShardWorkerServer",
    "merge_numeric",
    "merge_obs_snapshots",
    "merged_view",
    "shard_for",
    "stats_to_gauges",
    "worker_entry",
    "worker_socket_path",
]
