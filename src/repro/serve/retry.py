"""Client-side resilience: bounded exponential backoff with seeded jitter.

A serve client's connect can race the server's startup, or hit a
transient network stall; :func:`retrying` wraps an async callable so
those two failure classes — and *only* those — are retried.  Everything
else (protocol errors, safety verdicts, programming mistakes) propagates
immediately: retrying a non-transient failure just hides bugs.

The backoff schedule is fully deterministic: delays double from
``base_delay`` up to ``max_delay``, and the jitter factor comes from a
``random.Random(seed)`` stream, so a given policy always produces the
same delay sequence.  Deterministic jitter keeps the *tests* exact while
still letting a fleet of clients with distinct seeds decorrelate their
retries.
"""

from __future__ import annotations

import asyncio
import functools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple, Type

__all__ = ["RetryPolicy", "backoff_delays", "retrying"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to retry a transiently failing call."""

    #: Total attempts, including the first (so ``attempts=1`` never retries).
    attempts: int = 4
    #: Delay before the first retry, seconds.
    base_delay: float = 0.05
    #: Ceiling on any single delay, seconds (the "bounded" in bounded
    #: exponential backoff).
    max_delay: float = 1.0
    #: Jitter amplitude: each delay is scaled by ``1 + jitter * u`` with
    #: ``u`` drawn from the seeded stream in ``[0, 1)``.
    jitter: float = 0.25
    #: Seed of the jitter stream; same seed ⇒ same delay sequence.
    seed: int = 0
    #: Exception types that are considered transient.  Connect and
    #: timeout failures only — nothing else is safe to blindly replay.
    retry_on: Tuple[Type[BaseException], ...] = field(
        default=(ConnectionError, TimeoutError)
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")


def backoff_delays(policy: RetryPolicy) -> List[float]:
    """The full (deterministic) delay schedule: one entry per retry."""
    rng = random.Random(policy.seed)
    delays = []
    for attempt in range(policy.attempts - 1):
        base = min(policy.max_delay, policy.base_delay * (2.0**attempt))
        delays.append(base * (1.0 + policy.jitter * rng.random()))
    return delays


def retrying(
    policy: RetryPolicy = RetryPolicy(),
    sleep: Callable[[float], Any] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: retry an async callable per *policy*.

    *sleep* defaults to :func:`asyncio.sleep`; tests inject a fake clock
    here to pin the exact delay sequence without waiting.  The final
    attempt's exception propagates unchanged.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        async def wrapper(*args: Any, **kwargs: Any) -> Any:
            do_sleep = sleep if sleep is not None else asyncio.sleep
            delays = backoff_delays(policy)
            for attempt in range(policy.attempts):
                try:
                    return await fn(*args, **kwargs)
                except policy.retry_on:
                    if attempt == policy.attempts - 1:
                        raise
                    await do_sleep(delays[attempt])
            raise AssertionError("unreachable")  # pragma: no cover

        return wrapper

    return decorate
