"""Guard-as-a-service: the asyncio multi-session front-end.

RABIT so far guards one lab session per process.  The paper's
intervention tool, though, is meant to sit in front of fleets of
self-driving-lab arms — one shared guard multiplexed across many remote
users.  :mod:`repro.serve` is that front-end:

- :class:`~repro.serve.server.GuardServer` — a long-running asyncio
  service hosting many concurrent :class:`~repro.serve.session.GuardSession`
  instances in one process.  Each session owns its own
  :class:`~repro.core.state.LabState`, rule-verdict cache, and virtual
  clock; all sessions of a tenant share one
  :class:`~repro.core.rulebase.RuleBase` instance and therefore one
  memoized compiled dispatch snapshot.
- :class:`~repro.serve.batcher.SweepBatcher` — collision sweeps from all
  sessions drain through one bounded queue and execute as cross-session
  batches on the stacked geometry kernels, with explicit backpressure
  (queue full ⇒ admission throttling) and graceful degradation (over the
  high-watermark ⇒ tool-point-only probes, flagged on the verdict).
- :class:`~repro.serve.client.ServeClient` — a thin asyncio client
  speaking newline-delimited canonical JSON, with
  :mod:`repro.serve.retry` resilience on connect.
- :mod:`repro.serve.journal` — the per-session verdict journal both the
  service and the in-process reference path emit; the differential suite
  pins the two byte-identical.
- :mod:`repro.serve.shard` — the multi-process scale-out: a supervisor
  forks N full worker services behind a deterministic session router,
  with merged cross-worker stats and a scrapeable ``/metrics`` endpoint.

Start one with ``python -m repro serve --socket /tmp/rabit.sock``
(add ``--shard-workers N`` to shard it).
"""

from repro.serve.batcher import SweepBatcher
from repro.serve.client import (
    ServeClient,
    ServeConnectionLost,
    ServeError,
    ServeUnavailableError,
)
from repro.serve.retry import RetryPolicy, retrying
from repro.serve.server import GuardServer, SessionRejected
from repro.serve.session import GuardSession
from repro.serve.shard import ShardConfig, ShardService, ShardUnsupportedError

__all__ = [
    "GuardServer",
    "GuardSession",
    "ServeClient",
    "ServeConnectionLost",
    "ServeError",
    "ServeUnavailableError",
    "SessionRejected",
    "ShardConfig",
    "ShardService",
    "ShardUnsupportedError",
    "SweepBatcher",
    "RetryPolicy",
    "retrying",
]
