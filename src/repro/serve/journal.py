"""The per-session verdict journal — the serve differential witness.

Every guarded command a session processes appends one JSON-safe record:
sequence number, device/method/label/location, the virtual time after
the command, the alert (if any), the rule-verdict-cache disposition, and
whether the trajectory verdict came from the degraded tool-point-only
path.  The same builder is used by the service session and by
:func:`run_inprocess_journal`, which replays a command script through
the classic synchronous :meth:`Rabit.guard` path — so "service and
in-process agree" reduces to byte equality of two
:func:`~repro.trace.canon.canonical_bytes` renderings.

The ``degraded`` field is load-bearing: a degraded sweep may legitimately
clear a motion the full sweep would block (it skips the gripper-tip and
held-vial probes), so journals are only byte-identical when no command
degraded — and when one did, the flag is exactly how the divergence is
surfaced instead of hidden.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import Alert, SafetyViolation
from repro.core.interceptor import BASELINE_DURATION, resolve_action
from repro.core.monitor import Rabit, RabitOptions

__all__ = ["journal_record", "run_inprocess_journal", "cache_disposition"]


def journal_record(
    seq: int,
    device: str,
    method: str,
    label: Optional[Any],
    location: Optional[str],
    t: float,
    alert: Optional[Alert],
    rule_cache: str,
    degraded: bool,
) -> Dict[str, Any]:
    """One canonical journal entry (plain JSON types only)."""
    return {
        "seq": seq,
        "device": device,
        "method": method,
        "label": label.value if label is not None else None,
        "location": location,
        "t": t,
        "alert": (
            {
                "kind": alert.kind.value,
                "message": alert.message,
                "rule_id": alert.rule_id,
            }
            if alert is not None
            else None
        ),
        "rule_cache": rule_cache,
        "degraded": degraded,
    }


def cache_disposition(rabit: Rabit, hits_before: int, misses_before: int) -> str:
    """How the rule-verdict cache answered the command just guarded."""
    cache = rabit.rule_cache
    if cache is None:
        return "disabled"
    if cache.hits > hits_before:
        return "hit"
    if cache.misses > misses_before:
        return "miss"
    return "none"


def run_inprocess_journal(
    deck_name: str,
    commands: Sequence[Dict[str, Any]],
    deck_params: Optional[Dict[str, Any]] = None,
    options: Optional[RabitOptions] = None,
) -> List[Dict[str, Any]]:
    """Replay *commands* through the classic synchronous guard path.

    Builds the same deck/monitor a :class:`GuardSession` would (same
    options, same seeding, same clock charges) and guards each command
    with :meth:`Rabit.guard` — the single-session in-process reference
    the service journal must match byte-for-byte.
    """
    from repro.serve.session import build_guarded_deck, default_serve_options

    opts = options or default_serve_options()
    deck, rabit = build_guarded_deck(deck_name, deck_params or {}, None, opts)
    journal: List[Dict[str, Any]] = []
    for command in commands:
        device = deck.devices[command["device"]]
        method = command["method"]
        args = tuple(command.get("args", ()))
        kwargs = dict(command.get("kwargs", {}))
        attr = getattr(device, method)
        call = resolve_action(device, method, args, kwargs)
        if call is None:
            attr(*args, **kwargs)  # unmodeled: pass through, unjournaled
            continue
        rabit.clock.advance(
            device.connection.command_latency + BASELINE_DURATION.get(call.label, 1.0),
            "experiment",
        )
        cache = rabit.rule_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        before = rabit.alert_count
        alert: Optional[Alert] = None
        try:
            rabit.guard(call, lambda: attr(*args, **kwargs))
            if rabit.alert_count > before:
                alert = rabit.last_alert()
        except SafetyViolation as violation:
            alert = violation.alert
        journal.append(
            journal_record(
                seq=len(journal),
                device=device.name,
                method=method,
                label=call.label,
                location=call.location,
                t=rabit.clock.now,
                alert=alert,
                rule_cache=cache_disposition(rabit, hits_before, misses_before),
                degraded=False,
            )
        )
    return journal
