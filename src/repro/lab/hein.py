"""The Hein Lab production deck (Fig. 1(a)).

One UR3e arm surrounded by five automation devices: a solid dosing device
(with the software-controlled glass door), an automated syringe pump, a
centrifuge (with lid and rotor red dot), a thermoshaker, and a hotplate,
plus a vial grid.  The deck is laid out in the UR3e's own coordinate
frame, which doubles as the world frame (single-arm deck).

:func:`build_hein_deck` constructs both the ground-truth world *and* the
JSON configuration document a researcher would write for RABIT; the
config is deliberately round-tripped through the real
:mod:`repro.core.config` loader, so every run exercises the same path the
pilot-study participant used.  :func:`make_hein_rabit` wires up monitor,
Extended Simulator, and tracing proxies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.clock import VirtualClock
from repro.core.config import build_model
from repro.core.interceptor import CommandRecord, DeviceProxy, instrument
from repro.core.model import RabitLabModel
from repro.core.monitor import Rabit, RabitOptions
from repro.core.rulebase import RuleBase
from repro.devices.action_device import Centrifuge, Hotplate, Thermoshaker
from repro.devices.base import Device, DoorState
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice, SyringePump
from repro.devices.locations import LocationKind
from repro.devices.robot import RobotArmDevice
from repro.devices.world import LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity
from repro.geometry.walls import Workspace
from repro.kinematics.profiles import UR3E
from repro.simulator.extended import ExtendedSimulator

#: Deck geometry, UR3e frame (= world frame).  All metres.  Chosen so that
#: every scripted location is inside the UR3e's 0.5 m reach, gripper and
#: held-vial clearances over obstacle tops are ~1 cm in legitimate
#: workflows, and the platform slab top sits at z = 0.03.
GEOMETRY: Dict[str, Dict[str, Any]] = {
    "platform": {"min": [-0.8, -0.8, -0.02], "max": [0.8, 0.8, 0.03], "surface": True},
    "grid": {"min": [0.25, -0.15, 0.0], "max": [0.45, 0.05, 0.05], "surface": False},
    "dosing_device": {"min": [-0.10, 0.28, 0.0], "max": [0.10, 0.48, 0.35], "surface": False},
    "hotplate": {"min": [-0.45, -0.10, 0.0], "max": [-0.25, 0.10, 0.08], "surface": False},
    "centrifuge": {"min": [-0.10, -0.48, 0.0], "max": [0.10, -0.28, 0.25], "surface": False},
    "thermoshaker": {"min": [0.18, 0.18, 0.0], "max": [0.34, 0.34, 0.12], "surface": False},
    "syringe_pump": {"min": [-0.52, 0.25, 0.0], "max": [-0.38, 0.40, 0.30], "surface": False},
}

#: Named locations, UR3e frame: (kind, owning device, [x, y, z]).
LOCATIONS: Dict[str, Tuple[str, Optional[str], List[float]]] = {
    "grid_a1": ("grid_slot", "grid", [0.30, -0.05, 0.12]),
    "grid_a1_safe": ("free", None, [0.30, -0.05, 0.28]),
    "grid_a2": ("grid_slot", "grid", [0.38, -0.05, 0.12]),
    "grid_a2_safe": ("free", None, [0.38, -0.05, 0.26]),
    "dosing_approach": ("device_approach", "dosing_device", [0.0, 0.22, 0.22]),
    "dosing_interior": ("device_interior", "dosing_device", [0.0, 0.38, 0.12]),
    "hotplate_top": ("device_interior", "hotplate", [-0.35, 0.0, 0.15]),
    "hotplate_safe": ("free", None, [-0.35, 0.0, 0.28]),
    "centrifuge_approach": ("device_approach", "centrifuge", [0.0, -0.24, 0.32]),
    "centrifuge_slot": ("device_interior", "centrifuge", [0.0, -0.38, 0.13]),
    "shaker_top": ("device_interior", "thermoshaker", [0.26, 0.26, 0.19]),
    "shaker_safe": ("free", None, [0.26, 0.26, 0.30]),
}

HOTPLATE_MAX_TEMP = 120.0
CENTRIFUGE_MAX_RPM = 6000.0
SHAKER_MAX_RPM = 1500.0
VIAL_CAPACITY_SOLID_MG = 10.0
VIAL_CAPACITY_LIQUID_ML = 20.0


@dataclass
class HeinDeck:
    """The assembled production deck."""

    world: LabWorld
    devices: Dict[str, Device]
    vials: Dict[str, Vial]
    config: Dict[str, Any]
    model: RabitLabModel

    @property
    def ur3e(self) -> RobotArmDevice:
        """The deck's robot arm."""
        arm = self.devices["ur3e"]
        assert isinstance(arm, RobotArmDevice)
        return arm


def build_hein_deck(
    vial_names: Tuple[str, ...] = ("vial_1", "vial_2"),
    world_geometry: bool = True,
) -> HeinDeck:
    """Construct the Hein Lab production deck with vials on the grid.

    The first vial rests at ``grid_a1``, the second at ``grid_a2``; both
    start stoppered and empty, matching the start of the solubility
    workflow.

    ``world_geometry=False`` builds the same deck minus the ground-truth
    collision geometry (no surfaces, footprints, or passive obstacles in
    the *world* — RABIT's configuration/model keep the full cuboid set).
    The devices then execute without per-sample physics, which is the
    serve throughput benchmark's stand-in for a remote lab whose real
    physics happen on the other side of an I/O boundary.  Guard verdicts
    are unaffected: the monitor and Extended Simulator only ever read
    the config-derived model.
    """
    room = Workspace(
        bounds=Cuboid((-0.8, -0.8, -0.05), (0.8, 0.8, 1.2), name="lab_room")
    )
    world = LabWorld("hein", room)
    world.register_frame("ur3e", identity())

    # Obstacles and surfaces (ground truth, world frame).
    if world_geometry:
        for name, spec in GEOMETRY.items():
            box = Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)
            if spec["surface"]:
                world.add_surface(box)

    # Locations.
    for name, (kind, device, coords) in LOCATIONS.items():
        world.locations.define(
            name, LocationKind(kind), coords={"ur3e": coords}, device=device
        )

    # Devices.  Footprints attach the obstacle cuboids to the device
    # objects so ground-truth collision physics can exclude the entered
    # device.
    ur3e = RobotArmDevice("ur3e", UR3E, world, noise_sigma=0.0)
    dosing = SolidDosingDevice(
        "dosing_device", world, max_dose_mg=VIAL_CAPACITY_SOLID_MG,
        door_initial=DoorState.CLOSED,
    )
    pump = SyringePump("syringe_pump", world, dispense_location="hotplate_top")
    hotplate = Hotplate("hotplate", world, threshold=HOTPLATE_MAX_TEMP)
    centrifuge = Centrifuge("centrifuge", world, threshold=CENTRIFUGE_MAX_RPM)
    shaker = Thermoshaker("thermoshaker", world, threshold=SHAKER_MAX_RPM)

    def _box(name: str) -> Cuboid:
        spec = GEOMETRY[name]
        return Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)

    world.add_device(ur3e)
    if world_geometry:
        world.add_device(dosing, footprint=_box("dosing_device"))
        world.add_device(pump, footprint=_box("syringe_pump"))
        world.add_device(hotplate, footprint=_box("hotplate"))
        world.add_device(centrifuge, footprint=_box("centrifuge"))
        world.add_device(shaker, footprint=_box("thermoshaker"))
        # The grid is a passive obstacle, not a device.
        world.add_obstacle(_box("grid"))  # passive fixture, not a device
    else:
        world.add_device(dosing)
        world.add_device(pump)
        world.add_device(hotplate)
        world.add_device(centrifuge)
        world.add_device(shaker)

    vials: Dict[str, Vial] = {}
    slots = ["grid_a1", "grid_a2"]
    for i, vial_name in enumerate(vial_names):
        vial = Vial(
            vial_name,
            capacity_solid_mg=VIAL_CAPACITY_SOLID_MG,
            capacity_liquid_ml=VIAL_CAPACITY_LIQUID_ML,
            stoppered=True,
        )
        world.add_vial(vial, at_location=slots[i] if i < len(slots) else None)
        vials[vial_name] = vial

    devices: Dict[str, Device] = {
        "ur3e": ur3e,
        "dosing_device": dosing,
        "syringe_pump": pump,
        "hotplate": hotplate,
        "centrifuge": centrifuge,
        "thermoshaker": shaker,
        **vials,
    }

    config = _hein_config(vial_names)
    model = build_model(config)
    return HeinDeck(world=world, devices=devices, vials=vials, config=config, model=model)


def _hein_config(vial_names: Tuple[str, ...]) -> Dict[str, Any]:
    """The JSON configuration document for the Hein deck (§II-C format)."""
    device_entries: List[Dict[str, Any]] = [
        {
            "name": "ur3e",
            "type": "robot_arm",
            "class": "RobotArmDevice",
            "frame": "ur3e",
            "link_radius": UR3E.link_radius,
            "gripper_clearance": RobotArmDevice.GRIPPER_CLEARANCE,
            "held_drop": RobotArmDevice.HELD_DROP,
        },
        {
            "name": "dosing_device",
            "type": "dosing_system",
            "class": "SolidDosingDevice",
            "door": {"present": True, "initial": "closed"},
            "load_location": "dosing_interior",
        },
        {
            "name": "syringe_pump",
            "type": "dosing_system",
            "class": "SyringePump",
            "dispense_location": "hotplate_top",
        },
        {
            "name": "hotplate",
            "type": "action_device",
            "class": "Hotplate",
            "threshold": HOTPLATE_MAX_TEMP,
            "load_location": "hotplate_top",
        },
        {
            "name": "centrifuge",
            "type": "action_device",
            "class": "Centrifuge",
            "threshold": CENTRIFUGE_MAX_RPM,
            "door": {"present": True, "initial": "open"},
            "load_location": "centrifuge_slot",
        },
        {
            "name": "thermoshaker",
            "type": "action_device",
            "class": "Thermoshaker",
            "threshold": SHAKER_MAX_RPM,
            "load_location": "shaker_top",
        },
    ]
    for vial_name in vial_names:
        device_entries.append(
            {
                "name": vial_name,
                "type": "container",
                "class": "Vial",
                "capacity_solid_mg": VIAL_CAPACITY_SOLID_MG,
                "capacity_liquid_ml": VIAL_CAPACITY_LIQUID_ML,
            }
        )
    return {
        "lab": "hein",
        "devices": device_entries,
        "locations": [
            {
                "name": name,
                "kind": kind,
                "device": device,
                "coords": {"ur3e": list(coords)},
            }
            for name, (kind, device, coords) in LOCATIONS.items()
        ],
        "obstacles": [
            {
                "name": name,
                "surface": spec["surface"],
                "frames": {"ur3e": {"min": list(spec["min"]), "max": list(spec["max"])}},
            }
            for name, spec in GEOMETRY.items()
        ],
        "workspace": {
            "ur3e": {"min": [-0.75, -0.75, 0.02], "max": [0.75, 0.75, 1.0]}
        },
        "custom_rules": ["C1", "C2", "C3", "C4"],
        "reliable_container_tracking": True,
    }


def make_hein_rabit(
    deck: HeinDeck,
    options: Optional[RabitOptions] = None,
    use_extended_simulator: bool = False,
    clock: Optional[VirtualClock] = None,
    rulebase: Optional[RuleBase] = None,
) -> Tuple[Rabit, Dict[str, DeviceProxy], List[CommandRecord]]:
    """Wire RABIT onto the deck: monitor, simulator, tracing proxies.

    Seeds the tracked initial inventory (which vial starts where, empty
    and stoppered) the way the lab researcher does at experiment start.
    Pass *rulebase* to supply a prebuilt (possibly tenant-overlaid)
    rulebase; sessions sharing one instance also share its memoized
    compiled snapshot.
    """
    opts = options or RabitOptions.modified()
    if use_extended_simulator:
        opts = RabitOptions(**{**opts.__dict__, "use_extended_simulator": True})
    checker = (
        ExtendedSimulator({"ur3e": deck.ur3e}) if opts.use_extended_simulator else None
    )
    rabit = Rabit(
        model=deck.model,
        devices=deck.devices,
        options=opts,
        trajectory_checker=checker,
        clock=clock,
        rulebase=rulebase,
    )
    for vial_name, vial in deck.vials.items():
        if vial.resting_at is not None:
            rabit.seed_tracked("container_at", vial_name, vial.resting_at)
        # The researcher declares the starting inventory; we read it off
        # the (correctly prepared) deck, like the lab does at setup time.
        rabit.seed_tracked("container_solid", vial_name, vial.contents.solid_mg)
        rabit.seed_tracked("container_liquid", vial_name, vial.contents.liquid_ml)
    rabit.initialize()
    proxies, trace = instrument(deck.devices, rabit, clock=rabit.clock)
    return rabit, proxies, trace
