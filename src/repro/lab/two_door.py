"""The §V-C two-door deck as a first-class lab, plus its safe workflow.

The multi-door extension ("devices might have multiple doors, for
instance, for two robot arms to approach the device simultaneously")
previously existed only as a test-local fixture.  Promoting it to a
real deck gives the trace corpus a scenario that exercises every
multi-door mechanism at once — compound ``device:door`` state keys,
per-door G1 entry checks, entry-door-only G2 protection, and
all-doors-closed G9 — in one recordable, replayable run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.clock import VirtualClock
from repro.core.config import build_model
from repro.core.interceptor import CommandRecord, DeviceProxy, instrument
from repro.core.model import RabitLabModel
from repro.core.monitor import Rabit, RabitOptions
from repro.devices.base import Device, DoorState
from repro.devices.container import Vial
from repro.devices.locations import LocationKind
from repro.devices.multi_door import MultiDoorDosingDevice
from repro.devices.robot import RobotArmDevice
from repro.devices.world import LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity, rotation_z, translation
from repro.geometry.walls import Workspace
from repro.kinematics.profiles import NED2, VIPERX_300
from repro.lab.workflows import ScriptLine

#: Ned2's mounting, identical to the testbed: 0.82 m along world x,
#: rotated 180° about z so the arms face each other.
NED2_BASE = translation([0.82, 0.0, 0.0]) @ rotation_z(math.pi)

#: The shared device sits between the arms; the front slot serves ViperX,
#: the back slot serves Ned2 (world frame == viperx frame).
DEVICE_BOX = {"min": [0.40, 0.18, 0.0], "max": [0.60, 0.38, 0.30]}
FRONT_SLOT_VIPERX = [0.44, 0.28, 0.12]
BACK_SLOT_WORLD = [0.55, 0.28, 0.12]


@dataclass
class TwoDoorDeck:
    """The assembled two-door lab."""

    world: LabWorld
    devices: Dict[str, Device]
    vials: Dict[str, Vial]
    config: Dict[str, Any]
    model: RabitLabModel


def build_two_door_deck() -> TwoDoorDeck:
    """Two arms, one shared dosing device, two named doors."""
    world = LabWorld(
        "two-door",
        Workspace(bounds=Cuboid((-0.7, -0.6, -0.05), (1.5, 0.6, 1.0), name="room")),
    )
    world.register_frame("viperx", identity())
    world.register_frame("ned2", NED2_BASE)
    world.add_surface(Cuboid((-0.6, -0.6, -0.02), (1.4, 0.6, 0.03), name="platform"))

    back_ned2 = NED2_BASE.inverse().apply(BACK_SLOT_WORLD)
    world.locations.define(
        "mdoser_front", LocationKind.DEVICE_INTERIOR,
        {"viperx": FRONT_SLOT_VIPERX}, device="mdoser", via_door="front",
    )
    world.locations.define(
        "mdoser_back", LocationKind.DEVICE_INTERIOR,
        {"ned2": [float(x) for x in back_ned2]}, device="mdoser", via_door="back",
    )
    world.locations.define(
        "front_approach", LocationKind.DEVICE_APPROACH,
        {"viperx": [0.44, 0.10, 0.20]}, device="mdoser",
    )
    world.locations.define(
        "back_approach", LocationKind.DEVICE_APPROACH,
        {"ned2": [0.27, -0.10, 0.20]}, device="mdoser",
    )

    viperx = world.add_device(RobotArmDevice("viperx", VIPERX_300, world))
    ned2 = world.add_device(RobotArmDevice("ned2", NED2, world))
    mdoser = world.add_device(
        MultiDoorDosingDevice(
            "mdoser", world, door_names=("front", "back"),
            door_initial=DoorState.CLOSED,
        ),
        footprint=Cuboid(
            tuple(DEVICE_BOX["min"]), tuple(DEVICE_BOX["max"]), name="mdoser"
        ),
    )
    vial = world.add_vial(Vial("mv", stoppered=False), at_location="mdoser_front")

    config = {
        "lab": "two-door",
        "devices": [
            {"name": "viperx", "type": "robot_arm", "class": "RobotArmDevice",
             "frame": "viperx"},
            {"name": "ned2", "type": "robot_arm", "class": "RobotArmDevice",
             "frame": "ned2"},
            {"name": "mdoser", "type": "dosing_system", "class": "MultiDoorDosingDevice",
             "door": {"present": True, "initial": "closed", "names": ["front", "back"]},
             "load_location": "mdoser_front"},
            {"name": "mv", "type": "container", "class": "Vial",
             "capacity_solid_mg": 10.0},
        ],
        "locations": [
            {"name": "mdoser_front", "kind": "device_interior", "device": "mdoser",
             "via_door": "front", "coords": {"viperx": FRONT_SLOT_VIPERX}},
            {"name": "mdoser_back", "kind": "device_interior", "device": "mdoser",
             "via_door": "back", "coords": {"ned2": [float(x) for x in back_ned2]}},
            {"name": "front_approach", "kind": "device_approach", "device": "mdoser",
             "coords": {"viperx": [0.44, 0.10, 0.20]}},
            {"name": "back_approach", "kind": "device_approach", "device": "mdoser",
             "coords": {"ned2": [0.27, -0.10, 0.20]}},
        ],
        "obstacles": [
            {"name": "mdoser", "surface": False, "frames": {"viperx": dict(DEVICE_BOX)}},
            {"name": "platform", "surface": True,
             "frames": {"viperx": {"min": [-0.6, -0.6, -0.02], "max": [1.4, 0.6, 0.03]}}},
        ],
        "custom_rules": [],
        "reliable_container_tracking": True,
    }
    model = build_model(config)
    devices: Dict[str, Device] = {
        "viperx": viperx, "ned2": ned2, "mdoser": mdoser, "mv": vial,
    }
    return TwoDoorDeck(
        world=world, devices=devices, vials={"mv": vial}, config=config, model=model
    )


def make_two_door_rabit(
    deck: TwoDoorDeck,
    options: Optional[RabitOptions] = None,
    clock: Optional[VirtualClock] = None,
) -> Tuple[Rabit, Dict[str, DeviceProxy], List[CommandRecord]]:
    """Wire RABIT onto the two-door deck (monitor + tracing proxies)."""
    rabit = Rabit(
        model=deck.model,
        devices=deck.devices,
        options=options or RabitOptions.modified(),
        clock=clock,
    )
    for vial_name, vial in deck.vials.items():
        if vial.resting_at is not None:
            rabit.seed_tracked("container_at", vial_name, vial.resting_at)
        rabit.seed_tracked("container_solid", vial_name, vial.contents.solid_mg)
        rabit.seed_tracked("container_liquid", vial_name, vial.contents.liquid_ml)
    rabit.initialize()
    proxies, trace = instrument(deck.devices, rabit, clock=rabit.clock)
    return rabit, proxies, trace


def build_two_door_workflow(
    proxies: Dict[str, DeviceProxy], amount_mg: float = 3.0
) -> List[ScriptLine]:
    """The safe simultaneous-access workflow.

    Both arms enter the shared device through their own doors at the
    same time, retreat, and the device doses once every door is closed
    again — touching per-door G1, entry-door G2, and all-doors G9."""
    viperx = proxies["viperx"]
    ned2 = proxies["ned2"]
    mdoser = proxies["mdoser"]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn: Callable[[], Any]) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    add("open_front", 'mdoser.open_door("front")', lambda: mdoser.open_door("front"))
    add("open_back", 'mdoser.open_door("back")', lambda: mdoser.open_door("back"))
    add("viperx_approach", "viperx.move_to_location(front_approach)",
        lambda: viperx.move_to_location("front_approach"))
    add("viperx_enter", "viperx.move_to_location(mdoser_front)",
        lambda: viperx.move_to_location("mdoser_front"))
    add("ned2_approach", "ned2.move_to_location(back_approach)",
        lambda: ned2.move_to_location("back_approach"))
    add("ned2_enter", "ned2.move_to_location(mdoser_back)",
        lambda: ned2.move_to_location("mdoser_back"))
    add("viperx_exit", "viperx.move_to_location(front_approach)",
        lambda: viperx.move_to_location("front_approach"))
    add("ned2_exit", "ned2.move_to_location(back_approach)",
        lambda: ned2.move_to_location("back_approach"))
    add("close_front", 'mdoser.close_door("front")',
        lambda: mdoser.close_door("front"))
    add("close_back", 'mdoser.close_door("back")', lambda: mdoser.close_door("back"))
    add("dose", f"mdoser.dose_solid({amount_mg:g})",
        lambda: mdoser.dose_solid(amount_mg))
    add("stop_dosing", "mdoser.stop_action()", lambda: mdoser.stop_action())
    add("viperx_sleep", "viperx.go_to_sleep_pose()",
        lambda: viperx.go_to_sleep_pose())
    add("ned2_sleep", "ned2.go_to_sleep_pose()", lambda: ned2.go_to_sleep_pose())
    return lines
