"""The three-stage deployment framework (Table I).

RABIT is exercised in three environments of increasing fidelity and risk:

========================  =========  =======  ==========
Capability                Simulator  Testbed  Production
========================  =========  =======  ==========
Speed of exploration      High       Medium   Low
Device precision/quality  Low        Medium   High
Accuracy of results       Low        Medium   High
Risk of damage            Low        Medium   High
========================  =========  =======  ==========

:class:`StageProfile` gives each stage *quantitative* parameters that the
Table I benchmark measures and maps back onto the paper's High/Medium/Low
bands: how fast commands execute (simulation runs faster than real arms),
how precise the arms are (repeatability sigma), how accurate measured
results are, and what a collision costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class Stage(Enum):
    """The three stages of the RABIT deployment framework."""

    SIMULATOR = "simulator"
    TESTBED = "testbed"
    PRODUCTION = "production"


@dataclass(frozen=True)
class StageProfile:
    """Quantitative characteristics of one stage.

    - ``time_scale``: virtual seconds of wall time per nominal command
      second (the simulator replays motions much faster than real time).
    - ``position_noise_sigma``: 1-sigma actuation/reporting noise (m).
    - ``result_accuracy``: fraction of a measured quantity (e.g. measured
      solubility) that survives the stage's fidelity limits.
    - ``damage_cost``: relative cost of an undetected collision (arbitrary
      units; cardboard mockups are cheap, production equipment is not).
    """

    stage: Stage
    time_scale: float
    position_noise_sigma: float
    result_accuracy: float
    damage_cost: float

    def band(self, axis: str) -> str:
        """Map a quantitative axis onto the paper's High/Medium/Low bands."""
        ordering = {
            # capability -> stage order from Low to High, per Table I.
            "speed": [Stage.PRODUCTION, Stage.TESTBED, Stage.SIMULATOR],
            "precision": [Stage.SIMULATOR, Stage.TESTBED, Stage.PRODUCTION],
            "accuracy": [Stage.SIMULATOR, Stage.TESTBED, Stage.PRODUCTION],
            "risk": [Stage.SIMULATOR, Stage.TESTBED, Stage.PRODUCTION],
        }
        try:
            rank = ordering[axis].index(self.stage)
        except KeyError:
            raise KeyError(f"unknown capability axis {axis!r}") from None
        return ["Low", "Medium", "High"][rank]


STAGE_PROFILES: Dict[Stage, StageProfile] = {
    Stage.SIMULATOR: StageProfile(
        stage=Stage.SIMULATOR,
        time_scale=0.01,  # simulated motion replays ~100x real time
        position_noise_sigma=0.0,  # ideal kinematics, no actuation noise
        result_accuracy=0.60,  # no real chemistry happens at all
        damage_cost=0.0,  # nothing physical can break
    ),
    Stage.TESTBED: StageProfile(
        stage=Stage.TESTBED,
        time_scale=1.0,
        position_noise_sigma=0.005,  # educational arms, mm-scale
        result_accuracy=0.85,  # mockups approximate devices
        damage_cost=1.0,  # cardboard and toy devices
    ),
    Stage.PRODUCTION: StageProfile(
        stage=Stage.PRODUCTION,
        time_scale=1.0,
        position_noise_sigma=0.0001,  # UR3e repeatability
        result_accuracy=1.0,
        damage_cost=100.0,  # real dosing devices, centrifuges, arms
    ),
}
