"""The three-stage validation pipeline (§II, Table I) as a process.

The paper's framework is not just a table — it is a *procedure*: "we use
a three-stage framework for detecting rule violations: (i) simulation,
for quick testing of individual robot arm movements; (ii) a low-fidelity,
inexpensive testbed ...; and lastly, (iii) testing in the production
environment."  A new or edited workflow climbs the stages; a defect
caught early costs nothing, a defect that survives to production risks
real equipment.

:class:`ThreeStageValidator` runs one workflow through all three stages
on progressively riskier decks (same layout, stage-specific noise and
damage economics from :data:`~repro.lab.stage.STAGE_PROFILES`) and stops
climbing at the first stage that rejects it.  The result quantifies what
the staging bought: the *risk exposure* (damage events weighted by the
stage's damage cost) that early detection avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.interceptor import DeviceProxy
from repro.core.monitor import RabitOptions
from repro.lab.hein import HeinDeck, build_hein_deck, make_hein_rabit
from repro.lab.stage import STAGE_PROFILES, Stage
from repro.lab.workflows import ScriptLine, WorkflowResult, run_workflow

#: How each stage is realized on the Hein layout: actuation noise from the
#: stage profile, and whether the Extended Simulator assists (it is the
#: whole point of the simulation stage; the lab also keeps it attached on
#: the testbed, but not in production where its GUI overhead bites).
_STAGE_SETUP: Dict[Stage, Dict[str, object]] = {
    Stage.SIMULATOR: {"use_es": True},
    Stage.TESTBED: {"use_es": True},
    Stage.PRODUCTION: {"use_es": False},
}

WorkflowBuilder = Callable[[Dict[str, DeviceProxy]], List[ScriptLine]]
DeckMutator = Callable[[HeinDeck], None]


@dataclass
class StageOutcome:
    """What happened when the workflow ran at one stage."""

    stage: Stage
    passed: bool
    result: WorkflowResult
    damage_events: int
    #: Damage events weighted by the stage's damage cost (Table I's "risk
    #: of damage" axis, made quantitative).
    risk_exposure: float

    def describe(self) -> str:
        status = "PASS" if self.passed else "REJECTED"
        detail = ""
        if self.result.alert is not None:
            detail = f" — {self.result.alert}"
        elif self.result.device_error is not None:
            detail = f" — device error: {self.result.device_error}"
        return f"{self.stage.value}: {status}{detail}"


@dataclass
class PipelineResult:
    """Outcome of one climb through the stages."""

    outcomes: List[StageOutcome] = field(default_factory=list)

    @property
    def promoted_to_production(self) -> bool:
        """Whether the workflow passed every stage."""
        return bool(self.outcomes) and all(o.passed for o in self.outcomes)

    @property
    def rejected_at(self) -> Optional[Stage]:
        """First stage that rejected the workflow, if any."""
        for outcome in self.outcomes:
            if not outcome.passed:
                return outcome.stage
        return None

    @property
    def total_risk_exposure(self) -> float:
        """Accumulated weighted damage across the stages actually run."""
        return sum(o.risk_exposure for o in self.outcomes)


class ThreeStageValidator:
    """Climb a workflow through simulator -> testbed -> production."""

    def __init__(
        self,
        options: Optional[RabitOptions] = None,
        stages: Sequence[Stage] = (Stage.SIMULATOR, Stage.TESTBED, Stage.PRODUCTION),
    ) -> None:
        self._options = options or RabitOptions.modified()
        self._stages = tuple(stages)

    def validate(
        self,
        build_workflow: WorkflowBuilder,
        mutate_deck: Optional[DeckMutator] = None,
    ) -> PipelineResult:
        """Run *build_workflow* at each stage until one rejects it.

        ``mutate_deck`` applies the candidate change under test (e.g. an
        edited location table) to each stage's fresh deck — the same edit
        is what climbs the stages, exactly like a workflow change in the
        lab.
        """
        pipeline = PipelineResult()
        for stage in self._stages:
            outcome = self._run_stage(stage, build_workflow, mutate_deck)
            pipeline.outcomes.append(outcome)
            if not outcome.passed:
                break
        return pipeline

    def _run_stage(
        self,
        stage: Stage,
        build_workflow: WorkflowBuilder,
        mutate_deck: Optional[DeckMutator],
    ) -> StageOutcome:
        profile = STAGE_PROFILES[stage]
        deck = build_hein_deck()
        deck.ur3e._noise_sigma = profile.position_noise_sigma  # noqa: SLF001
        if mutate_deck is not None:
            mutate_deck(deck)
        rabit, proxies, _ = make_hein_rabit(
            deck,
            options=self._options,
            use_extended_simulator=bool(_STAGE_SETUP[stage]["use_es"]),
        )
        result = run_workflow(build_workflow(proxies))
        damage = len(deck.world.damage_log)
        passed = result.completed and rabit.alert_count == 0 and damage == 0
        return StageOutcome(
            stage=stage,
            passed=passed,
            result=result,
            damage_events=damage,
            risk_exposure=damage * profile.damage_cost,
        )
