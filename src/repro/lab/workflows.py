"""Experiment workflows: Fig. 1(b) and Fig. 5, as mutable scripts.

A workflow is a list of :class:`ScriptLine` objects — one per *script
statement*, exactly the granularity at which the paper's "naive
programmer" edited code ("change the arguments of commands, delete
commands, or change the order of commands").  The fault injector mutates
these lists; :func:`run_workflow` executes them and reports whether RABIT
(or a device exception) stopped the run.

Two API styles are reproduced deliberately:

- the **production** solubility workflow drives modeled wrapper commands
  (``pick_up_vial`` / ``place_vial``), so RABIT's container tracking is
  reliable;
- the **testbed** workflow uses Fig. 5's script-level helpers
  (``viperx_pick_up_object`` et al.), which decompose into raw moves and
  gripper commands — the configuration RABIT cannot fully track, and the
  reason several §IV bugs go undetected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import Alert, SafetyViolation
from repro.core.interceptor import DeviceProxy
from repro.kinematics.arm import UnreachableTargetError


@dataclass
class ScriptLine:
    """One statement of an experiment script."""

    line_id: str
    text: str
    run: Callable[[], Any]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScriptLine({self.line_id}: {self.text})"


@dataclass
class WorkflowResult:
    """Outcome of executing a (possibly mutated) workflow."""

    completed: bool
    executed_lines: List[str]
    alert: Optional[Alert] = None
    device_error: Optional[str] = None

    @property
    def stopped_by_rabit(self) -> bool:
        """Whether RABIT halted the run (its detection signal)."""
        return self.alert is not None

    @property
    def stopped_by_device(self) -> bool:
        """Whether a device exception (not RABIT) halted the run."""
        return self.device_error is not None


def run_workflow(lines: List[ScriptLine]) -> WorkflowResult:
    """Execute script lines until completion, a RABIT stop, or a device
    exception (the Ned2 behaviour on unplannable trajectories)."""
    executed: List[str] = []
    for line in lines:
        try:
            line.run()
        except SafetyViolation as stop:
            return WorkflowResult(
                completed=False, executed_lines=executed, alert=stop.alert
            )
        except UnreachableTargetError as err:
            return WorkflowResult(
                completed=False, executed_lines=executed, device_error=str(err)
            )
        executed.append(line.line_id)
    return WorkflowResult(completed=True, executed_lines=executed)


# ---------------------------------------------------------------------------
# Script-level helpers (the Fig. 5 style: raw moves + gripper commands)
# ---------------------------------------------------------------------------


def pick_up_object(
    robot: DeviceProxy, safe_location: str, pickup_location: str
) -> None:
    """Fig. 5's ``*_pick_up_object`` helper: stage, open, descend, close,
    retreat.  All constituent commands are individually traced."""
    robot.move_to_location(safe_location)
    robot.open_gripper()
    robot.move_to_location(pickup_location)
    robot.close_gripper()
    robot.move_to_location(safe_location)


def place_object(
    robot: DeviceProxy, safe_location: str, place_location: str
) -> None:
    """Fig. 5's ``*_place_object`` helper: stage, descend, open, retreat."""
    robot.move_to_location(safe_location)
    robot.move_to_location(place_location)
    robot.open_gripper()
    robot.move_to_location(safe_location)


# ---------------------------------------------------------------------------
# The Fig. 5 testbed workflow
# ---------------------------------------------------------------------------


def build_testbed_workflow(proxies: Dict[str, DeviceProxy]) -> List[ScriptLine]:
    """The safe testbed workflow of Fig. 5 (plus a symmetric Ned2 tail).

    Line ids track the figure's annotated lines: ``open_door_after_dose``
    is Fig. 5 line 23 (omitted by Bug A), ``pick_grid`` is line 15
    (omitted by Bug C), and so on.
    """
    viperx = proxies["viperx"]
    ned2 = proxies["ned2"]
    dosing = proxies["dosing_device"]
    vial = proxies["vial_t1"]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn: Callable[[], Any]) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    add(
        "open_door_initial",
        'dosing_device.set_door("state", "open")',
        lambda: dosing.set_door("state", "open"),
    )
    add("decap_vial", "vial.decap_vial()", lambda: vial.decap_vial())
    add("home_1", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "pick_grid",  # Fig. 5 line 15 — omitted by Bug C
        "viperx_pick_up_object(viperx, viperx_grid, vial)",
        lambda: pick_up_object(viperx, "grid_nw_viperx_safe", "grid_nw_viperx"),
    )
    add(
        "place_dosing",  # Fig. 5 line 16
        "viperx_place_object(viperx, viperx_dosing_device, vial)",
        lambda: _place_into_dosing(viperx),
    )
    add("home_2", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "close_door_before_dose",
        'dosing_device.set_door("state", "closed")',
        lambda: dosing.set_door("state", "closed"),
    )
    add(
        "run_dosing",
        "dosing_device.run_action(delay=3, quantity=5)",
        lambda: dosing.run_action(delay=3, quantity=5),
    )
    add(
        "stop_dosing",
        "dosing_device.stop_action(delay=0)",
        lambda: dosing.stop_action(delay=0),
    )
    add(
        "open_door_after_dose",  # Fig. 5 line 23 — omitted by Bug A
        'dosing_device.set_door("state", "open")',
        lambda: dosing.set_door("state", "open"),
    )
    add(
        "pick_dosing",  # Fig. 5 line 25
        "viperx_pick_up_object(viperx, viperx_dosing_device, vial)",
        lambda: _pick_from_dosing(viperx),
    )
    add(
        "place_grid",  # Fig. 5 line 26
        "viperx_place_object(viperx, viperx_grid, vial)",
        lambda: place_object(viperx, "grid_nw_viperx_safe", "grid_nw_viperx"),
    )
    add(
        "close_door_final",
        'dosing_device.set_door("state", "closed")',
        lambda: dosing.set_door("state", "closed"),
    )
    add("home_3", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "sleep_viperx",
        "viperx.arm.go_to_sleep_pose()",
        lambda: viperx.go_to_sleep_pose(),
    )
    add(
        "ned2_pick_grid",  # Fig. 5 line 35
        "ned2_pick_up_object(ned2, ned2_grid, vial)",
        lambda: pick_up_object(ned2, "grid_ne_ned2_safe", "grid_ne_ned2"),
    )
    add(
        "ned2_place_grid",
        "ned2_place_object(ned2, ned2_grid, vial)",
        lambda: place_object(ned2, "grid_ne_ned2_safe", "grid_ne_ned2"),
    )
    add("ned2_sleep", "ned2.go_to_sleep_pose()", lambda: ned2.go_to_sleep_pose())
    return lines


def _place_into_dosing(viperx: DeviceProxy) -> None:
    """Approach, enter, set the vial down, retreat, leave."""
    viperx.move_to_location("dosing_approach_viperx")
    viperx.move_to_location("dosing_safe_viperx")
    viperx.move_to_location("dosing_pickup_viperx")
    viperx.open_gripper()
    viperx.move_to_location("dosing_safe_viperx")
    viperx.move_to_location("dosing_approach_viperx")


def _pick_from_dosing(viperx: DeviceProxy) -> None:
    """Approach, enter, grasp the vial, retreat, leave."""
    viperx.move_to_location("dosing_approach_viperx")
    viperx.move_to_location("dosing_safe_viperx")
    viperx.move_to_location("dosing_pickup_viperx")
    viperx.close_gripper()
    viperx.move_to_location("dosing_safe_viperx")
    viperx.move_to_location("dosing_approach_viperx")


def pick_up_object_reordered(
    robot: DeviceProxy, safe_location: str, pickup_location: str
) -> None:
    """The §IV category-3 function-definition bug: "if commands
    open_gripper() and close_gripper are reordered" — the jaws close at
    the staging height and open at the vial, so nothing is grasped and
    no rule has the information to notice."""
    robot.move_to_location(safe_location)
    robot.close_gripper()
    robot.move_to_location(pickup_location)
    robot.open_gripper()
    robot.move_to_location(safe_location)


def place_into_dosing_no_exit(viperx: DeviceProxy) -> None:
    """A buggy place helper that forgets to retreat: the arm is left
    inside the dosing device when the script closes the door (the Rule 2
    scenario of the §IV door-interaction category)."""
    viperx.move_to_location("dosing_approach_viperx")
    viperx.move_to_location("dosing_safe_viperx")
    viperx.move_to_location("dosing_pickup_viperx")
    viperx.open_gripper()


def build_centrifuge_workflow(
    proxies: Dict[str, DeviceProxy], spin_rpm: float = 3000.0
) -> List[ScriptLine]:
    """A testbed centrifugation leg: cap the (pre-filled) vial, ferry it
    into the mock centrifuge, spin, and return it.  Exercises the lid
    rules (G9/G10), the spin threshold (G11), and the Table IV custom
    rules at place time."""
    viperx = proxies["viperx"]
    centrifuge = proxies["centrifuge"]
    vial = proxies["vial_t1"]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn: Callable[[], Any]) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    add("cap_vial", "vial.cap_vial()", lambda: vial.cap_vial())
    add("home_1", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "pick_grid",
        "viperx_pick_up_object(viperx, viperx_grid, vial)",
        lambda: pick_up_object(viperx, "grid_nw_viperx_safe", "grid_nw_viperx"),
    )
    add(
        "place_centrifuge",
        "viperx_place_object(viperx, viperx_centrifuge, vial)",
        lambda: place_object(
            viperx, "centrifuge_approach_viperx", "centrifuge_slot_viperx"
        ),
    )
    add("home_2", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "close_lid",
        'centrifuge.set_door("state", "closed")',
        lambda: centrifuge.set_door("state", "closed"),
    )
    add(
        "spin",
        f"centrifuge.start_action({spin_rpm:g})",
        lambda: centrifuge.start_action(spin_rpm),
    )
    add("stop_spin", "centrifuge.stop_action()", lambda: centrifuge.stop_action())
    add(
        "open_lid",
        'centrifuge.set_door("state", "open")',
        lambda: centrifuge.set_door("state", "open"),
    )
    add(
        "pick_centrifuge",
        "viperx_pick_up_object(viperx, viperx_centrifuge, vial)",
        lambda: pick_up_object(
            viperx, "centrifuge_approach_viperx", "centrifuge_slot_viperx"
        ),
    )
    add(
        "place_grid",
        "viperx_place_object(viperx, viperx_grid, vial)",
        lambda: place_object(viperx, "grid_nw_viperx_safe", "grid_nw_viperx"),
    )
    add("home_3", "viperx.arm.go_to_home_pose()", lambda: viperx.go_to_home_pose())
    add(
        "sleep_viperx",
        "viperx.arm.go_to_sleep_pose()",
        lambda: viperx.go_to_sleep_pose(),
    )
    return lines


def build_crystallization_workflow(
    proxies: Dict[str, DeviceProxy],
    amount_mg: float = 4.0,
    solvent_ml: float = 3.0,
    shake_rpm: float = 800.0,
    vial_name: str = "vial_2",
) -> List[ScriptLine]:
    """A second Hein production workflow: a crystallization screen.

    Doses solid behind the glass door, adds solvent on the hotplate, then
    agitates the sample on the **thermoshaker** (the deck device the
    solubility run never touches), and returns the vial.  Uses the second
    grid vial so it can run back-to-back with the solubility experiment.
    """
    ur3e = proxies["ur3e"]
    dosing = proxies["dosing_device"]
    pump = proxies["syringe_pump"]
    shaker = proxies["thermoshaker"]
    vial = proxies[vial_name]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn: Callable[[], Any]) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    add("decap", "vial.decap_vial()", lambda: vial.decap_vial())
    add("open_door", "dosing_device.open_door()", lambda: dosing.open_door())
    add("stage_grid", "robot.move_to_location(grid_a2_safe)",
        lambda: ur3e.move_to_location("grid_a2_safe"))
    add("pick_grid", "robot.pick_up_vial(grid_a2)", lambda: ur3e.pick_up_vial("grid_a2"))
    add("lift_grid", "robot.move_to_location(grid_a2_safe)",
        lambda: ur3e.move_to_location("grid_a2_safe"))
    add("approach_dosing", "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"))
    add("place_dosing", "robot.place_vial(dosing_interior)",
        lambda: ur3e.place_vial("dosing_interior"))
    add("exit_dosing", "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"))
    add("close_door", "dosing_device.close_door()", lambda: dosing.close_door())
    add("dose_solid", f"dosing_device.doseSolid({amount_mg:g})",
        lambda: dosing.dose_solid(amount_mg))
    add("stop_dosing", "dosing_device.stop_action()", lambda: dosing.stop_action())
    add("reopen_door", "dosing_device.open_door()", lambda: dosing.open_door())
    add("approach_dosing_2", "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"))
    add("pick_dosing", "robot.pick_up_vial(dosing_interior)",
        lambda: ur3e.pick_up_vial("dosing_interior"))
    add("exit_dosing_2", "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"))
    add("close_door_2", "dosing_device.close_door()", lambda: dosing.close_door())

    # Solvent on the hotplate dispense point, then agitation on the shaker.
    add("stage_hotplate", "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"))
    add("place_hotplate", "robot.place_vial(hotplate_top)",
        lambda: ur3e.place_vial("hotplate_top"))
    add("clear_hotplate", "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"))
    add("dose_solvent", f"syringe_pump.doseSolvent({solvent_ml:g})",
        lambda: pump.dose_solvent(solvent_ml))
    add("pick_hotplate", "robot.pick_up_vial(hotplate_top)",
        lambda: ur3e.pick_up_vial("hotplate_top"))
    add("lift_hotplate", "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"))
    add("stage_shaker", "robot.move_to_location(shaker_safe)",
        lambda: ur3e.move_to_location("shaker_safe"))
    add("place_shaker", "robot.place_vial(shaker_top)",
        lambda: ur3e.place_vial("shaker_top"))
    add("clear_shaker", "robot.move_to_location(shaker_safe)",
        lambda: ur3e.move_to_location("shaker_safe"))
    add("shake", f"thermoshaker.shake({shake_rpm:g})", lambda: shaker.shake(shake_rpm))
    add("stop_shake", "thermoshaker.stop_action()", lambda: shaker.stop_action())

    # Return the sample to the grid.
    add("restage_shaker", "robot.move_to_location(shaker_safe)",
        lambda: ur3e.move_to_location("shaker_safe"))
    add("pick_shaker", "robot.pick_up_vial(shaker_top)",
        lambda: ur3e.pick_up_vial("shaker_top"))
    add("lift_shaker", "robot.move_to_location(shaker_safe)",
        lambda: ur3e.move_to_location("shaker_safe"))
    add("restage_grid", "robot.move_to_location(grid_a2_safe)",
        lambda: ur3e.move_to_location("grid_a2_safe"))
    add("return_vial", "robot.place_vial(grid_a2)", lambda: ur3e.place_vial("grid_a2"))
    add("cap", "vial.cap_vial()", lambda: vial.cap_vial())
    add("home", "robot.go_to_home_pose()", lambda: ur3e.go_to_home_pose())
    return lines


# ---------------------------------------------------------------------------
# The Fig. 1(b) production solubility workflow
# ---------------------------------------------------------------------------


def build_solubility_workflow(
    proxies: Dict[str, DeviceProxy],
    amount_mg: float = 5.0,
    initial_solvent_ml: float = 4.0,
    temperature: float = 60.0,
    dissolution_rounds: int = 2,
    centrifuge_rpm: float = 3000.0,
) -> List[ScriptLine]:
    """The automated solubility measurement of Fig. 1(b), extended with
    the centrifugation step that exercises the Table IV custom rules."""
    ur3e = proxies["ur3e"]
    dosing = proxies["dosing_device"]
    pump = proxies["syringe_pump"]
    hotplate = proxies["hotplate"]
    centrifuge = proxies["centrifuge"]
    vial = proxies["vial_1"]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn: Callable[[], Any]) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    # doseSolid(amount): open door, ferry the vial in, dose, ferry it out.
    add("decap", "vial.decap_vial()", lambda: vial.decap_vial())
    add("open_door_1", "dosing_device.open_door()", lambda: dosing.open_door())
    add(
        "stage_grid",
        "robot.move_to_location(grid_a1_safe)",
        lambda: ur3e.move_to_location("grid_a1_safe"),
    )
    add(
        "pick_vial_grid",
        "robot.pick_up_vial(grid_a1)",
        lambda: ur3e.pick_up_vial("grid_a1"),
    )
    add(
        "lift_grid",
        "robot.move_to_location(grid_a1_safe)",
        lambda: ur3e.move_to_location("grid_a1_safe"),
    )
    add(
        "approach_dosing",
        "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"),
    )
    add(
        "place_vial_dosing",
        "robot.place_vial(dosing_interior)",
        lambda: ur3e.place_vial("dosing_interior"),
    )
    add(
        "exit_dosing_1",
        "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"),
    )
    add("home_1", "robot.go_to_home_pose()", lambda: ur3e.go_to_home_pose())
    add("close_door_1", "dosing_device.close_door()", lambda: dosing.close_door())
    add(
        "dose_solid",
        f"dosing_device.doseSolid({amount_mg:g})",
        lambda: dosing.dose_solid(amount_mg),
    )
    add("stop_dosing", "dosing_device.stop_action()", lambda: dosing.stop_action())
    add("open_door_2", "dosing_device.open_door()", lambda: dosing.open_door())
    add(
        "approach_dosing_2",
        "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"),
    )
    add(
        "pick_vial_dosing",
        "robot.pick_up_vial(dosing_interior)",
        lambda: ur3e.pick_up_vial("dosing_interior"),
    )
    add(
        "exit_dosing_2",
        "robot.move_to_location(dosing_approach)",
        lambda: ur3e.move_to_location("dosing_approach"),
    )
    add("close_door_2", "dosing_device.close_door()", lambda: dosing.close_door())

    # Move to the hotplate and run the dissolution loop.
    add(
        "stage_hotplate",
        "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"),
    )
    add(
        "place_vial_hotplate",
        "robot.place_vial(hotplate_top)",
        lambda: ur3e.place_vial("hotplate_top"),
    )
    add(
        "clear_hotplate",
        "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"),
    )
    add(
        "dose_initial_solvent",
        f"syringe_pump.doseInitialSolvent({initial_solvent_ml:g})",
        lambda: pump.dose_initial_solvent(initial_solvent_ml),
    )
    add(
        "stir_initial",
        f"hotplate.stirSolution({temperature:g})",
        lambda: hotplate.stir_solution(temperature),
    )
    add("stop_stir_initial", "hotplate.stop_action()", lambda: hotplate.stop_action())
    for round_no in range(1, dissolution_rounds + 1):
        add(
            f"dose_solvent_{round_no}",
            "syringe_pump.doseSolvent(2)",
            lambda: pump.dose_solvent(2.0),
        )
        add(
            f"stir_{round_no}",
            f"hotplate.stirSolution({temperature:g})",
            lambda: hotplate.stir_solution(temperature),
        )
        add(
            f"stop_stir_{round_no}",
            "hotplate.stop_action()",
            lambda: hotplate.stop_action(),
        )

    # Centrifugation (exercises Table IV: both phases, red dot, stopper).
    add(
        "pick_vial_hotplate",
        "robot.pick_up_vial(hotplate_top)",
        lambda: ur3e.pick_up_vial("hotplate_top"),
    )
    add(
        "lift_hotplate",
        "robot.move_to_location(hotplate_safe)",
        lambda: ur3e.move_to_location("hotplate_safe"),
    )
    add("cap", "vial.cap_vial()", lambda: vial.cap_vial())
    add(
        "approach_centrifuge",
        "robot.move_to_location(centrifuge_approach)",
        lambda: ur3e.move_to_location("centrifuge_approach"),
    )
    add(
        "place_vial_centrifuge",
        "robot.place_vial(centrifuge_slot)",
        lambda: ur3e.place_vial("centrifuge_slot"),
    )
    add(
        "exit_centrifuge",
        "robot.move_to_location(centrifuge_approach)",
        lambda: ur3e.move_to_location("centrifuge_approach"),
    )
    add("close_lid", "centrifuge.close_door()", lambda: centrifuge.close_door())
    add(
        "spin",
        f"centrifuge.start_action({centrifuge_rpm:g})",
        lambda: centrifuge.start_action(centrifuge_rpm),
    )
    add("stop_spin", "centrifuge.stop_action()", lambda: centrifuge.stop_action())
    add("open_lid", "centrifuge.open_door()", lambda: centrifuge.open_door())
    add(
        "approach_centrifuge_2",
        "robot.move_to_location(centrifuge_approach)",
        lambda: ur3e.move_to_location("centrifuge_approach"),
    )
    add(
        "pick_vial_centrifuge",
        "robot.pick_up_vial(centrifuge_slot)",
        lambda: ur3e.pick_up_vial("centrifuge_slot"),
    )
    add(
        "exit_centrifuge_2",
        "robot.move_to_location(centrifuge_approach)",
        lambda: ur3e.move_to_location("centrifuge_approach"),
    )
    add(
        "return_stage",
        "robot.move_to_location(grid_a1_safe)",
        lambda: ur3e.move_to_location("grid_a1_safe"),
    )
    add(
        "return_vial",
        "robot.place_vial(grid_a1)",
        lambda: ur3e.place_vial("grid_a1"),
    )
    add("home_final", "robot.go_to_home_pose()", lambda: ur3e.go_to_home_pose())
    return lines
