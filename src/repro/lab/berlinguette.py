"""The Berlinguette Lab deck — the §V-B generalization study.

The paper visited this materials-science lab to test whether RABIT's four
device types and general rulebase transfer.  The observed devices map as:

===========================  =================  =========================
Device                       RABIT type         Notes
===========================  =================  =========================
UR5e robot arm               Robot Arm          central transfer arm
Solid dosing device + door   Dosing System      like the Hein device
Decapper                     Action Device      capping/uncapping actions
Spin coater                  Action Device      start/stop spinning
Hotplate (spray station)     Action Device      same as Hein
Automated syringe pump       Dosing System      draws/doses solvent
Ultrasonic nozzles           Action Device      spraying / not spraying
XRF microscope               Action Device      x-ray emission + shutter
===========================  =================  =========================

Every device categorizes into the existing four types — the paper's
conclusion — and the Hein-specific Table IV rules are simply *not
enabled* here, demonstrating the general/custom split's portability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.clock import VirtualClock
from repro.core.config import build_model
from repro.core.interceptor import CommandRecord, DeviceProxy, instrument
from repro.core.model import RabitLabModel
from repro.core.monitor import Rabit, RabitOptions
from repro.devices.action_device import (
    Decapper,
    Hotplate,
    SpinCoater,
    UltrasonicNozzle,
    XRFStation,
)
from repro.devices.base import Device, DoorState
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice, SyringePump
from repro.devices.locations import LocationKind
from repro.devices.robot import RobotArmDevice
from repro.devices.world import LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity
from repro.geometry.walls import Workspace
from repro.kinematics.profiles import UR5E
from repro.simulator.extended import ExtendedSimulator

GEOMETRY: Dict[str, Dict[str, Any]] = {
    "platform": {"min": [-1.0, -1.0, -0.02], "max": [1.0, 1.0, 0.03], "surface": True},
    "grid": {"min": [0.35, -0.15, 0.0], "max": [0.60, 0.10, 0.05], "surface": False},
    "dosing_device": {"min": [-0.12, 0.40, 0.0], "max": [0.12, 0.64, 0.40], "surface": False},
    "decapper": {"min": [0.40, 0.35, 0.0], "max": [0.56, 0.51, 0.15], "surface": False},
    "spin_coater": {"min": [-0.55, -0.15, 0.0], "max": [-0.35, 0.05, 0.10], "surface": False},
    "hotplate": {"min": [-0.15, -0.60, 0.0], "max": [0.05, -0.40, 0.08], "surface": False},
    "syringe_pump": {"min": [-0.60, 0.30, 0.0], "max": [-0.45, 0.45, 0.35], "surface": False},
    "nozzle": {"min": [0.60, 0.20, 0.0], "max": [0.72, 0.32, 0.25], "surface": False},
    "xrf": {"min": [-0.72, -0.35, 0.0], "max": [-0.50, -0.15, 0.30], "surface": False},
}

LOCATIONS: Dict[str, Tuple[str, Optional[str], List[float]]] = {
    "bgrid_1": ("grid_slot", "grid", [0.42, -0.05, 0.14]),
    "bgrid_1_safe": ("free", None, [0.42, -0.05, 0.30]),
    "bgrid_2": ("grid_slot", "grid", [0.52, -0.05, 0.14]),
    "bgrid_2_safe": ("free", None, [0.52, -0.05, 0.30]),
    "bdosing_approach": ("device_approach", "dosing_device", [0.0, 0.32, 0.28]),
    "bdosing_interior": ("device_interior", "dosing_device", [0.0, 0.52, 0.14]),
    "decapper_slot": ("device_interior", "decapper", [0.48, 0.43, 0.22]),
    "decapper_safe": ("free", None, [0.48, 0.43, 0.35]),
    "coater_top": ("device_interior", "spin_coater", [-0.45, -0.05, 0.17]),
    "coater_safe": ("free", None, [-0.45, -0.05, 0.30]),
    "bhotplate_top": ("device_interior", "hotplate", [-0.05, -0.50, 0.15]),
    "bhotplate_safe": ("free", None, [-0.05, -0.50, 0.28]),
}


@dataclass
class BerlinguetteDeck:
    """The assembled Berlinguette R&D platform."""

    world: LabWorld
    devices: Dict[str, Device]
    vials: Dict[str, Vial]
    config: Dict[str, Any]
    model: RabitLabModel

    @property
    def ur5e(self) -> RobotArmDevice:
        """The central transfer arm."""
        arm = self.devices["ur5e"]
        assert isinstance(arm, RobotArmDevice)
        return arm

    def categorization(self) -> Dict[str, str]:
        """Device name -> RABIT device type (the §V-B mapping table)."""
        return {name: dev.kind.value for name, dev in self.devices.items()}


def build_berlinguette_deck(
    vial_names: Tuple[str, ...] = ("precursor_1", "precursor_2")
) -> BerlinguetteDeck:
    """Construct the Berlinguette deck with precursor vials on the rack."""
    world = LabWorld(
        "berlinguette",
        Workspace(bounds=Cuboid((-1.0, -1.0, -0.05), (1.0, 1.0, 1.4), name="blab_room")),
    )
    world.register_frame("ur5e", identity())

    boxes = {
        name: Cuboid(tuple(spec["min"]), tuple(spec["max"]), name=name)
        for name, spec in GEOMETRY.items()
    }
    world.add_surface(boxes["platform"])
    for name, (kind, device, coords) in LOCATIONS.items():
        world.locations.define(
            name, LocationKind(kind), coords={"ur5e": coords}, device=device
        )

    ur5e = RobotArmDevice("ur5e", UR5E, world)
    dosing = SolidDosingDevice(
        "dosing_device", world, max_dose_mg=10.0, door_initial=DoorState.CLOSED
    )
    decapper = Decapper("decapper", world)
    coater = SpinCoater("spin_coater", world, threshold=8000.0)
    hotplate = Hotplate("hotplate", world, threshold=150.0)
    pump = SyringePump("syringe_pump", world, dispense_location="coater_top")
    nozzle = UltrasonicNozzle("nozzle", world, threshold=50.0)
    xrf = XRFStation("xrf", world, threshold=50.0)

    world.add_device(ur5e)
    world.add_device(dosing, footprint=boxes["dosing_device"])
    world.add_device(decapper, footprint=boxes["decapper"])
    world.add_device(coater, footprint=boxes["spin_coater"])
    world.add_device(hotplate, footprint=boxes["hotplate"])
    world.add_device(pump, footprint=boxes["syringe_pump"])
    world.add_device(nozzle, footprint=boxes["nozzle"])
    world.add_device(xrf, footprint=boxes["xrf"])
    world.add_obstacle(boxes["grid"])  # passive fixture, not a device

    vials: Dict[str, Vial] = {}
    slots = ["bgrid_1", "bgrid_2"]
    for i, vial_name in enumerate(vial_names):
        vial = Vial(vial_name, capacity_solid_mg=10.0, capacity_liquid_ml=20.0)
        world.add_vial(vial, at_location=slots[i] if i < len(slots) else None)
        vials[vial_name] = vial

    devices: Dict[str, Device] = {
        "ur5e": ur5e,
        "dosing_device": dosing,
        "decapper": decapper,
        "spin_coater": coater,
        "hotplate": hotplate,
        "syringe_pump": pump,
        "nozzle": nozzle,
        "xrf": xrf,
        **vials,
    }
    config = _berlinguette_config(vial_names)
    model = build_model(config)
    return BerlinguetteDeck(
        world=world, devices=devices, vials=vials, config=config, model=model
    )


def _berlinguette_config(vial_names: Tuple[str, ...]) -> Dict[str, Any]:
    """The Berlinguette RABIT configuration.

    Notably: **no custom rules** — only the general rulebase, which is
    the generalization claim under test."""
    device_entries: List[Dict[str, Any]] = [
        {
            "name": "ur5e",
            "type": "robot_arm",
            "class": "RobotArmDevice",
            "frame": "ur5e",
            "link_radius": UR5E.link_radius,
            "gripper_clearance": RobotArmDevice.GRIPPER_CLEARANCE,
            "held_drop": RobotArmDevice.HELD_DROP,
        },
        {
            "name": "dosing_device",
            "type": "dosing_system",
            "class": "SolidDosingDevice",
            "door": {"present": True, "initial": "closed"},
            "load_location": "bdosing_interior",
        },
        {
            "name": "decapper",
            "type": "action_device",
            "class": "Decapper",
            "threshold": 1.0,
            "load_location": "decapper_slot",
            "requires_container": False,
        },
        {
            "name": "spin_coater",
            "type": "action_device",
            "class": "SpinCoater",
            "threshold": 8000.0,
            "load_location": "coater_top",
        },
        {
            "name": "hotplate",
            "type": "action_device",
            "class": "Hotplate",
            "threshold": 150.0,
            "load_location": "bhotplate_top",
        },
        {
            "name": "syringe_pump",
            "type": "dosing_system",
            "class": "SyringePump",
            "dispense_location": "coater_top",
        },
        {
            "name": "nozzle",
            "type": "action_device",
            "class": "UltrasonicNozzle",
            "threshold": 50.0,
            "requires_container": False,
        },
        {
            "name": "xrf",
            "type": "action_device",
            "class": "XRFStation",
            "threshold": 50.0,
            "door": {"present": True, "initial": "closed"},
            "requires_container": False,
        },
    ]
    for vial_name in vial_names:
        device_entries.append(
            {
                "name": vial_name,
                "type": "container",
                "class": "Vial",
                "capacity_solid_mg": 10.0,
                "capacity_liquid_ml": 20.0,
            }
        )
    return {
        "lab": "berlinguette",
        "devices": device_entries,
        "locations": [
            {"name": name, "kind": kind, "device": device, "coords": {"ur5e": list(coords)}}
            for name, (kind, device, coords) in LOCATIONS.items()
        ],
        "obstacles": [
            {
                "name": name,
                "surface": spec["surface"],
                "frames": {"ur5e": {"min": list(spec["min"]), "max": list(spec["max"])}},
            }
            for name, spec in GEOMETRY.items()
        ],
        "workspace": {"ur5e": {"min": [-0.95, -0.95, 0.02], "max": [0.95, 0.95, 1.3]}},
        "custom_rules": [],
        "reliable_container_tracking": True,
    }


def make_berlinguette_rabit(
    deck: BerlinguetteDeck,
    options: Optional[RabitOptions] = None,
    use_extended_simulator: bool = False,
    clock: Optional[VirtualClock] = None,
) -> Tuple[Rabit, Dict[str, DeviceProxy], List[CommandRecord]]:
    """Wire RABIT onto the Berlinguette deck."""
    opts = options or RabitOptions.modified()
    if use_extended_simulator and not opts.use_extended_simulator:
        from dataclasses import replace

        opts = replace(opts, use_extended_simulator=True)
    checker = (
        ExtendedSimulator({"ur5e": deck.ur5e}) if opts.use_extended_simulator else None
    )
    rabit = Rabit(
        model=deck.model,
        devices=deck.devices,
        options=opts,
        trajectory_checker=checker,
        clock=clock,
    )
    for vial_name, vial in deck.vials.items():
        if vial.resting_at is not None:
            rabit.seed_tracked("container_at", vial_name, vial.resting_at)
        rabit.seed_tracked("container_solid", vial_name, vial.contents.solid_mg)
        rabit.seed_tracked("container_liquid", vial_name, vial.contents.liquid_ml)
    rabit.initialize()
    proxies, trace = instrument(deck.devices, rabit, clock=rabit.clock)
    return rabit, proxies, trace


def build_spray_coating_workflow(proxies: Dict[str, DeviceProxy], solvent_only: bool = False):
    """A §V-B workflow: decap a precursor vial, (optionally) dose solid,
    dose solvent at the coater, spin, spray, and return the vial.

    ``solvent_only=True`` reproduces the solvent-only coating runs whose
    traces *break* the Hein Lab's solids-before-liquids invariant — the
    reason that invariant classifies as a custom rule, not a general one.
    """
    from repro.lab.workflows import ScriptLine

    ur5e = proxies["ur5e"]
    dosing = proxies["dosing_device"]
    decapper = proxies["decapper"]
    coater = proxies["spin_coater"]
    pump = proxies["syringe_pump"]
    nozzle = proxies["nozzle"]

    lines: List[ScriptLine] = []

    def add(line_id: str, text: str, fn) -> None:
        lines.append(ScriptLine(line_id, text, fn))

    # Decap at the decapper station.
    add("stage_grid", "ur5e.move_to_location(bgrid_1_safe)", lambda: ur5e.move_to_location("bgrid_1_safe"))
    add("pick_grid", "ur5e.pick_up_vial(bgrid_1)", lambda: ur5e.pick_up_vial("bgrid_1"))
    add("lift_grid", "ur5e.move_to_location(bgrid_1_safe)", lambda: ur5e.move_to_location("bgrid_1_safe"))
    add("stage_decapper", "ur5e.move_to_location(decapper_safe)", lambda: ur5e.move_to_location("decapper_safe"))
    add("place_decapper", "ur5e.place_vial(decapper_slot)", lambda: ur5e.place_vial("decapper_slot"))
    add("clear_decapper", "ur5e.move_to_location(decapper_safe)", lambda: ur5e.move_to_location("decapper_safe"))
    add("decap", "decapper.decap()", lambda: decapper.decap())

    if not solvent_only:
        # Ferry into the dosing device for the solid precursor.
        add("pick_decapper", "ur5e.pick_up_vial(decapper_slot)", lambda: ur5e.pick_up_vial("decapper_slot"))
        add("lift_decapper", "ur5e.move_to_location(decapper_safe)", lambda: ur5e.move_to_location("decapper_safe"))
        add("open_door", "dosing_device.open_door()", lambda: dosing.open_door())
        add("approach_dosing", "ur5e.move_to_location(bdosing_approach)", lambda: ur5e.move_to_location("bdosing_approach"))
        add("place_dosing", "ur5e.place_vial(bdosing_interior)", lambda: ur5e.place_vial("bdosing_interior"))
        add("exit_dosing", "ur5e.move_to_location(bdosing_approach)", lambda: ur5e.move_to_location("bdosing_approach"))
        add("close_door", "dosing_device.close_door()", lambda: dosing.close_door())
        add("dose_solid", "dosing_device.dose_solid(4)", lambda: dosing.dose_solid(4.0))
        add("stop_dose", "dosing_device.stop_action()", lambda: dosing.stop_action())
        add("reopen_door", "dosing_device.open_door()", lambda: dosing.open_door())
        add("approach_dosing_2", "ur5e.move_to_location(bdosing_approach)", lambda: ur5e.move_to_location("bdosing_approach"))
        add("pick_dosing", "ur5e.pick_up_vial(bdosing_interior)", lambda: ur5e.pick_up_vial("bdosing_interior"))
        add("exit_dosing_2", "ur5e.move_to_location(bdosing_approach)", lambda: ur5e.move_to_location("bdosing_approach"))
        add("close_door_2", "dosing_device.close_door()", lambda: dosing.close_door())
    else:
        add("pick_decapper", "ur5e.pick_up_vial(decapper_slot)", lambda: ur5e.pick_up_vial("decapper_slot"))
        add("lift_decapper", "ur5e.move_to_location(decapper_safe)", lambda: ur5e.move_to_location("decapper_safe"))

    # To the spin coater: dose solvent, spin, spray.
    add("stage_coater", "ur5e.move_to_location(coater_safe)", lambda: ur5e.move_to_location("coater_safe"))
    add("place_coater", "ur5e.place_vial(coater_top)", lambda: ur5e.place_vial("coater_top"))
    add("clear_coater", "ur5e.move_to_location(coater_safe)", lambda: ur5e.move_to_location("coater_safe"))
    add("dose_solvent", "syringe_pump.dose_solvent(3)", lambda: pump.dose_solvent(3.0))
    add("spin", "spin_coater.start_action(2000)", lambda: coater.start_action(2000.0))
    add("stop_spin", "spin_coater.stop_action()", lambda: coater.stop_action())
    add("spray", "nozzle.start_action(30)", lambda: nozzle.start_action(30.0))
    add("stop_spray", "nozzle.stop_action()", lambda: nozzle.stop_action())

    # Return the vial to the rack.
    add("pick_coater", "ur5e.pick_up_vial(coater_top)", lambda: ur5e.pick_up_vial("coater_top"))
    add("lift_coater", "ur5e.move_to_location(coater_safe)", lambda: ur5e.move_to_location("coater_safe"))
    add("restage_grid", "ur5e.move_to_location(bgrid_1_safe)", lambda: ur5e.move_to_location("bgrid_1_safe"))
    add("return_vial", "ur5e.place_vial(bgrid_1)", lambda: ur5e.place_vial("bgrid_1"))
    add("home", "ur5e.go_to_home_pose()", lambda: ur5e.go_to_home_pose())
    return lines
