"""Concrete labs, decks, and experiment workflows.

- :mod:`repro.lab.stage` -- the three-stage deployment framework
  (Simulator / Testbed / Production, Table I).
- :mod:`repro.lab.hein` -- the Hein Lab production deck of Fig. 1(a):
  UR3e + solid dosing device, syringe pump, centrifuge, thermoshaker,
  hotplate.
- :mod:`repro.lab.workflows` -- the automated solubility experiment of
  Fig. 1(b) and the Fig. 5 testbed workflow with its script helpers.
- :mod:`repro.lab.berlinguette` -- the Berlinguette Lab deck used for the
  §V-B generalization study.
- :mod:`repro.lab.scenarios` -- one controlled violation scenario per
  rule in Tables III and IV (the §IV controlled experiments).

The testbed deck itself lives in :mod:`repro.testbed.deck` next to its
noise and calibration models.
"""

from repro.lab.stage import Stage, StageProfile, STAGE_PROFILES
from repro.lab.hein import HeinDeck, build_hein_deck, make_hein_rabit
from repro.lab.pipeline import (
    PipelineResult,
    StageOutcome,
    ThreeStageValidator,
)

__all__ = [
    "Stage",
    "StageProfile",
    "STAGE_PROFILES",
    "HeinDeck",
    "build_hein_deck",
    "make_hein_rabit",
    "PipelineResult",
    "StageOutcome",
    "ThreeStageValidator",
]
