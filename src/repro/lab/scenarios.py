"""Controlled rule-violation scenarios (§IV's controlled experiments).

"We deliberately executed unsafe scenarios designed to trigger each rule
in the rulebase. ... RABIT successfully detected unsafe behavior in all
these scenarios."

One scenario per rule in Table III (G1-G11) and Table IV (C1-C4), each on
a fresh Hein production deck: a safe setup prefix followed by exactly one
command that violates the rule.  A scenario *passes reproduction* when
RABIT stops that command with an alert attributing the right rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import Alert, SafetyViolation
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit


@dataclass
class ScenarioOutcome:
    """Result of attempting one unsafe scenario."""

    rule_id: str
    description: str
    alert: Optional[Alert]

    @property
    def detected(self) -> bool:
        """Whether RABIT stopped the unsafe command at all."""
        return self.alert is not None

    @property
    def attributed_correctly(self) -> bool:
        """Whether the alert names the rule the scenario violates."""
        return self.alert is not None and self.alert.rule_id == self.rule_id


@dataclass(frozen=True)
class RuleScenario:
    """One unsafe scenario: setup prefix + single violating command."""

    rule_id: str
    description: str
    #: Receives (proxies, deck); performs safe setup then the violation.
    #: The violation must be the only command that can raise.
    script: Callable[[Dict, object], None]
    #: Deck preparation before RABIT attaches (e.g. pre-filled vials).
    prepare: Optional[Callable[[object], None]] = None


def run_scenario(
    scenario: RuleScenario, options: Optional[RabitOptions] = None
) -> ScenarioOutcome:
    """Execute *scenario* on a fresh Hein deck under *options*."""
    deck = build_hein_deck()
    if scenario.prepare is not None:
        scenario.prepare(deck)
    rabit, proxies, _ = make_hein_rabit(deck, options=options or RabitOptions.modified())
    alert: Optional[Alert] = None
    try:
        scenario.script(proxies, deck)
    except SafetyViolation as stop:
        alert = stop.alert
    return ScenarioOutcome(
        rule_id=scenario.rule_id, description=scenario.description, alert=alert
    )


# ---------------------------------------------------------------------------
# Setup helpers (safe prefixes; they must never alert on a correct deck)
# ---------------------------------------------------------------------------


def _ferry_vial_to_dosing(px: Dict) -> None:
    """Open the door, carry vial_1 from the grid into the dosing device,
    retreat, leaving the vial inside and the door open."""
    px["dosing_device"].open_door()
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].pick_up_vial("grid_a1")
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].move_to_location("dosing_approach")
    px["ur3e"].place_vial("dosing_interior")
    px["ur3e"].move_to_location("dosing_approach")


def _ferry_vial_to_hotplate(px: Dict) -> None:
    """Carry vial_1 (decapped) from the grid onto the hotplate."""
    px["vial_1"].decap_vial()
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].pick_up_vial("grid_a1")
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].move_to_location("hotplate_safe")
    px["ur3e"].place_vial("hotplate_top")
    px["ur3e"].move_to_location("hotplate_safe")


def _carry_vial_toward_centrifuge(px: Dict) -> None:
    """Pick vial_1 up and stage at the centrifuge approach point."""
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].pick_up_vial("grid_a1")
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].move_to_location("centrifuge_approach")


def _prefill(solid: float = 0.0, liquid: float = 0.0, stoppered: bool = True):
    def prepare(deck) -> None:
        vial = deck.vials["vial_1"]
        vial.contents.solid_mg = solid
        vial.contents.liquid_ml = liquid
        if not stoppered:
            vial.decap_vial()

    return prepare


# ---------------------------------------------------------------------------
# Table III scenarios
# ---------------------------------------------------------------------------

GENERAL_SCENARIOS: Tuple[RuleScenario, ...] = (
    RuleScenario(
        "G1",
        "Move the arm inside the dosing device while its door is closed "
        "(the testbed controlled experiment with ViperX)",
        lambda px, deck: px["ur3e"].move_to_location("dosing_interior"),
    ),
    RuleScenario(
        "G2",
        "Close the dosing device door while the arm is still inside",
        lambda px, deck: (
            px["dosing_device"].open_door(),
            px["ur3e"].move_to_location("dosing_approach"),
            px["ur3e"].move_to_location("dosing_interior"),
            px["dosing_device"].close_door(),
        ),
    ),
    RuleScenario(
        "G3",
        "Move the arm into the vial grid (the simulator controlled "
        "experiment with UR3e)",
        lambda px, deck: px["ur3e"].move_to_location([0.30, -0.05, 0.02]),
    ),
    RuleScenario(
        "G4",
        "Pick up a second vial while already holding one",
        lambda px, deck: (
            px["ur3e"].move_to_location("grid_a1_safe"),
            px["ur3e"].pick_up_vial("grid_a1"),
            px["ur3e"].move_to_location("grid_a1_safe"),
            px["ur3e"].move_to_location("grid_a2_safe"),
            px["ur3e"].pick_up_vial("grid_a2"),
        ),
    ),
    RuleScenario(
        "G5",
        "Start the hotplate with no container on it",
        lambda px, deck: px["hotplate"].stir_solution(60),
    ),
    RuleScenario(
        "G6",
        "Stir an empty vial on the hotplate",
        lambda px, deck: (
            _ferry_vial_to_hotplate(px),
            px["hotplate"].stir_solution(60),
        ),
    ),
    RuleScenario(
        "G7",
        "Dose solid into a vial whose stopper is still on",
        lambda px, deck: (
            _ferry_vial_to_dosing(px),
            px["dosing_device"].close_door(),
            px["dosing_device"].dose_solid(5),
        ),
    ),
    RuleScenario(
        "G8",
        "Dose more solid than the vial's remaining capacity "
        "(participant P's over-dose scenario)",
        lambda px, deck: (
            px["vial_1"].decap_vial(),
            _ferry_vial_to_dosing(px),
            px["dosing_device"].close_door(),
            px["dosing_device"].dose_solid(15),
        ),
    ),
    RuleScenario(
        "G9",
        "Start dosing while the device door is open",
        lambda px, deck: (
            px["vial_1"].decap_vial(),
            _ferry_vial_to_dosing(px),
            px["dosing_device"].dose_solid(5),
        ),
    ),
    RuleScenario(
        "G10",
        "Open the dosing device door while it is running",
        lambda px, deck: (
            px["vial_1"].decap_vial(),
            _ferry_vial_to_dosing(px),
            px["dosing_device"].close_door(),
            px["dosing_device"].dose_solid(5),
            px["dosing_device"].open_door(),
        ),
    ),
    RuleScenario(
        "G11",
        "Set the hotplate beyond its temperature threshold (the Hein "
        "researchers' headline safety criterion)",
        lambda px, deck: (
            _ferry_vial_to_hotplate(px),
            px["hotplate"].stir_solution(200),
        ),
        prepare=_prefill(solid=5.0),
    ),
)

# ---------------------------------------------------------------------------
# Table IV scenarios
# ---------------------------------------------------------------------------

CUSTOM_SCENARIOS: Tuple[RuleScenario, ...] = (
    RuleScenario(
        "C1",
        "Dose solvent into a vial that contains no solid yet",
        lambda px, deck: (
            _ferry_vial_to_hotplate(px),
            px["syringe_pump"].dose_initial_solvent(4),
        ),
    ),
    RuleScenario(
        "C2",
        "Load a solid-only vial into the centrifuge",
        lambda px, deck: (
            _carry_vial_toward_centrifuge(px),
            px["ur3e"].place_vial("centrifuge_slot"),
        ),
        prepare=_prefill(solid=5.0),
    ),
    RuleScenario(
        "C3",
        "Load the centrifuge while its red dot faces East",
        lambda px, deck: (
            px["centrifuge"].rotate_rotor("E"),
            _carry_vial_toward_centrifuge(px),
            px["ur3e"].place_vial("centrifuge_slot"),
        ),
        prepare=_prefill(solid=5.0, liquid=5.0),
    ),
    RuleScenario(
        "C4",
        "Load an unstoppered vial into the centrifuge",
        lambda px, deck: (
            _carry_vial_toward_centrifuge(px),
            px["ur3e"].place_vial("centrifuge_slot"),
        ),
        prepare=_prefill(solid=5.0, liquid=5.0, stoppered=False),
    ),
)

ALL_SCENARIOS: Tuple[RuleScenario, ...] = GENERAL_SCENARIOS + CUSTOM_SCENARIOS


# ---------------------------------------------------------------------------
# Testbed-side controlled scenarios (§IV ran on both platforms)
# ---------------------------------------------------------------------------


def run_testbed_scenario(
    scenario: RuleScenario, options: Optional[RabitOptions] = None
) -> ScenarioOutcome:
    """Execute a testbed scenario on a fresh dual-arm testbed deck."""
    from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

    deck = build_testbed_deck(noise_sigma=0.003)
    if scenario.prepare is not None:
        scenario.prepare(deck)
    rabit, proxies, _ = make_testbed_rabit(
        deck, options=options or RabitOptions.modified()
    )
    alert: Optional[Alert] = None
    try:
        scenario.script(proxies, deck)
    except SafetyViolation as stop:
        alert = stop.alert
    return ScenarioOutcome(
        rule_id=scenario.rule_id, description=scenario.description, alert=alert
    )


#: The paper's named testbed controlled experiments: "On the testbed, we
#: attempted to move ViperX inside the dosing device while its door was
#: closed, violating rule 1", plus testbed analogues of the geometric and
#: door rules on the low-fidelity mockups.
TESTBED_SCENARIOS: Tuple[RuleScenario, ...] = (
    RuleScenario(
        "G1",
        "Move ViperX inside the (mock) dosing device while its door is "
        "closed — the paper's named testbed experiment",
        lambda px, deck: px["viperx"].move_to_location("dosing_pickup_viperx"),
    ),
    RuleScenario(
        "G3",
        "Drive ViperX into the shared vial grid",
        lambda px, deck: px["viperx"].move_to_location([0.5, 0.0, 0.02]),
    ),
    RuleScenario(
        "G9",
        "Run the mock dosing device with its door open",
        lambda px, deck: (
            px["dosing_device"].set_door("state", "open"),
            px["dosing_device"].run_action(delay=0, quantity=5),
        ),
    ),
    RuleScenario(
        "G11",
        "Spin the mock centrifuge beyond its threshold",
        lambda px, deck: (
            px["centrifuge"].set_door("state", "closed"),
            px["centrifuge"].start_action(9000.0),
        ),
    ),
)


def run_all_scenarios(
    options: Optional[RabitOptions] = None,
    scenarios: Tuple[RuleScenario, ...] = ALL_SCENARIOS,
) -> List[ScenarioOutcome]:
    """Run every controlled scenario; returns outcomes in rule order."""
    return [run_scenario(s, options=options) for s in scenarios]
