"""Monte Carlo bug injection — the study the paper says it could not run.

§IV: "without exhaustive testing (which requires generating large bug
datasets — a challenging task in itself), we do not know if these numbers
are representative of what we might see in practice."

On a simulated deck the large bug dataset is cheap: this module samples
random single-edit mutations of the safe Fig. 5 workflow — the same three
edit kinds the naive programmer used (delete a command, reorder commands,
perturb an argument/coordinate) — runs each mutant end to end, and scores
RABIT against *ground truth*:

- a mutant is **harmful** when the unmonitored world records damage (or a
  device fault halts it);
- RABIT's verdict is **detected** when the monitored run stops on an alert.

The confusion matrix gives an estimated detection rate over a much larger
sample than 16 hand-made bugs, plus the empirical false-alarm rate on
*benign* mutants (mutations that change nothing safety-relevant), which
the paper's zero-false-positive claim predicts to be zero.

Determinism contract: mutant *i* of a sweep seeded with *s* is a pure
function of ``(s, i)`` — each sample owns an RNG derived via
``SeedSequence(s, spawn_key=(i,))`` rather than drawing from one shared
sequential stream.  Growing the sample count, reordering execution, or
sharding the sweep across a process pool (``workers > 1`` delegates to
:mod:`repro.parallel`) therefore never changes an earlier outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interceptor import instrument
from repro.core.monitor import RabitOptions
from repro.faults.mutation import DeleteLine, Mutation, MutateLocation, SwapLines
from repro.lab.workflows import build_testbed_workflow, run_workflow
from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

#: Script lines that must not be sampled for deletion/reordering because
#: removing them only truncates the tail (no safety semantics) — keeps the
#: mutant population focused on meaningful edits.
_STRUCTURAL_TAIL = {"ned2_sleep"}

#: Locations whose coordinates the perturbation operator may edit, with
#: the frame they are expressed in.
_PERTURBABLE_LOCATIONS: Tuple[Tuple[str, str], ...] = (
    ("grid_nw_viperx", "viperx"),
    ("grid_nw_viperx_safe", "viperx"),
    ("dosing_approach_viperx", "viperx"),
    ("dosing_safe_viperx", "viperx"),
    ("dosing_pickup_viperx", "viperx"),
    ("grid_ne_ned2", "ned2"),
    ("grid_ne_ned2_safe", "ned2"),
)


@dataclass(frozen=True)
class MutantOutcome:
    """Ground truth vs. RABIT verdict for one sampled mutant."""

    seed: int
    description: str
    harmful: bool  # unmonitored ground truth recorded damage / fault
    detected: bool  # monitored run stopped on a RABIT alert
    damage_kinds: Tuple[str, ...]

    @property
    def classification(self) -> str:
        """Confusion-matrix cell for this mutant."""
        if self.harmful and self.detected:
            return "true_positive"
        if self.harmful and not self.detected:
            return "false_negative"
        if not self.harmful and self.detected:
            return "false_positive"
        return "true_negative"

    def as_dict(self) -> dict:
        """JSON-safe dict of every field (the JSONL export row)."""
        return {
            "index": self.seed,
            "description": self.description,
            "harmful": self.harmful,
            "detected": self.detected,
            "damage_kinds": list(self.damage_kinds),
            "classification": self.classification,
        }


@dataclass
class MonteCarloReport:
    """Aggregate of a mutant sweep."""

    outcomes: List[MutantOutcome] = field(default_factory=list)

    def count(self, cell: str) -> int:
        """Mutants in one confusion-matrix cell."""
        return sum(1 for o in self.outcomes if o.classification == cell)

    @property
    def harmful_total(self) -> int:
        """Mutants whose unmonitored run caused damage."""
        return sum(1 for o in self.outcomes if o.harmful)

    @property
    def detection_rate(self) -> float:
        """Detected fraction of harmful mutants."""
        if self.harmful_total == 0:
            return 0.0
        return self.count("true_positive") / self.harmful_total

    @property
    def false_alarm_rate(self) -> float:
        """Alert fraction of benign mutants (paper's claim: 0)."""
        benign = len(self.outcomes) - self.harmful_total
        if benign == 0:
            return 0.0
        return self.count("false_positive") / benign

    def canonical_bytes(self) -> bytes:
        """Canonical JSON serialization of every outcome field.

        The differential harness's equality witness: two sweeps agree iff
        these bytes agree, regardless of how either was executed.  Uses
        the shared :mod:`repro.trace.canon` serialization (sorted keys,
        compact separators, ASCII, NaN rejected)."""
        from repro.trace.canon import canonical_bytes

        return canonical_bytes([o.as_dict() for o in self.outcomes])


def _rng_for_sample(base_seed: int, index: int) -> np.random.Generator:
    """The RNG owned by mutant *index* of a sweep seeded with *base_seed*.

    Derived from ``(base_seed, index)`` alone, so every sample's stream is
    independent of how many other samples run, in what order, or in which
    process."""
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(index,)))


def reference_line_ids() -> List[str]:
    """Line ids of the safe Fig. 5 workflow that mutations may target.

    Built from a throwaway deck; pure and deterministic, so every worker
    process derives the identical list."""
    deck = build_testbed_deck()
    proxies, _ = instrument(deck.devices, rabit=None)
    return [
        line.line_id
        for line in build_testbed_workflow(proxies)
        if line.line_id not in _STRUCTURAL_TAIL
    ]


def _sample_mutation(rng: np.random.Generator, line_ids: Sequence[str]):
    """Sample one naive-programmer edit; returns (description, factory).

    The factory builds the Mutation fresh per run (mutations are
    stateless, but descriptions capture the sampled parameters)."""
    kind = rng.choice(["delete", "swap", "perturb"])
    if kind == "delete":
        target = str(rng.choice(line_ids))
        return f"delete {target}", lambda proxies: [DeleteLine(target)]
    if kind == "swap":
        index = int(rng.integers(0, len(line_ids) - 1))
        first, second = line_ids[index], line_ids[index + 1]
        return f"swap {first} <-> {second}", lambda proxies: [
            SwapLines(first, second)
        ]
    location, frame = _PERTURBABLE_LOCATIONS[
        int(rng.integers(0, len(_PERTURBABLE_LOCATIONS)))
    ]
    axis = int(rng.integers(0, 3))
    delta = float(rng.choice([-0.08, -0.04, 0.04, 0.08]))

    def factory(proxies, location=location, frame=frame, axis=axis, delta=delta):
        from repro.testbed.deck import LOCATIONS

        base = list(LOCATIONS[location][2][frame])
        base[axis] += delta
        return [MutateLocation(location, frame, tuple(base))]

    return f"perturb {location}.{'xyz'[axis]} by {delta:+.2f}", factory


def _run_mutant(mutation_factory, monitored: bool) -> Tuple[bool, Tuple[str, ...]]:
    """Run one mutant; returns (stopped_by_rabit, damage kinds)."""
    deck = build_testbed_deck(noise_sigma=0.003)
    if monitored:
        rabit, proxies, _ = make_testbed_rabit(deck, options=RabitOptions.modified())
    else:
        proxies, _ = instrument(deck.devices, rabit=None)
    lines = build_testbed_workflow(proxies)
    from repro.faults.mutation import apply_mutations

    lines = apply_mutations(lines, deck.world, mutation_factory(proxies))
    result = run_workflow(lines)
    damage = tuple(sorted({d.kind for d in deck.world.damage_log}))
    stopped = result.stopped_by_rabit if monitored else False
    # An unmonitored run halted by a device fault (Ned2 raising) is
    # counted as harmful: the experiment broke mid-flight.
    if not monitored and result.stopped_by_device:
        damage = damage + ("device_fault_halt",)
    return stopped, damage


def run_mutant_monitored(seed: int, index: int, options=None):
    """Re-execute the *monitored* leg of mutant ``(seed, index)``.

    A pure function of the pair (same contract as :func:`score_mutant`),
    which is what lets a failed mutant's trace be recorded after the
    fact — in the parent process, after a sharded sweep — and still be
    byte-identical to what the worker saw.  *options* overrides the
    monitor configuration (default: modified RABIT); verdicts are pinned
    dispatch-invariant, so passing an interpreted-dispatch variant keeps
    the recorded trace replayable.  Returns
    ``(description, WorkflowResult)``."""
    from repro.faults.mutation import apply_mutations
    from repro.lab.workflows import run_workflow as _run

    line_ids = reference_line_ids()
    description, factory = _sample_mutation(_rng_for_sample(seed, index), line_ids)
    deck = build_testbed_deck(noise_sigma=0.003)
    if options is None:
        options = RabitOptions.modified()
    rabit, proxies, _ = make_testbed_rabit(deck, options=options)
    lines = build_testbed_workflow(proxies)
    lines = apply_mutations(lines, deck.world, factory(proxies))
    return description, _run(lines)


def score_mutant(index: int, base_seed: int, line_ids: Sequence[str]) -> MutantOutcome:
    """Sample and score mutant *index* of the sweep seeded *base_seed*.

    The single unit of work both the sequential loop and the parallel
    shards execute — a pure function of ``(base_seed, index)`` (plus the
    deterministic *line_ids*), which is what makes the sharded sweep
    mergeable in any order."""
    description, factory = _sample_mutation(_rng_for_sample(base_seed, index), line_ids)
    try:
        _, truth_damage = _run_mutant(factory, monitored=False)
        detected, _ = _run_mutant(factory, monitored=True)
    except Exception as exc:  # noqa: BLE001 - classify, don't crash the sweep
        return MutantOutcome(
            seed=index,
            description=f"{description} (errored: {type(exc).__name__})",
            harmful=True,
            detected=False,
            damage_kinds=("harness_error",),
        )
    return MutantOutcome(
        seed=index,
        description=description,
        harmful=bool(truth_damage),
        detected=detected,
        damage_kinds=truth_damage,
    )


def run_monte_carlo(
    samples: int = 40,
    seed: int = 2024,
    workers: Optional[int] = 1,
    trace_dir: Optional[str] = None,
    generator: str = "mutant",
) -> MonteCarloReport:
    """Sample *samples* cases; score each against ground truth.

    *generator* picks the case source: ``"mutant"`` (the default)
    samples random single-edit mutations of the hardcoded Fig. 5 script;
    ``"dag"`` composes whole random workflows from the step registry
    (:func:`repro.workflow.fuzz.score_dag`) — same seeds, same confusion
    matrix, same sharding.

    Each case runs twice: once unmonitored (ground truth — is it
    actually harmful?) and once under modified RABIT (the verdict).
    Deterministic under *seed* for every *workers* value: ``workers > 1``
    shards the sweep over a process pool (``None`` means one worker per
    CPU), and the merged report is identical to the sequential one.

    With *trace_dir* set, every *failed* case — a false negative or a
    false positive — auto-dumps a replayable run trace of its monitored
    leg there (recorded parent-side after the sweep; case runs are
    pure functions of ``(seed, index)``, so the re-recorded trace is
    exactly what the sweep executed).
    """
    from repro.parallel.engine import resolve_workers

    if generator not in ("mutant", "dag"):
        raise ValueError(
            f"unknown generator {generator!r}; use 'mutant' or 'dag'"
        )
    sharded = resolve_workers(workers, samples) > 1
    if generator == "dag":
        if sharded:
            from repro.parallel.runners import run_dag_fuzz_sharded

            report = run_dag_fuzz_sharded(samples=samples, seed=seed, workers=workers)
        else:
            from repro.workflow.fuzz import score_dag

            report = MonteCarloReport()
            for index in range(samples):
                report.outcomes.append(score_dag(index, seed))
    elif sharded:
        from repro.parallel.runners import run_monte_carlo_sharded

        report = run_monte_carlo_sharded(samples=samples, seed=seed, workers=workers)
    else:
        line_ids = reference_line_ids()
        report = MonteCarloReport()
        for index in range(samples):
            report.outcomes.append(score_mutant(index, seed, line_ids))
    if trace_dir is not None:
        if generator == "dag":
            from repro.trace.workloads import dump_failed_dag_traces

            dump_failed_dag_traces(report, seed, trace_dir)
        else:
            from repro.trace.workloads import dump_failed_mutant_traces

            dump_failed_mutant_traces(report, seed, trace_dir)
    return report
