"""Mutation operators over experiment scripts and location tables.

The paper's naive programmer "could easily change the arguments of
commands (e.g., enter incorrect coordinates for robot arms), delete
commands (e.g., remove a command to close the door of a device), or
change the order of commands" — plus edit the hard-coded location
dictionary (Fig. 6).  Each operator below is one of those edit kinds,
applied to a workflow's :class:`~repro.lab.workflows.ScriptLine` list or
to the deck's location table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.devices.world import LabWorld
from repro.lab.workflows import ScriptLine


class Mutation:
    """Base class; a mutation edits a script and/or the deck."""

    def apply_to_script(self, lines: List[ScriptLine]) -> List[ScriptLine]:
        """Return the mutated script (default: unchanged)."""
        return lines

    def apply_to_deck(self, world: LabWorld) -> None:
        """Mutate deck-side data (default: nothing)."""


def _index_of(lines: Sequence[ScriptLine], line_id: str) -> int:
    for i, line in enumerate(lines):
        if line.line_id == line_id:
            return i
    raise KeyError(
        f"no script line {line_id!r}; available: {[l.line_id for l in lines]}"
    )


@dataclass
class DeleteLine(Mutation):
    """Delete one command (e.g. Bug A: omit re-opening the door)."""

    line_id: str

    def apply_to_script(self, lines: List[ScriptLine]) -> List[ScriptLine]:
        index = _index_of(lines, self.line_id)
        return lines[:index] + lines[index + 1 :]


@dataclass
class ReplaceLine(Mutation):
    """Replace one command with another (changed arguments, or a buggy
    helper-function definition)."""

    line_id: str
    replacement: ScriptLine

    def apply_to_script(self, lines: List[ScriptLine]) -> List[ScriptLine]:
        index = _index_of(lines, self.line_id)
        return lines[:index] + [self.replacement] + lines[index + 1 :]


@dataclass
class InsertAfter(Mutation):
    """Insert new command(s) after an existing line (e.g. Bug B's extra
    Ned2 move)."""

    line_id: str
    new_lines: Tuple[ScriptLine, ...]

    def apply_to_script(self, lines: List[ScriptLine]) -> List[ScriptLine]:
        index = _index_of(lines, self.line_id) + 1
        return lines[:index] + list(self.new_lines) + lines[index:]


@dataclass
class SwapLines(Mutation):
    """Swap the order of two commands (the reorder edit kind)."""

    first_id: str
    second_id: str

    def apply_to_script(self, lines: List[ScriptLine]) -> List[ScriptLine]:
        i = _index_of(lines, self.first_id)
        j = _index_of(lines, self.second_id)
        mutated = list(lines)
        mutated[i], mutated[j] = mutated[j], mutated[i]
        return mutated


@dataclass
class MutateLocation(Mutation):
    """Edit a hard-coded coordinate in the utilities file (Fig. 6, Bug D:
    ``"pickup": [0.15, 0.45, 0.10]`` -> ``[0.15, 0.45, 0.08]``)."""

    location_name: str
    frame: str
    new_coords: Tuple[float, float, float]

    def apply_to_deck(self, world: LabWorld) -> None:
        world.locations.get(self.location_name).set_coord(self.frame, self.new_coords)


def apply_mutations(
    lines: List[ScriptLine], world: LabWorld, mutations: Sequence[Mutation]
) -> List[ScriptLine]:
    """Apply every mutation; returns the mutated script."""
    for mutation in mutations:
        mutation.apply_to_deck(world)
        lines = mutation.apply_to_script(lines)
    return lines
