"""Fault injection: the §IV "naive programmer" campaign.

The paper's collaborator made 16 unsafe program changes on the testbed by
changing command arguments, deleting commands, or reordering commands
(plus one hard-coded-coordinate edit, Fig. 6's Bug D).  This package
reproduces that campaign deterministically:

- :mod:`repro.faults.mutation` -- the mutation operators over workflow
  script lines and location tables;
- :mod:`repro.faults.campaign` -- the 16 concrete bugs with the paper's
  Table V severity labels, and the runner that evaluates them against any
  RABIT configuration (initial / modified / modified + Extended
  Simulator);
- :mod:`repro.faults.montecarlo` -- random single-edit mutant sweeps
  scored against unmonitored ground truth (the "large bug dataset" study
  of §IV), with per-mutant RNG derived from ``(seed, index)``.

Both runners accept ``workers=`` to shard their independent runs over a
:mod:`repro.parallel` process pool with results identical to the
sequential path.
"""

from repro.faults.mutation import (
    Mutation,
    DeleteLine,
    ReplaceLine,
    InsertAfter,
    SwapLines,
    MutateLocation,
    apply_mutations,
)
from repro.faults.montecarlo import (
    MonteCarloReport,
    MutantOutcome,
    run_monte_carlo,
)
from repro.faults.campaign import (
    InjectedBug,
    BugOutcome,
    CampaignResult,
    CAMPAIGN_BUGS,
    RABIT_CONFIGS,
    run_bug,
    run_campaign,
)

__all__ = [
    "Mutation",
    "DeleteLine",
    "ReplaceLine",
    "InsertAfter",
    "SwapLines",
    "MutateLocation",
    "apply_mutations",
    "InjectedBug",
    "BugOutcome",
    "CampaignResult",
    "CAMPAIGN_BUGS",
    "RABIT_CONFIGS",
    "run_bug",
    "run_campaign",
    "MonteCarloReport",
    "MutantOutcome",
    "run_monte_carlo",
]
