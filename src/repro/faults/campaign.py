"""The 16-bug campaign (§IV) and its runner.

Sixteen unsafe single-edit program changes over the safe testbed
workflows, labeled with the paper's Table V severity bands.  The campaign
reproduces the paper's detection progression:

- **initial** RABIT (bare-arm geometry, no capacity/workspace modeling):
  detects 8/16 (50 %);
- **modified** RABIT (held-object geometry, capacity, workspace bounds —
  the §IV fixes): detects 12/16 (75 %), which is the configuration
  Table V tabulates;
- **modified + Extended Simulator**: detects 13/16 (81 %) — the extra
  scenario is the silently-skipped-waypoint collision of footnote 2.

The three never-detected bugs are the paper's: Bug C and its
reordered-gripper variant (no gripper pressure sensor) and Bug B (no
common frame of reference for arm-arm collisions).

Where the paper is not explicit about *which* four bugs only the modified
revision catches, this reproduction assigns them to the modification
features the paper does describe (held-object geometry for Bug D,
capacity enforcement, workspace bounds) — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interceptor import DeviceProxy
from repro.core.monitor import RabitOptions
from repro.devices.world import DamageEvent, DamageSeverity
from repro.faults.mutation import (
    DeleteLine,
    InsertAfter,
    MutateLocation,
    Mutation,
    ReplaceLine,
    SwapLines,
    apply_mutations,
)
from repro.lab.workflows import (
    ScriptLine,
    WorkflowResult,
    build_centrifuge_workflow,
    build_testbed_workflow,
    pick_up_object_reordered,
    place_into_dosing_no_exit,
    place_object,
    run_workflow,
)
from repro.testbed.deck import TestbedDeck, build_testbed_deck, make_testbed_rabit

#: The three RABIT configurations the paper evaluates, in order.
RABIT_CONFIGS: Dict[str, Tuple[Callable[[], RabitOptions], bool]] = {
    "initial": (RabitOptions.initial, False),
    "modified": (RabitOptions.modified, False),
    "modified_es": (RabitOptions.modified, True),
}

MutationBuilder = Callable[[Dict[str, DeviceProxy]], Sequence[Mutation]]


@dataclass(frozen=True)
class InjectedBug:
    """One unsafe program change."""

    bug_id: str
    title: str
    severity: DamageSeverity
    #: The §IV unsafe-behaviour category (1-4).
    category: int
    #: Which safe workflow the edit applies to.
    workflow: str  # "fig5" | "centrifuge"
    #: Builds the mutations (may close over proxies for inserted lines).
    mutations: MutationBuilder
    #: Expected detection per configuration (the paper's outcomes).
    expected: Dict[str, bool]
    notes: str = ""


@dataclass
class BugOutcome:
    """Result of running one bug under one configuration."""

    bug: InjectedBug
    config: str
    detected: bool
    alert: Optional[str]
    device_error: Optional[str]
    damage: Tuple[DamageEvent, ...]
    completed: bool

    @property
    def matches_paper(self) -> bool:
        """Whether detection matched the paper's reported outcome."""
        return self.detected == self.bug.expected[self.config]

    def as_dict(self) -> dict:
        """JSON-safe dict of every observable field."""
        return {
            "bug_id": self.bug.bug_id,
            "config": self.config,
            "detected": self.detected,
            "alert": self.alert,
            "device_error": self.device_error,
            "damage": [str(event) for event in self.damage],
            "completed": self.completed,
            "matches_paper": self.matches_paper,
        }


@dataclass
class CampaignResult:
    """All outcomes of one configuration sweep."""

    outcomes: List[BugOutcome] = field(default_factory=list)

    def detected_count(self, config: str) -> int:
        """Bugs detected under *config*."""
        return sum(1 for o in self.outcomes if o.config == config and o.detected)

    def detection_rate(self, config: str) -> float:
        """Fraction of campaign bugs detected under *config*."""
        total = sum(1 for o in self.outcomes if o.config == config)
        return self.detected_count(config) / total if total else 0.0

    def by_severity(self, config: str) -> Dict[DamageSeverity, Tuple[int, int]]:
        """Table V rows: severity -> (total, detected) under *config*."""
        rows: Dict[DamageSeverity, Tuple[int, int]] = {}
        for outcome in self.outcomes:
            if outcome.config != config:
                continue
            total, detected = rows.get(outcome.bug.severity, (0, 0))
            rows[outcome.bug.severity] = (
                total + 1,
                detected + (1 if outcome.detected else 0),
            )
        return rows

    def mismatches(self) -> List[BugOutcome]:
        """Outcomes that deviate from the paper's reported detection."""
        return [o for o in self.outcomes if not o.matches_paper]

    def canonical_bytes(self) -> bytes:
        """Canonical JSON serialization of every outcome field — the
        differential harness's sequential-vs-sharded equality witness.
        Uses the shared :mod:`repro.trace.canon` serialization (sorted
        keys, compact separators, ASCII, NaN rejected)."""
        from repro.trace.canon import canonical_bytes

        return canonical_bytes([o.as_dict() for o in self.outcomes])


# ---------------------------------------------------------------------------
# The sixteen bugs
# ---------------------------------------------------------------------------


def _script(line_id: str, text: str, fn: Callable[[], object]) -> ScriptLine:
    return ScriptLine(line_id, text, fn)


def _bug_l1(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    dosing = px["dosing_device"]
    return [
        ReplaceLine(
            "run_dosing",
            _script(
                "run_dosing_overfill",
                "dosing_device.run_action(delay=3, quantity=15)",
                lambda: dosing.run_action(delay=3, quantity=15),
            ),
        )
    ]


def _bug_l2(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [DeleteLine("pick_grid")]


def _bug_l3(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        ReplaceLine(
            "pick_grid",
            _script(
                "pick_grid_reordered",
                "viperx_pick_up_object(viperx, viperx_grid, vial)  # gripper cmds reordered",
                lambda: pick_up_object_reordered(
                    viperx, "grid_nw_viperx_safe", "grid_nw_viperx"
                ),
            ),
        )
    ]


def _bug_ml1(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [MutateLocation("dosing_pickup_viperx", "viperx", (0.15, 0.45, 0.08))]


def _bug_mh1(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        InsertAfter(
            "home_1",
            (
                _script(
                    "move_into_platform",
                    "viperx.move_to_location([0.44, 0.0, 0.01])",
                    lambda: viperx.move_to_location([0.44, 0.0, 0.01]),
                ),
            ),
        )
    ]


def _bug_mh2(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        InsertAfter(
            "pick_grid",
            (
                _script(
                    "carry_over_shaker",
                    "viperx.move_to_location([0.37, -0.35, 0.16])",
                    lambda: viperx.move_to_location([0.37, -0.35, 0.16]),
                ),
            ),
        )
    ]


def _bug_mh3(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        InsertAfter(
            "place_grid",
            (
                _script(
                    "waypoint_b_prime",
                    "viperx.move_to_location([0.62, -0.38, 0.35])  # unreachable: silently skipped",
                    lambda: viperx.move_to_location([0.62, -0.38, 0.35]),
                ),
                _script(
                    "move_c_direct",
                    "viperx.move_to_location([0.37, -0.46, 0.10])",
                    lambda: viperx.move_to_location([0.37, -0.46, 0.10]),
                ),
            ),
        )
    ]


def _bug_mh4(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    ned2 = px["ned2"]
    return [
        InsertAfter(
            "place_grid",
            (
                _script(
                    "ned2_random_move",
                    "ned2.move_pose(random_location)",
                    lambda: ned2.move_pose([0.365, -0.010, 0.192]),
                ),
            ),
        )
    ]


def _bug_mh5(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        InsertAfter(
            "home_1",
            (
                _script(
                    "move_into_wall",
                    "viperx.move_to_location([0.0, 0.60, 0.20])",
                    lambda: viperx.move_to_location([0.0, 0.60, 0.20]),
                ),
            ),
        )
    ]


def _bug_mh6(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    viperx = px["viperx"]
    return [
        ReplaceLine(
            "place_grid",
            _script(
                "place_grid_wrong_slot",
                "viperx_place_object(viperx, ned2_grid, vial)  # slot already occupied",
                lambda: place_object(viperx, "grid_ne_ned2_safe", "grid_ne_ned2"),
            ),
        )
    ]


def _bug_h1(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [DeleteLine("open_door_after_dose")]


def _bug_h2(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    # A two-line edit (the paper's bugs span "one or two lines"): the
    # place helper forgets to retreat AND the go-home call is dropped, so
    # the arm is still inside the device when the door-close command runs.
    viperx = px["viperx"]
    return [
        ReplaceLine(
            "place_dosing",
            _script(
                "place_dosing_no_exit",
                "viperx_place_object(viperx, viperx_dosing_device, vial)  # forgets to retreat",
                lambda: place_into_dosing_no_exit(viperx),
            ),
        ),
        DeleteLine("home_2"),
    ]


def _bug_h3(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [DeleteLine("close_door_before_dose")]


def _bug_h4(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [SwapLines("stop_dosing", "open_door_after_dose")]


def _bug_h5(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    centrifuge = px["centrifuge"]
    return [
        ReplaceLine(
            "spin",
            _script(
                "spin_overspeed",
                "centrifuge.start_action(9000)",
                lambda: centrifuge.start_action(9000.0),
            ),
        )
    ]


def _bug_h6(px: Dict[str, DeviceProxy]) -> Sequence[Mutation]:
    return [DeleteLine("cap_vial")]


CAMPAIGN_BUGS: Tuple[InjectedBug, ...] = (
    InjectedBug(
        "L1",
        "Dose more solid than the vial can hold",
        DamageSeverity.LOW,
        4,
        "fig5",
        _bug_l1,
        {"initial": False, "modified": True, "modified_es": True},
        "Capacity (Rule 8) enforcement was added in the modified revision.",
    ),
    InjectedBug(
        "L2",
        "Bug C: pick-up call omitted; experiment continues without a vial",
        DamageSeverity.LOW,
        3,
        "fig5",
        _bug_l2,
        {"initial": False, "modified": False, "modified_es": False},
        "No gripper pressure sensor: never detectable.",
    ),
    InjectedBug(
        "L3",
        "open_gripper()/close_gripper() reordered inside the pick helper",
        DamageSeverity.LOW,
        3,
        "fig5",
        _bug_l3,
        {"initial": False, "modified": False, "modified_es": False},
        "Same sensing gap as Bug C.",
    ),
    InjectedBug(
        "ML1",
        "Bug D: dosing pickup z lowered 0.10 -> 0.08 while holding a vial",
        DamageSeverity.MEDIUM_LOW,
        4,
        "fig5",
        _bug_ml1,
        {"initial": False, "modified": True, "modified_es": True},
        "The held-object-dimensions fix.",
    ),
    InjectedBug(
        "MH1",
        "Bare arm commanded into the mounting platform",
        DamageSeverity.MEDIUM_HIGH,
        4,
        "fig5",
        _bug_mh1,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "MH2",
        "Held vial carried low across the thermoshaker (vial, not arm, collides)",
        DamageSeverity.MEDIUM_HIGH,
        4,
        "fig5",
        _bug_mh2,
        {"initial": False, "modified": True, "modified_es": True},
        "The testbed scenario the simulator cannot cover (§III).",
    ),
    InjectedBug(
        "MH3",
        "Unreachable waypoint silently skipped; the direct move then collides",
        DamageSeverity.MEDIUM_HIGH,
        4,
        "fig5",
        _bug_mh3,
        {"initial": False, "modified": False, "modified_es": True},
        "Footnote 2: only the Extended Simulator sweeps the actual trajectory.",
    ),
    InjectedBug(
        "MH4",
        "Bug B: Ned2 moved next to the grid while ViperX is stationed there",
        DamageSeverity.MEDIUM_HIGH,
        2,
        "fig5",
        _bug_mh4,
        {"initial": False, "modified": False, "modified_es": False},
        "No common frame of reference; prevented only by multiplexing.",
    ),
    InjectedBug(
        "MH5",
        "Arm commanded through the wall beside the deck",
        DamageSeverity.MEDIUM_HIGH,
        4,
        "fig5",
        _bug_mh5,
        {"initial": False, "modified": True, "modified_es": True},
        "Workspace bounds were added in the modified revision.",
    ),
    InjectedBug(
        "MH6",
        "Vial placed onto a grid slot that already holds another vial",
        DamageSeverity.MEDIUM_HIGH,
        1,
        "fig5",
        _bug_mh6,
        {"initial": True, "modified": True, "modified_es": True},
        "The §I footnote scenario (uncollected vial).",
    ),
    InjectedBug(
        "H1",
        "Bug A: door not re-opened; arm drives into the closed dosing device",
        DamageSeverity.HIGH,
        1,
        "fig5",
        _bug_h1,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "H2",
        "Door closed while the arm is still inside the dosing device",
        DamageSeverity.HIGH,
        1,
        "fig5",
        _bug_h2,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "H3",
        "Dosing started with the device door open",
        DamageSeverity.HIGH,
        1,
        "fig5",
        _bug_h3,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "H4",
        "Door opened while the dosing device is still running",
        DamageSeverity.HIGH,
        1,
        "fig5",
        _bug_h4,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "H5",
        "Centrifuge commanded beyond its speed threshold",
        DamageSeverity.HIGH,
        4,
        "centrifuge",
        _bug_h5,
        {"initial": True, "modified": True, "modified_es": True},
    ),
    InjectedBug(
        "H6",
        "Unstoppered vial loaded into the centrifuge",
        DamageSeverity.HIGH,
        1,
        "centrifuge",
        _bug_h6,
        {"initial": True, "modified": True, "modified_es": True},
    ),
)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _prepare_deck(workflow: str) -> TestbedDeck:
    deck = build_testbed_deck(noise_sigma=0.003)
    if workflow == "centrifuge":
        vial = deck.vials["vial_t1"]
        vial.decap_vial()
        vial.contents.solid_mg = 5.0
        vial.contents.liquid_ml = 5.0
    return deck


def run_bug(
    bug: InjectedBug,
    config: str,
    exclude_rules: Tuple[str, ...] = (),
    compiled_dispatch: bool = True,
) -> BugOutcome:
    """Run one bug under one named configuration on a fresh testbed.

    ``exclude_rules`` supports the rule-knockout ablation: dropping the
    rule that carries a detection should turn it into a miss.
    ``compiled_dispatch=False`` runs the interpreted reference scan
    instead of the compiled decision lists (the differential suite pins
    both to identical outcomes)."""
    try:
        options_factory, use_es = RABIT_CONFIGS[config]
    except KeyError:
        raise KeyError(f"unknown config {config!r}; known: {sorted(RABIT_CONFIGS)}") from None

    deck = _prepare_deck(bug.workflow)
    options = options_factory()
    if options.compiled_dispatch != compiled_dispatch:
        from dataclasses import replace

        options = replace(options, compiled_dispatch=compiled_dispatch)
    rabit, proxies, _trace = make_testbed_rabit(
        deck,
        options=options,
        use_extended_simulator=use_es,
        exclude_rules=exclude_rules,
    )
    builder = (
        build_centrifuge_workflow if bug.workflow == "centrifuge" else build_testbed_workflow
    )
    lines = builder(proxies)
    lines = apply_mutations(lines, deck.world, bug.mutations(proxies))
    result: WorkflowResult = run_workflow(lines)
    return BugOutcome(
        bug=bug,
        config=config,
        detected=result.stopped_by_rabit,
        alert=str(result.alert) if result.alert else None,
        device_error=result.device_error,
        damage=deck.world.damage_log,
        completed=result.completed,
    )


def run_campaign(
    configs: Sequence[str] = ("initial", "modified", "modified_es"),
    bugs: Sequence[InjectedBug] = CAMPAIGN_BUGS,
    workers: Optional[int] = 1,
    trace_dir: Optional[str] = None,
) -> CampaignResult:
    """Run every bug under every configuration.

    ``workers > 1`` shards the (config, bug) grid over a process pool
    (``None`` means one worker per CPU); every bug run is independent and
    deterministic, so the merged result is identical to the sequential
    one in canonical configuration-major order.

    With *trace_dir* set, every outcome that deviates from the paper's
    reported detection auto-dumps a replayable run trace of the bug run
    there (recorded parent-side; bug runs are deterministic functions of
    ``(bug_id, config)``)."""
    from repro.parallel.engine import resolve_workers

    if resolve_workers(workers, len(configs) * len(bugs)) > 1:
        from repro.parallel.runners import run_campaign_sharded

        result = run_campaign_sharded(configs=configs, bugs=bugs, workers=workers)
    else:
        result = CampaignResult()
        for config in configs:
            for bug in bugs:
                result.outcomes.append(run_bug(bug, config))
    if trace_dir is not None:
        from repro.trace.workloads import dump_campaign_mismatch_traces

        dump_campaign_mismatch_traces(result, trace_dir)
    return result
