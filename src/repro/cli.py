"""Command-line interface: ``python -m repro <command>``.

Operational entry points a lab would actually use:

- ``validate <config.json>`` — check a RABIT configuration file (the
  §V-A pilot-study schema validation), exit 1 on errors;
- ``scenarios`` — run the Table III/IV controlled rule violations;
- ``campaign`` — run the §IV 16-bug campaign and print Table V and the
  detection-rate progression (``--workers`` shards the runs over a
  process pool with identical results);
- ``montecarlo`` — sample random single-edit mutants of the Fig. 5
  workflow and print the confusion matrix against unmonitored ground
  truth, optionally exporting per-mutant outcomes as JSONL;
- ``latency`` — the §II-C overhead experiment;
- ``calibration`` — the §IV frame-calibration experiment;
- ``mine`` — generate a synthetic RAD corpus and mine candidate rules;
- ``metrics`` — run a workload with the observability layer enabled and
  export the span trace (JSONL) plus the metrics dump (Prometheus text,
  optionally a JSON snapshot);
- ``record`` — run a registered workload with the trace recorder on and
  persist the schema-versioned run trace as JSONL;
- ``replay`` — re-execute persisted traces and assert byte-identical
  verdicts/state deltas (``--diff`` prints the first divergence; exit 1
  on mismatch, 2 on a corrupt or unreadable trace);
- ``serve`` — run the long-lived asyncio guard service multiplexing many
  concurrent lab sessions (unix socket or TCP, newline-delimited
  canonical JSON; see :mod:`repro.serve`);
- ``workflow`` — list, inspect, run, and export declarative workflow
  presets (the step-registry/DAG engine of :mod:`repro.workflow`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (exit 2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _nonneg_float(text: str) -> float:
    """Argparse type: a finite float >= 0 (exit 2 otherwise).

    Latencies and other duration-flavoured knobs must reject ``-1``,
    ``nan``, and ``inf`` at the argparse boundary — a negative sleep
    raises deep inside asyncio and a NaN watermark comparison silently
    never degrades, both far from the flag that caused them.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise argparse.ArgumentTypeError(
            f"expected a finite number, got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value}"
        )
    return value


def _workers_type(text: str) -> int:
    """Argparse type for ``--workers``: a positive integer or ``auto``.

    ``auto`` (one worker per CPU) maps to the engine's 0 sentinel; bare
    ``0`` and negatives are rejected with a clear message instead of
    being silently treated as auto.
    """
    if text.strip().lower() == "auto":
        return 0
    try:
        return _positive_int(text)
    except argparse.ArgumentTypeError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.config import ConfigError, parse_config_text, validate_config

    try:
        document = parse_config_text(Path(args.config).read_text())
    except FileNotFoundError:
        print(f"error: no such file: {args.config}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        for issue in exc.issues:
            print(issue)
        return 1
    issues = validate_config(document)
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity == "error"]
    print(
        f"{args.config}: {len(errors)} error(s), "
        f"{len(issues) - len(errors)} warning(s)"
    )
    return 1 if errors else 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.lab.scenarios import ALL_SCENARIOS, run_scenario

    wanted = set(args.rules.split(",")) if args.rules else None
    rows = []
    failures = 0
    for scenario in ALL_SCENARIOS:
        if wanted is not None and scenario.rule_id not in wanted:
            continue
        outcome = run_scenario(scenario)
        ok = outcome.attributed_correctly
        failures += 0 if ok else 1
        rows.append(
            [scenario.rule_id, scenario.description[:60], "detected" if ok else "MISSED"]
        )
    print(format_table(["rule", "controlled violation", "outcome"], rows,
                       title="Controlled rule-violation scenarios (Tables III & IV)"))
    return 1 if failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import campaign_stats, severity_rows
    from repro.analysis.report import format_severity_table, format_table
    from repro.faults.campaign import run_campaign

    configs = args.configs.split(",") if args.configs else [
        "initial", "modified", "modified_es"
    ]
    result = run_campaign(
        configs=configs,
        workers=args.workers,
        trace_dir=args.trace_dir or None,
    )
    rows = []
    for config in configs:
        stats = campaign_stats(result, config)
        rows.append([config, f"{stats.detected}/{stats.total}", f"{stats.percent} %"])
    print(format_table(["configuration", "detected", "rate"], rows,
                       title="Detection-rate progression (§IV)"))
    if "modified" in configs:
        print()
        print(format_severity_table(severity_rows(result, "modified")))
    mismatches = result.mismatches()
    if mismatches:
        print(f"\nWARNING: {len(mismatches)} outcome(s) deviate from the paper:")
        for outcome in mismatches:
            print(f"  {outcome.bug.bug_id} [{outcome.config}]: detected={outcome.detected}")
        return 1
    print("\nAll outcomes match the paper.")
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.metrics import montecarlo_rows
    from repro.analysis.report import format_table
    from repro.faults.montecarlo import run_monte_carlo

    report = run_monte_carlo(
        samples=args.samples,
        seed=args.seed,
        workers=args.workers,
        trace_dir=args.trace_dir or None,
        generator=args.generator,
    )
    kind = "mutants" if args.generator == "mutant" else "fuzzed workflow DAGs"
    print(format_table(
        ["quantity", "value", "note"],
        montecarlo_rows(report),
        title=(
            f"Monte Carlo bug study ({args.samples} random {kind}, "
            f"seed {args.seed}, modified RABIT)"
        ),
    ))
    missed = [o for o in report.outcomes if o.classification == "false_negative"]
    if missed:
        print("\nMissed mutants:")
        for outcome in missed:
            print(f"  {outcome.description} -> {', '.join(outcome.damage_kinds)}")
    if args.jsonl:
        with Path(args.jsonl).open("w", encoding="utf-8") as fh:
            for outcome in report.outcomes:
                fh.write(json.dumps(outcome.as_dict(), sort_keys=True) + "\n")
        print(f"\nwrote {len(report.outcomes)} mutant outcomes to {args.jsonl}")
    # Exit nonzero on a false alarm: the paper's usability argument rests
    # on zero false positives, so a sweep that finds one is a regression.
    return 1 if report.count("false_positive") else 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis.latency import measure_workflow_latency
    from repro.analysis.report import format_table

    reports = measure_workflow_latency(compiled=args.compiled)
    rows = [
        [
            name,
            report.commands,
            f"{report.experiment_seconds:.1f} s",
            f"{report.overhead_per_command:.4f} s",
            f"{report.overhead_percent:.1f} %",
        ]
        for name, report in reports.items()
    ]
    dispatch = "compiled" if args.compiled else "interpreted"
    print(format_table(
        ["configuration", "commands", "baseline", "overhead/cmd", "overhead %"],
        rows,
        title=f"§II-C latency overhead (virtual clock, {dispatch} dispatch)",
    ))
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    from repro.testbed.calibration import run_calibration_experiment

    result = run_calibration_experiment()
    print(
        f"fitted Ned2->ViperX rigid transform over {len(result.errors)} fiducials: "
        f"mean residual {result.mean_error * 100:.2f} cm, "
        f"max {result.max_error * 100:.2f} cm"
    )
    print("(the paper measured ~3 cm and kept separate frames + multiplexing)")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.rad.generator import generate_combined
    from repro.rad.mining import mine_and_classify, mine_door_rules

    dataset = generate_combined(
        hein_sessions=args.hein, berlinguette_sessions=args.berlinguette
    )
    if args.out:
        dataset.to_jsonl(Path(args.out))
        print(f"wrote {len(dataset)} traces ({dataset.total_events()} events) to {args.out}")
    rules = mine_and_classify(dataset, min_support=args.min_support)
    for door_rule in mine_door_rules(dataset):
        print(door_rule.describe())
    for mined in rules[: args.top]:
        print(mined.describe(), f"(support {mined.support})")
    print(f"... {len(rules)} classified rules total")
    return 0


def _run_observed_solubility() -> int:
    """The full solubility scenario under RABIT + headless ES; returns
    the intercepted-command count."""
    from repro.core.clock import VirtualClock
    from repro.core.monitor import RabitOptions
    from repro.lab.hein import build_hein_deck, make_hein_rabit
    from repro.lab.workflows import build_solubility_workflow, run_workflow
    from repro.obs import OBS

    deck = build_hein_deck()
    options = RabitOptions.modified(use_extended_simulator=True, bypass_gui=True)
    rabit, proxies, trace = make_hein_rabit(
        deck, options=options, use_extended_simulator=True, clock=VirtualClock()
    )
    OBS.bind_clock(rabit.clock)
    result = run_workflow(build_solubility_workflow(proxies))
    if not result.completed:  # pragma: no cover - safe workflow invariant
        raise RuntimeError(f"observed workflow did not complete: {result.alert}")
    return len(trace)


def _run_observed_scenarios() -> int:
    """Every Table III/IV controlled violation; returns the scenario count."""
    from repro.core.monitor import RabitOptions
    from repro.lab.scenarios import ALL_SCENARIOS, run_scenario

    options = RabitOptions.modified(use_extended_simulator=True, bypass_gui=True)
    for scenario in ALL_SCENARIOS:
        run_scenario(scenario, options=options)
    return len(ALL_SCENARIOS)


def _run_observed_campaign() -> int:
    """The §IV 16-bug campaign; returns the outcome count."""
    from repro.faults.campaign import run_campaign

    result = run_campaign()
    return len(result.outcomes)


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.obs import OBS
    from repro.obs.export import (
        export_metrics_json,
        export_metrics_prometheus,
        export_trace_jsonl,
    )

    workloads = {
        "solubility": _run_observed_solubility,
        "scenarios": _run_observed_scenarios,
        "campaign": _run_observed_campaign,
    }
    OBS.reset()
    OBS.enable()
    try:
        units = workloads[args.workload]()
    finally:
        OBS.disable()

    summary = OBS.summary()
    rows = [
        ["workload", f"{args.workload} ({units} units)"],
        ["commands intercepted", f"{summary['commands_intercepted']:.0f}"],
    ]
    for outcome, count in sorted(summary["verdicts"].items()):
        rows.append([f"verdict: {outcome}", f"{count:.0f}"])
    rows += [
        [
            "rule cache hit/miss",
            f"{summary['rule_cache_hits']:.0f}/{summary['rule_cache_misses']:.0f} "
            f"({100.0 * summary['rule_cache_hit_rate']:.1f} %)",
        ],
        [
            "trajectory checks",
            ", ".join(
                f"{path}: {count:.0f}"
                for path, count in sorted(summary["trajectory_checks"].items())
            )
            or "0",
        ],
        ["collision segments swept", f"{summary['collision_segments_swept']:.0f}"],
        ["geometry pair checks", f"{summary['geometry_pair_checks']:.0f}"],
        ["device commands executed", f"{summary['device_commands']:.0f}"],
        [
            "spans recorded",
            f"{summary['spans_recorded']} ({summary['spans_dropped']} dropped)",
        ],
    ]
    print(format_table(["metric", "value"], rows, title="Observability summary"))

    totals = OBS.collector.totals_by_name()
    span_rows = [
        [name, f"{agg['count']:.0f}", f"{agg['wall_seconds'] * 1e3:.2f} ms",
         f"{agg['max_wall_seconds'] * 1e3:.3f} ms"]
        for name, agg in sorted(
            totals.items(), key=lambda kv: -kv[1]["wall_seconds"]
        )[: args.top]
    ]
    if span_rows:
        print()
        print(format_table(
            ["span", "count", "total wall", "max wall"], span_rows,
            title=f"Hottest spans (top {len(span_rows)})",
        ))

    spans = export_trace_jsonl(OBS, args.trace_out)
    size = export_metrics_prometheus(OBS, args.prom_out)
    print(f"\nwrote {spans} spans to {args.trace_out}")
    print(f"wrote {size} bytes of Prometheus metrics to {args.prom_out}")
    if args.json_out:
        export_metrics_json(OBS, args.json_out)
        print(f"wrote metrics JSON snapshot to {args.json_out}")
    OBS.reset()
    return 0


def _parse_params(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--param key=value`` workload parameters.

    Values that parse as JSON keep their type (``seed=2024`` is an int);
    anything else stays a string (``bug_id=H1``)."""
    import json

    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.trace import WORKLOADS, record_workload

    if args.workload not in WORKLOADS:
        print(
            f"error: unknown workload {args.workload!r}; "
            f"known: {', '.join(sorted(WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    try:
        trace = record_workload(
            args.workload, _parse_params(args.param), obs=args.obs
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    lines = trace.write_jsonl(args.out)
    print(
        f"recorded {trace.trace_id} (workload {args.workload}, "
        f"{len(trace.events)} events, schema v{trace.schema_version}): "
        f"wrote {lines} lines to {args.out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace import RunTrace, TraceFormatError, UnknownSchemaVersionError
    from repro.trace.replay import replay_trace

    mismatches = 0
    for path in args.traces:
        try:
            recorded = RunTrace.read_jsonl(path)
        except (TraceFormatError, UnknownSchemaVersionError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot read {path}: {exc.strerror}", file=sys.stderr)
            return 2
        report = replay_trace(recorded)
        status = "ok" if report.match else "MISMATCH"
        print(
            f"{path}: {status} ({recorded.trace_id}, "
            f"workload {recorded.header['workload']}, "
            f"{len(recorded.events)} events)"
        )
        if not report.match:
            mismatches += 1
            if args.diff:
                print(report.diff_text())
    if mismatches:
        print(f"\n{mismatches} of {len(args.traces)} trace(s) diverged")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import GuardServer

    if args.shard_workers is not None:
        return _cmd_serve_sharded(args)
    if args.metrics_port is not None:
        print("error: --metrics-port requires --shard-workers", file=sys.stderr)
        return 2

    server = GuardServer(
        max_sessions=args.sessions,
        queue_size=args.queue_size,
        high_watermark=args.watermark,
        max_batch=args.max_batch,
        default_io_latency=args.io_latency,
    )

    async def run() -> None:
        if args.socket:
            await server.start_unix(args.socket)
            print(f"guard service listening on unix socket {args.socket}")
        else:
            await server.start_tcp(args.host, args.port)
            print(f"guard service listening on {args.host}:{args.port}")
        print(
            f"(max {args.sessions} sessions, sweep queue {args.queue_size}, "
            f"watermark {args.watermark}, batch <= {args.max_batch})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("guard service stopped")
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.shard import ShardConfig, ShardService, ShardUnsupportedError

    config = ShardConfig(
        workers=args.shard_workers,
        socket=args.socket,
        host=args.host,
        port=args.port,
        max_sessions=args.sessions,
        queue_size=args.queue_size,
        high_watermark=args.watermark,
        max_batch=args.max_batch,
        default_io_latency=args.io_latency,
        metrics_port=args.metrics_port,
        enable_obs=args.obs,
    )
    try:
        service = ShardService(config)
    except ShardUnsupportedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def run() -> None:
        await service.start()
        if config.socket:
            print(
                f"sharded guard service listening on unix socket {config.socket}"
            )
        else:
            print(f"sharded guard service listening on {config.host}:{config.port}")
        print(
            f"({config.workers} workers, max {config.max_sessions} sessions "
            f"each, sweep queue {config.queue_size}, watermark "
            f"{config.high_watermark}, batch <= {config.max_batch})"
        )
        if config.metrics_port is not None:
            print(
                f"metrics on http://{config.metrics_host}:{config.metrics_port}"
                "/metrics (health: /healthz)"
            )
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("sharded guard service stopped")
    return 0


def _cmd_workflow_list(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.workflow import PRESETS, REGISTRY

    rows = []
    for name in sorted(PRESETS):
        entry = PRESETS[name]
        dag = entry.build()
        rows.append(
            [entry.signature(), dag.deck, str(len(dag.nodes)), entry.description[:52]]
        )
    print(format_table(
        ["preset", "deck", "nodes", "description"], rows, title="Workflow presets"
    ))
    if args.steps:
        step_rows = [
            [REGISTRY.steps[name].signature(), REGISTRY.steps[name].description[:56]]
            for name in REGISTRY.list_steps()
        ]
        print()
        print(format_table(
            ["step", "description"], step_rows, title="Registered steps"
        ))
    return 0


def _load_workflow(args: argparse.Namespace):
    """Build the DAG a workflow subcommand names: a preset (plus
    ``--param`` overrides) or an exported spec file via ``--spec``."""
    import json

    from repro.workflow import WorkflowDAG, build_preset

    if getattr(args, "spec", ""):
        if getattr(args, "preset", None):
            raise SystemExit("error: give a preset name or --spec, not both")
        return WorkflowDAG.from_spec(json.loads(Path(args.spec).read_text()))
    if not getattr(args, "preset", None):
        raise SystemExit("error: name a preset or pass --spec FILE")
    return build_preset(args.preset, _parse_params(args.param))


def _cmd_workflow_show(args: argparse.Namespace) -> int:
    import json

    from repro.workflow import StepError, WorkflowError

    try:
        dag = _load_workflow(args)
        dag.validate()
    except (StepError, WorkflowError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(dag.to_spec(), indent=2, sort_keys=True))
    return 0


def _cmd_workflow_export(args: argparse.Namespace) -> int:
    import json

    from repro.workflow import StepError, WorkflowError

    try:
        dag = _load_workflow(args)
        dag.validate()
    except (StepError, WorkflowError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = dag.spec_bytes() + b"\n"
    Path(args.out).write_bytes(payload)
    print(f"exported {dag.name!r} ({len(dag.nodes)} nodes) to {args.out}")
    return 0


def _cmd_workflow_run(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import format_table
    from repro.workflow import (
        StepError,
        WorkflowError,
        build_context,
        execute_dag,
        journal_digest,
        run_journal,
    )

    try:
        dag = _load_workflow(args)
        ctx = build_context(
            deck=dag.deck,
            deck_params=dag.deck_params,
            prepare=dag.prepare,
            monitored=not args.unmonitored,
        )
        result = execute_dag(dag, ctx)
    except (StepError, WorkflowError, ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    journal = run_journal(
        ctx.trace, result.executed_nodes, result.completed,
        result.alert, result.device_error, result.recovered,
    )
    rows = [
        ["workflow", dag.name],
        ["deck", dag.deck],
        ["monitored", "no" if args.unmonitored else "yes (modified RABIT)"],
        ["completed", "yes" if result.completed else "no"],
        ["nodes executed", f"{len(result.executed_nodes)}/{len(dag.nodes)}"],
        ["commands traced", str(len(ctx.trace))],
        ["alert", str(result.alert) if result.alert else "-"],
        ["device error", result.device_error or "-"],
        ["recovered", "yes" if result.recovered else "no"],
        ["journal digest", journal_digest(journal)],
    ]
    print(format_table(["field", "value"], rows, title=f"Workflow run: {dag.name}"))
    if args.journal:
        with Path(args.journal).open("wb") as fh:
            from repro.trace.canon import canonical_bytes

            fh.write(canonical_bytes(journal) + b"\n")
        print(f"wrote journal to {args.journal}")
    return 0 if result.completed else 1


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.simulator.render import render_topdown

    if args.lab == "hein":
        from repro.lab.hein import build_hein_deck

        deck = build_hein_deck()
        frames = ["ur3e"]
    elif args.lab == "berlinguette":
        from repro.lab.berlinguette import build_berlinguette_deck

        deck = build_berlinguette_deck()
        frames = ["ur5e"]
    elif args.lab == "testbed":
        from repro.testbed.deck import build_testbed_deck

        deck = build_testbed_deck()
        frames = ["viperx", "ned2"]
    else:
        print(f"error: unknown lab {args.lab!r}", file=sys.stderr)
        return 2
    for frame in frames:
        robot = deck.devices.get(frame)
        print(render_topdown(deck.model, frame, robot=robot))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RABIT reproduction: validation, scenarios, campaign, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate a RABIT JSON configuration")
    p.add_argument("config", help="path to the configuration file")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("scenarios", help="run the controlled rule violations")
    p.add_argument("--rules", default="", help="comma-separated rule ids (default: all)")
    p.set_defaults(fn=_cmd_scenarios)

    p = sub.add_parser("campaign", help="run the 16-bug campaign")
    p.add_argument(
        "--configs", default="", help="comma-separated configurations (default: all three)"
    )
    p.add_argument(
        "--workers", type=_workers_type, default=1, metavar="N|auto",
        help="process-pool workers; 'auto' means one per CPU (default: 1, sequential)",
    )
    p.add_argument(
        "--trace-dir", default="", dest="trace_dir",
        help="dump a replayable run trace for every paper-mismatched outcome here",
    )
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser(
        "montecarlo",
        help="sample random workflow mutants; print the confusion matrix",
    )
    p.add_argument("--samples", type=_positive_int, default=40, help="mutants to sample")
    p.add_argument("--seed", type=int, default=2024, help="sweep base seed")
    p.add_argument(
        "--workers", type=_workers_type, default=1, metavar="N|auto",
        help="process-pool workers; 'auto' means one per CPU (default: 1, sequential)",
    )
    p.add_argument(
        "--jsonl", default="",
        help="optional path for per-mutant outcomes as JSON lines",
    )
    p.add_argument(
        "--trace-dir", default="", dest="trace_dir",
        help="dump a replayable run trace for every misclassified mutant here",
    )
    p.add_argument(
        "--generator", default="mutant", choices=["mutant", "dag"],
        help="case source: single-edit mutants of the Fig. 5 script, or "
             "whole random workflow DAGs from the step registry",
    )
    p.set_defaults(fn=_cmd_montecarlo)

    p = sub.add_parser("latency", help="run the latency-overhead experiment")
    dispatch = p.add_mutually_exclusive_group()
    dispatch.add_argument(
        "--compiled", dest="compiled", action="store_true", default=True,
        help="use compiled rulebase dispatch (default)",
    )
    dispatch.add_argument(
        "--interpreted", dest="compiled", action="store_false",
        help="use the interpreted full-rulebase scan (reference path)",
    )
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("calibration", help="run the frame-calibration experiment")
    p.set_defaults(fn=_cmd_calibration)

    p = sub.add_parser(
        "serve",
        help="run the multi-session guard service (asyncio front-end)",
    )
    p.add_argument(
        "--socket", default="", help="unix socket path (preferred when local)"
    )
    p.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p.add_argument("--port", type=_positive_int, default=7310, help="TCP bind port")
    p.add_argument(
        "--sessions", type=_positive_int, default=32, metavar="N",
        help="max concurrent sessions (admission cap; default: 32)",
    )
    p.add_argument(
        "--queue-size", type=_positive_int, default=64, dest="queue_size",
        help="sweep queue bound (backpressure beyond it; default: 64)",
    )
    p.add_argument(
        "--watermark", type=_positive_int, default=48,
        help="sweep-queue high watermark (degraded probes beyond it; default: 48)",
    )
    p.add_argument(
        "--max-batch", type=_positive_int, default=16, dest="max_batch",
        help="max sweep jobs coalesced per batch (default: 16)",
    )
    p.add_argument(
        "--io-latency", type=_nonneg_float, default=0.0, dest="io_latency",
        help="default per-command device I/O latency, seconds (default: 0)",
    )
    p.add_argument(
        "--shard-workers", type=_positive_int, default=None, dest="shard_workers",
        metavar="N",
        help="shard the service across N forked worker processes "
        "(default: single-process)",
    )
    p.add_argument(
        "--metrics-port", type=_positive_int, default=None, dest="metrics_port",
        metavar="PORT",
        help="HTTP port for /metrics and /healthz (sharded mode only; "
        "default: no endpoint)",
    )
    p.add_argument(
        "--obs", action="store_true",
        help="enable the observability layer inside shard workers "
        "(full serve_* metric families on /metrics)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "workflow",
        help="list, inspect, run, and export declarative workflow presets",
    )
    wf = p.add_subparsers(dest="workflow_command", required=True)

    w = wf.add_parser("list", help="list registered presets (and steps)")
    w.add_argument(
        "--steps", action="store_true",
        help="also print the step catalog with typed signatures",
    )
    w.set_defaults(fn=_cmd_workflow_list)

    w = wf.add_parser("show", help="print a workflow's JSON spec")
    w.add_argument("preset", nargs="?", default="", help="preset name")
    w.add_argument("--spec", default="", help="load an exported spec file instead")
    w.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="preset parameter (repeatable); e.g. --param dissolution_rounds=3",
    )
    w.set_defaults(fn=_cmd_workflow_show)

    w = wf.add_parser(
        "run", help="execute a workflow through the guarded pipeline"
    )
    w.add_argument("preset", nargs="?", default="", help="preset name")
    w.add_argument("--spec", default="", help="run an exported spec file instead")
    w.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="preset parameter (repeatable)",
    )
    w.add_argument(
        "--unmonitored", action="store_true",
        help="run without the monitor (ground-truth leg; traces only)",
    )
    w.add_argument(
        "--journal", default="",
        help="optional path for the canonical run journal (JSON)",
    )
    w.set_defaults(fn=_cmd_workflow_run)

    w = wf.add_parser("export", help="write a workflow's canonical spec")
    w.add_argument("preset", nargs="?", default="", help="preset name")
    w.add_argument("--spec", default="", help="re-export an existing spec file")
    w.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="preset parameter (repeatable)",
    )
    w.add_argument(
        "--out", default="workflow.spec.json", help="spec output path"
    )
    w.set_defaults(fn=_cmd_workflow_export)

    p = sub.add_parser("render", help="print a top-down view of a deck")
    p.add_argument(
        "--lab", default="hein", choices=["hein", "berlinguette", "testbed"],
        help="which deck to render",
    )
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser(
        "metrics",
        help="run a workload with observability on; export span trace + metrics",
    )
    p.add_argument(
        "--workload", default="solubility",
        choices=["solubility", "scenarios", "campaign"],
        help="what to run under the observability layer",
    )
    p.add_argument(
        "--trace-out", default="obs-trace.jsonl", dest="trace_out",
        help="JSONL span-trace output path",
    )
    p.add_argument(
        "--prom-out", default="obs-metrics.prom", dest="prom_out",
        help="Prometheus text-format metrics output path",
    )
    p.add_argument(
        "--json-out", default="", dest="json_out",
        help="optional JSON metrics-snapshot output path",
    )
    p.add_argument("--top", type=int, default=8, help="span rows to print")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser(
        "record",
        help="run a workload with the trace recorder on; write the run trace",
    )
    p.add_argument(
        "--workload", default="solubility",
        help="registered workload name (e.g. solubility, testbed, multi_door, "
             "mutant, bug, workflow, fuzz)",
    )
    p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter (repeatable); e.g. --param seed=2024",
    )
    p.add_argument(
        "--obs", action="store_true",
        help="record with the observability layer enabled (span cross-links)",
    )
    p.add_argument(
        "--out", default="run.trace.jsonl", help="trace output path (JSONL)"
    )
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser(
        "replay",
        help="re-execute recorded traces; fail on any byte-level divergence",
    )
    p.add_argument("traces", nargs="+", help="trace files to replay")
    p.add_argument(
        "--diff", action="store_true",
        help="print the first divergence field-by-field on mismatch",
    )
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("mine", help="generate traces and mine candidate rules")
    p.add_argument("--hein", type=int, default=5, help="Hein sessions to replay")
    p.add_argument("--berlinguette", type=int, default=4, help="Berlinguette sessions")
    p.add_argument("--min-support", type=int, default=4, dest="min_support")
    p.add_argument("--top", type=int, default=15, help="rules to print")
    p.add_argument("--out", default="", help="write traces to this JSONL path")
    p.set_defaults(fn=_cmd_mine)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    raise SystemExit(main())
