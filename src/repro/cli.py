"""Command-line interface: ``python -m repro <command>``.

Operational entry points a lab would actually use:

- ``validate <config.json>`` — check a RABIT configuration file (the
  §V-A pilot-study schema validation), exit 1 on errors;
- ``scenarios`` — run the Table III/IV controlled rule violations;
- ``campaign`` — run the §IV 16-bug campaign and print Table V and the
  detection-rate progression;
- ``latency`` — the §II-C overhead experiment;
- ``calibration`` — the §IV frame-calibration experiment;
- ``mine`` — generate a synthetic RAD corpus and mine candidate rules.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.config import ConfigError, parse_config_text, validate_config

    try:
        document = parse_config_text(Path(args.config).read_text())
    except FileNotFoundError:
        print(f"error: no such file: {args.config}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        for issue in exc.issues:
            print(issue)
        return 1
    issues = validate_config(document)
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity == "error"]
    print(
        f"{args.config}: {len(errors)} error(s), "
        f"{len(issues) - len(errors)} warning(s)"
    )
    return 1 if errors else 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.lab.scenarios import ALL_SCENARIOS, run_scenario

    wanted = set(args.rules.split(",")) if args.rules else None
    rows = []
    failures = 0
    for scenario in ALL_SCENARIOS:
        if wanted is not None and scenario.rule_id not in wanted:
            continue
        outcome = run_scenario(scenario)
        ok = outcome.attributed_correctly
        failures += 0 if ok else 1
        rows.append(
            [scenario.rule_id, scenario.description[:60], "detected" if ok else "MISSED"]
        )
    print(format_table(["rule", "controlled violation", "outcome"], rows,
                       title="Controlled rule-violation scenarios (Tables III & IV)"))
    return 1 if failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import campaign_stats, severity_rows
    from repro.analysis.report import format_severity_table, format_table
    from repro.faults.campaign import run_campaign

    configs = args.configs.split(",") if args.configs else [
        "initial", "modified", "modified_es"
    ]
    result = run_campaign(configs=configs)
    rows = []
    for config in configs:
        stats = campaign_stats(result, config)
        rows.append([config, f"{stats.detected}/{stats.total}", f"{stats.percent} %"])
    print(format_table(["configuration", "detected", "rate"], rows,
                       title="Detection-rate progression (§IV)"))
    if "modified" in configs:
        print()
        print(format_severity_table(severity_rows(result, "modified")))
    mismatches = result.mismatches()
    if mismatches:
        print(f"\nWARNING: {len(mismatches)} outcome(s) deviate from the paper:")
        for outcome in mismatches:
            print(f"  {outcome.bug.bug_id} [{outcome.config}]: detected={outcome.detected}")
        return 1
    print("\nAll outcomes match the paper.")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis.latency import measure_workflow_latency
    from repro.analysis.report import format_table

    reports = measure_workflow_latency()
    rows = [
        [
            name,
            report.commands,
            f"{report.experiment_seconds:.1f} s",
            f"{report.overhead_per_command:.4f} s",
            f"{report.overhead_percent:.1f} %",
        ]
        for name, report in reports.items()
    ]
    print(format_table(
        ["configuration", "commands", "baseline", "overhead/cmd", "overhead %"],
        rows, title="§II-C latency overhead (virtual clock)",
    ))
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    from repro.testbed.calibration import run_calibration_experiment

    result = run_calibration_experiment()
    print(
        f"fitted Ned2->ViperX rigid transform over {len(result.errors)} fiducials: "
        f"mean residual {result.mean_error * 100:.2f} cm, "
        f"max {result.max_error * 100:.2f} cm"
    )
    print("(the paper measured ~3 cm and kept separate frames + multiplexing)")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.rad.generator import generate_combined
    from repro.rad.mining import mine_and_classify, mine_door_rules

    dataset = generate_combined(
        hein_sessions=args.hein, berlinguette_sessions=args.berlinguette
    )
    if args.out:
        dataset.to_jsonl(Path(args.out))
        print(f"wrote {len(dataset)} traces ({dataset.total_events()} events) to {args.out}")
    rules = mine_and_classify(dataset, min_support=args.min_support)
    for door_rule in mine_door_rules(dataset):
        print(door_rule.describe())
    for mined in rules[: args.top]:
        print(mined.describe(), f"(support {mined.support})")
    print(f"... {len(rules)} classified rules total")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.simulator.render import render_topdown

    if args.lab == "hein":
        from repro.lab.hein import build_hein_deck

        deck = build_hein_deck()
        frames = ["ur3e"]
    elif args.lab == "berlinguette":
        from repro.lab.berlinguette import build_berlinguette_deck

        deck = build_berlinguette_deck()
        frames = ["ur5e"]
    elif args.lab == "testbed":
        from repro.testbed.deck import build_testbed_deck

        deck = build_testbed_deck()
        frames = ["viperx", "ned2"]
    else:
        print(f"error: unknown lab {args.lab!r}", file=sys.stderr)
        return 2
    for frame in frames:
        robot = deck.devices.get(frame)
        print(render_topdown(deck.model, frame, robot=robot))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RABIT reproduction: validation, scenarios, campaign, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate a RABIT JSON configuration")
    p.add_argument("config", help="path to the configuration file")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("scenarios", help="run the controlled rule violations")
    p.add_argument("--rules", default="", help="comma-separated rule ids (default: all)")
    p.set_defaults(fn=_cmd_scenarios)

    p = sub.add_parser("campaign", help="run the 16-bug campaign")
    p.add_argument(
        "--configs", default="", help="comma-separated configurations (default: all three)"
    )
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser("latency", help="run the latency-overhead experiment")
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("calibration", help="run the frame-calibration experiment")
    p.set_defaults(fn=_cmd_calibration)

    p = sub.add_parser("render", help="print a top-down view of a deck")
    p.add_argument(
        "--lab", default="hein", choices=["hein", "berlinguette", "testbed"],
        help="which deck to render",
    )
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser("mine", help="generate traces and mine candidate rules")
    p.add_argument("--hein", type=int, default=5, help="Hein sessions to replay")
    p.add_argument("--berlinguette", type=int, default=4, help="Berlinguette sessions")
    p.add_argument("--min-support", type=int, default=4, dest="min_support")
    p.add_argument("--top", type=int, default=15, help="rules to print")
    p.add_argument("--out", default="", help="write traces to this JSONL path")
    p.set_defaults(fn=_cmd_mine)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    raise SystemExit(main())
