"""RAD — the Robot Arm Dataset substitute (§II-A, first rule source).

The paper mined the real RAD ("three months of command trace data
captured in the Hein Lab") for rules implied by command sequences,
finding both lab-agnostic invariants ("device doors must be opened before
a robot arm can enter them") and lab-specific ones ("solids must be added
to containers before liquids").

This package reproduces the pipeline on synthetic data:

- :mod:`repro.rad.trace` -- trace records and (de)serialization;
- :mod:`repro.rad.generator` -- replays parameterized workflows on the
  simulated decks to produce months' worth of traces;
- :mod:`repro.rad.mining` -- mines precedence invariants from the traces
  and classifies them as *general* (supported in every lab's traces) or
  *custom* (supported in only one lab), the paper's two rule categories.
"""

from repro.rad.trace import TraceEvent, Trace, TraceDataset, events_from_records
from repro.rad.generator import (
    generate_hein_traces,
    generate_berlinguette_traces,
    generate_combined,
)
from repro.rad.mining import (
    MinedRule,
    DoorRule,
    mine_precedence_rules,
    mine_door_rules,
    mine_and_classify,
    classify_rules,
)

__all__ = [
    "TraceEvent",
    "Trace",
    "TraceDataset",
    "events_from_records",
    "generate_hein_traces",
    "generate_berlinguette_traces",
    "generate_combined",
    "MinedRule",
    "DoorRule",
    "mine_precedence_rules",
    "mine_door_rules",
    "mine_and_classify",
    "classify_rules",
]
