"""Synthetic trace generation — the RAD dataset substitute.

The real RAD holds three months of Hein Lab command traces.  We replay
the same workflows the traces came from — parameterized solubility runs
(Fig. 1(b)) with occasional centrifugation legs — on the simulated deck,
recording every intercepted command.  A second generator produces
Berlinguette-style spray-coating traces so the miner can perform the
paper's general/custom classification across labs.

Sessions vary deterministically (seeded) in dose amounts, dissolution
rounds, and whether optional legs run, mimicking months of heterogeneous
experiments.
"""

from __future__ import annotations


import numpy as np

from repro.lab.berlinguette import (
    build_berlinguette_deck,
    build_spray_coating_workflow,
    make_berlinguette_rabit,
)
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import build_solubility_workflow, run_workflow
from repro.rad.trace import Trace, TraceDataset, events_from_records


def generate_hein_traces(sessions: int = 20, seed: int = 42) -> TraceDataset:
    """Replay *sessions* varied solubility experiments on the Hein deck.

    Every session runs under RABIT (as the real lab does) and must
    complete alert-free — the dataset contains only *normal* operation,
    which is what makes its invariants meaningful.
    """
    rng = np.random.default_rng(seed)
    dataset = TraceDataset(name="rad-hein")
    for session in range(sessions):
        deck = build_hein_deck()
        rabit, proxies, trace_records = make_hein_rabit(deck)
        workflow = build_solubility_workflow(
            proxies,
            amount_mg=float(rng.integers(3, 8)),
            initial_solvent_ml=float(rng.integers(2, 6)),
            temperature=float(rng.integers(40, 100)),
            dissolution_rounds=int(rng.integers(1, 4)),
            centrifuge_rpm=float(rng.integers(2000, 5000)),
        )
        result = run_workflow(workflow)
        if not result.completed:  # pragma: no cover - generator invariant
            raise RuntimeError(
                f"RAD generator session {session} did not complete: {result.alert}"
            )
        dataset.traces.append(
            Trace(
                session_id=f"hein-{session:04d}",
                lab="hein",
                events=events_from_records(
                    trace_records, deck.devices, interior_owner=deck.model.interior_owner
                ),
            )
        )
    return dataset


def generate_berlinguette_traces(sessions: int = 12, seed: int = 7) -> TraceDataset:
    """Replay spray-coating runs; roughly a third are solvent-only.

    The solvent-only runs legitimately dose liquid into vials holding no
    solid — they are what stops the Hein Lab's solids-before-liquids
    invariant from classifying as a general rule.
    """
    rng = np.random.default_rng(seed)
    dataset = TraceDataset(name="rad-berlinguette")
    for session in range(sessions):
        deck = build_berlinguette_deck()
        rabit, proxies, trace_records = make_berlinguette_rabit(deck)
        solvent_only = bool(rng.random() < 0.34)
        result = run_workflow(
            build_spray_coating_workflow(proxies, solvent_only=solvent_only)
        )
        if not result.completed:  # pragma: no cover - generator invariant
            raise RuntimeError(
                f"RAD generator session {session} did not complete: {result.alert}"
            )
        dataset.traces.append(
            Trace(
                session_id=f"berlinguette-{session:04d}",
                lab="berlinguette",
                events=events_from_records(
                    trace_records, deck.devices, interior_owner=deck.model.interior_owner
                ),
            )
        )
    return dataset


def generate_combined(
    hein_sessions: int = 20, berlinguette_sessions: int = 12, seed: int = 42
) -> TraceDataset:
    """Both labs' traces in one dataset (the classification input)."""
    combined = TraceDataset(name="rad-combined")
    combined.traces.extend(generate_hein_traces(hein_sessions, seed=seed).traces)
    combined.traces.extend(
        generate_berlinguette_traces(berlinguette_sessions, seed=seed + 1).traces
    )
    return combined
