"""Trace records: one event per intercepted device command.

Events are abstracted to ``(action label, device kind)`` pairs for
mining, so that a rule mined from the Hein Lab's dosing device ("open the
door before entering") transfers to any lab's doored devices — the
paper's general/custom split depends on this abstraction.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.interceptor import CommandRecord
from repro.devices.base import Device


@dataclass(frozen=True)
class TraceEvent:
    """One traced command."""

    time: float
    device: str
    device_kind: str
    label: str
    #: For robot entry commands, the device whose interior is targeted.
    target_device: Optional[str] = None

    @property
    def kind_key(self) -> Tuple[str, str]:
        """The abstracted event type used for mining."""
        return (self.label, self.device_kind)

    @property
    def device_key(self) -> Tuple[str, str]:
        """The concrete event type (label + device instance)."""
        return (self.label, self.device)


@dataclass
class Trace:
    """One experiment session's ordered events."""

    session_id: str
    lab: str
    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


@dataclass
class TraceDataset:
    """A collection of traces (the dataset the miner consumes)."""

    name: str
    traces: List[Trace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    def labs(self) -> Tuple[str, ...]:
        """Distinct lab names present in the dataset."""
        return tuple(sorted({t.lab for t in self.traces}))

    def total_events(self) -> int:
        """Total number of command events across all traces."""
        return sum(len(t) for t in self.traces)

    # -- (de)serialization --------------------------------------------------

    def to_jsonl(self, path: Path) -> None:
        """Write one JSON object per trace."""
        with open(path, "w") as fh:
            for trace in self.traces:
                fh.write(
                    json.dumps(
                        {
                            "session_id": trace.session_id,
                            "lab": trace.lab,
                            "events": [asdict(e) for e in trace.events],
                        }
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: Path, name: str = "dataset") -> "TraceDataset":
        """Load a dataset written by :meth:`to_jsonl`."""
        traces: List[Trace] = []
        with open(path) as fh:
            for line in fh:
                obj = json.loads(line)
                traces.append(
                    Trace(
                        session_id=obj["session_id"],
                        lab=obj["lab"],
                        events=[TraceEvent(**e) for e in obj["events"]],
                    )
                )
        return cls(name=name, traces=traces)


def events_from_records(
    records: Iterable[CommandRecord],
    devices: dict,
    interior_owner: Optional[callable] = None,
) -> List[TraceEvent]:
    """Convert interceptor command records into trace events.

    *interior_owner* maps a location name to the device whose interior it
    is (``None`` otherwise); when provided, robot entry commands carry
    the entered device so the door-rule miner can pair them with that
    device's door commands."""
    events: List[TraceEvent] = []
    for record in records:
        if record.label is None:
            continue
        device: Optional[Device] = devices.get(record.device)
        kind = device.kind.value if device is not None else "unknown"
        target = None
        if interior_owner is not None and record.location is not None:
            target = interior_owner(record.location)
        events.append(
            TraceEvent(
                time=record.time,
                device=record.device,
                device_kind=kind,
                label=record.label.value,
                target_device=target,
            )
        )
    return events
