"""Precedence-rule mining over command traces.

The paper "mined the dataset to identify rules implied by the sequences
of commands", e.g. "device doors must be opened before a robot arm can
enter them" (general) and "solids must be added to containers before
liquids" (Hein-specific).  Both are *precedence invariants*:

    every occurrence of consequent **B** is preceded, within the same
    session, by at least one occurrence of antecedent **A** that has not
    been "consumed" by an earlier B (for resettable pairs like
    open-door/enter, the miner requires an A after the most recent
    B-blocking event).

The miner enumerates event-type pairs at the ``(action label, device
kind)`` abstraction, keeps pairs whose confidence is 1.0 with support
above a floor, and then classifies each surviving rule:

- **general**  — the invariant holds (with support) in every lab's traces;
- **custom**   — it holds in one lab but is violated or unsupported in
  another (the paper's "rules that seemed unique to the lab").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rad.trace import Trace, TraceDataset

EventType = Tuple[str, str]  # (action label, device kind)


@dataclass(frozen=True)
class MinedRule:
    """One precedence invariant: *antecedent* before *consequent*."""

    antecedent: EventType
    consequent: EventType
    support: int  # number of consequent occurrences observed
    confidence: float  # fraction of those preceded by the antecedent
    #: "general" or "custom"; custom rules carry the lab they hold in.
    scope: str = "unclassified"
    lab: Optional[str] = None

    def describe(self) -> str:
        """Human-readable rule statement."""
        a_label, a_kind = self.antecedent
        c_label, c_kind = self.consequent
        text = (
            f"'{a_label}' on a {a_kind.replace('_', ' ')} must precede "
            f"'{c_label}' on a {c_kind.replace('_', ' ')}"
        )
        if self.scope == "custom" and self.lab:
            return f"[custom:{self.lab}] {text}"
        return f"[{self.scope}] {text}"


def _precedence_confidence(
    traces: Iterable[Trace], antecedent: EventType, consequent: EventType
) -> Tuple[int, int]:
    """Count consequent occurrences and how many had a prior antecedent.

    Existential semantics (the standard precedence template): a
    consequent occurrence is satisfied when *some* antecedent occurred
    earlier in the same session.  This is what makes "solids before
    liquids" hold in the Hein traces (one solid dose licenses all later
    solvent doses into the same experiment) and fail in the Berlinguette
    solvent-only runs.
    """
    satisfied = 0
    total = 0
    for trace in traces:
        seen_antecedent = False
        for event in trace:
            if event.kind_key == antecedent:
                seen_antecedent = True
            if event.kind_key == consequent:
                total += 1
                if seen_antecedent:
                    satisfied += 1
    return total, satisfied


#: Robot action labels that take the gripper into a device's interior.
_ENTRY_LABELS = frozenset(
    {"move_robot_inside", "pick_object", "place_object", "open_gripper", "close_gripper"}
)


@dataclass(frozen=True)
class DoorRule:
    """A device-instance invariant: the door is open whenever a robot
    command enters that device (Table III rule 1, as mined from traces)."""

    device: str
    support: int  # number of entry events observed
    violations: int

    @property
    def holds(self) -> bool:
        """Whether the invariant held across all observed entries."""
        return self.violations == 0

    def describe(self) -> str:
        return (
            f"door of {self.device!r} must be open before a robot arm enters "
            f"({self.support} entries, {self.violations} violations)"
        )


def mine_door_rules(dataset: TraceDataset, min_support: int = 3) -> List[DoorRule]:
    """Mine the door-before-enter invariant per doored device.

    Tracks each device's door state through its open/close commands and
    checks that every entry event (a robot command targeting that
    device's interior) happens while the door is open.  Devices whose
    door commands never appear are skipped.
    """
    supports: Dict[str, int] = defaultdict(int)
    violations: Dict[str, int] = defaultdict(int)
    doored: Set[str] = set()
    for trace in dataset.traces:
        door_open: Dict[str, bool] = {}
        for event in trace:
            if event.label == "open_door":
                door_open[event.device] = True
                doored.add(event.device)
            elif event.label == "close_door":
                door_open[event.device] = False
                doored.add(event.device)
            elif event.label in _ENTRY_LABELS and event.target_device:
                supports[event.target_device] += 1
                # Only judge entries once this session has established the
                # door's state via an explicit command; the dataset does
                # not record initial door positions.
                if event.target_device in door_open and not door_open[event.target_device]:
                    violations[event.target_device] += 1
    return [
        DoorRule(device=d, support=supports[d], violations=violations[d])
        for d in sorted(doored)
        if supports[d] >= min_support
    ]


def mine_precedence_rules(
    dataset: TraceDataset,
    min_support: int = 5,
    min_confidence: float = 1.0,
    max_rules: int = 50,
) -> List[MinedRule]:
    """Enumerate (antecedent, consequent) pairs and keep the invariants.

    Trivial pairs (same label) and inverted duplicates of symmetric
    always-co-occurring pairs are pruned; among surviving rules for the
    same consequent, all are kept — the researcher curates the final
    rulebase (the paper resolved conflicts by deferring to the lab's
    experts).
    """
    event_types: Set[EventType] = set()
    for trace in dataset.traces:
        for event in trace:
            event_types.add(event.kind_key)

    rules: List[MinedRule] = []
    for consequent in sorted(event_types):
        for antecedent in sorted(event_types):
            if antecedent == consequent or antecedent[0] == consequent[0]:
                continue
            total, satisfied = _precedence_confidence(
                dataset.traces, antecedent, consequent
            )
            if total < min_support:
                continue
            confidence = satisfied / total
            if confidence >= min_confidence:
                rules.append(
                    MinedRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=total,
                        confidence=confidence,
                    )
                )
    rules.sort(key=lambda r: (-r.support, r.antecedent, r.consequent))
    return rules[:max_rules]


def mine_and_classify(
    dataset: TraceDataset,
    min_support: int = 5,
    max_rules_per_lab: int = 60,
) -> List[MinedRule]:
    """The full pipeline: mine candidates per lab, classify on the union.

    Mining per lab matters: an invariant that holds in one lab's traces
    (solids before liquids in the Hein Lab) would never survive a
    combined-dataset confidence filter when another lab legitimately
    violates it — yet those are exactly the rules the paper classifies
    as *custom*.
    """
    by_lab: Dict[str, TraceDataset] = {}
    for trace in dataset.traces:
        by_lab.setdefault(trace.lab, TraceDataset(name=trace.lab)).traces.append(trace)

    candidates: Dict[Tuple[EventType, EventType], MinedRule] = {}
    for lab_dataset in by_lab.values():
        for rule in mine_precedence_rules(
            lab_dataset, min_support=min_support, max_rules=max_rules_per_lab
        ):
            key = (rule.antecedent, rule.consequent)
            existing = candidates.get(key)
            if existing is None or rule.support > existing.support:
                candidates[key] = rule
    return classify_rules(list(candidates.values()), dataset, min_support=min_support)


def classify_rules(
    rules: Sequence[MinedRule], dataset: TraceDataset, min_support: int = 3
) -> List[MinedRule]:
    """Split mined rules into general vs custom across the dataset's labs.

    A rule is **general** when every lab with enough observations of the
    consequent satisfies it; **custom** when exactly one lab supports it
    and at least one other lab observes the consequent but violates (or
    simply does not exhibit) the invariant.
    """
    labs = dataset.labs()
    by_lab: Dict[str, List[Trace]] = defaultdict(list)
    for trace in dataset.traces:
        by_lab[trace.lab].append(trace)

    classified: List[MinedRule] = []
    for rule in rules:
        holding_labs: List[str] = []
        observing_labs: List[str] = []
        for lab in labs:
            total, satisfied = _precedence_confidence(
                by_lab[lab], rule.antecedent, rule.consequent
            )
            if total >= min_support:
                observing_labs.append(lab)
                if satisfied == total:
                    holding_labs.append(lab)
        if not observing_labs:
            continue
        if len(holding_labs) == len(observing_labs) and len(observing_labs) > 1:
            classified.append(
                MinedRule(
                    rule.antecedent, rule.consequent, rule.support,
                    rule.confidence, scope="general",
                )
            )
        elif len(holding_labs) >= 1:
            classified.append(
                MinedRule(
                    rule.antecedent, rule.consequent, rule.support,
                    rule.confidence, scope="custom", lab=holding_labs[0],
                )
            )
    return classified
