"""Multiplexing throughput analysis.

§IV motivates space multiplexing as "allowing to let them move
concurrently", i.e. it trades coordination machinery for throughput.
This module quantifies the trade on the virtual clock:

- under **time multiplexing**, the two arms' workloads serialize — the
  deck's makespan is the *sum* of both arms' busy time plus the sleep
  handoffs;
- under **space multiplexing**, the arms run concurrently — the makespan
  is the *maximum* of the two independent streams.

Busy time comes from the same per-command baseline model the latency
experiment uses, so the comparison is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.actions import ActionLabel
from repro.core.interceptor import BASELINE_DURATION, CommandRecord


@dataclass(frozen=True)
class MakespanComparison:
    """Virtual makespans of one dual-arm workload under each policy."""

    per_arm_busy: Dict[str, float]
    handoff_seconds: float

    @property
    def time_multiplexed(self) -> float:
        """Serialized: sum of busy times plus the sleep/wake handoffs."""
        return sum(self.per_arm_busy.values()) + self.handoff_seconds

    @property
    def space_multiplexed(self) -> float:
        """Concurrent: the slower arm dominates."""
        return max(self.per_arm_busy.values()) if self.per_arm_busy else 0.0

    @property
    def speedup(self) -> float:
        """Makespan ratio time/space (>1 means space multiplexing wins)."""
        if self.space_multiplexed == 0:
            return 1.0
        return self.time_multiplexed / self.space_multiplexed


def busy_time_per_arm(
    trace: Sequence[CommandRecord], arm_names: Sequence[str]
) -> Dict[str, float]:
    """Total baseline execution time of each arm's commands in *trace*."""
    busy: Dict[str, float] = {name: 0.0 for name in arm_names}
    for record in trace:
        if record.device in busy and record.label is not None:
            busy[record.device] += BASELINE_DURATION.get(record.label, 1.0)
    return busy


def compare_makespans(
    trace: Sequence[CommandRecord],
    arm_names: Sequence[str],
    handoffs: int = 1,
) -> MakespanComparison:
    """Build the comparison from a recorded dual-arm workload.

    *handoffs* counts time-multiplexing sleep/wake transitions (each costs
    one go-to-sleep plus one wake move at the baseline move duration).
    """
    per_arm = busy_time_per_arm(trace, arm_names)
    handoff_cost = handoffs * 2 * BASELINE_DURATION[ActionLabel.GO_SLEEP]
    return MakespanComparison(per_arm_busy=per_arm, handoff_seconds=handoff_cost)
