"""The §II-C latency-overhead experiment.

"We evaluated the latency overhead due to RABIT.  Without the Extended
Simulator, RABIT incurs approximately 0.03 s overhead (1.5 %) ...
However, with the Extended Simulator, RABIT incurs approximately 2 s
overhead (112 %)."

The experiment runs the same safe workflow three ways on the virtual
clock — unmonitored, with RABIT, and with RABIT + Extended Simulator
(GUI in the loop) — and reports the per-command overhead and percentage.
All latency sources are deterministic charges (device execution,
connection round-trips, bookkeeping, simulated GUI renders), so the
reproduction is exact across machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.clock import VirtualClock
from repro.core.interceptor import instrument
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import build_solubility_workflow, run_workflow


@dataclass(frozen=True)
class LatencyReport:
    """One configuration's virtual-time accounting."""

    configuration: str
    commands: int
    experiment_seconds: float
    rabit_seconds: float

    @property
    def total_seconds(self) -> float:
        """Wall time of the monitored run."""
        return self.experiment_seconds + self.rabit_seconds

    @property
    def overhead_per_command(self) -> float:
        """Average RABIT overhead per command (the paper's 0.03 s / ~2 s)."""
        return self.rabit_seconds / self.commands if self.commands else 0.0

    @property
    def overhead_percent(self) -> float:
        """Overhead relative to the unmonitored baseline (1.5 % / 112 %)."""
        if self.experiment_seconds == 0:
            return 0.0
        return 100.0 * self.rabit_seconds / self.experiment_seconds

    def as_dict(self) -> dict:
        """JSON-safe dict of every field plus the derived figures."""
        return {
            "configuration": self.configuration,
            "commands": self.commands,
            "experiment_seconds": self.experiment_seconds,
            "rabit_seconds": self.rabit_seconds,
            "total_seconds": self.total_seconds,
            "overhead_per_command": self.overhead_per_command,
            "overhead_percent": self.overhead_percent,
        }

    def canonical_bytes(self) -> bytes:
        """Canonical serialization via the shared :mod:`repro.trace.canon`
        witness — the recording-on/off differential test compares these."""
        from repro.trace.canon import canonical_bytes

        return canonical_bytes(self.as_dict())


def _run_once(
    monitored: bool, use_es: bool, bypass_gui: bool = False, compiled: bool = True
) -> LatencyReport:
    deck = build_hein_deck()
    clock = VirtualClock()
    if monitored:
        options = RabitOptions.modified(
            use_extended_simulator=use_es, bypass_gui=bypass_gui,
            compiled_dispatch=compiled,
        )
        rabit, proxies, trace = make_hein_rabit(
            deck, options=options, use_extended_simulator=use_es, clock=clock
        )
    else:
        proxies, trace = instrument(deck.devices, rabit=None, clock=clock)
    result = run_workflow(build_solubility_workflow(proxies))
    if not result.completed:  # pragma: no cover - safe workflow invariant
        raise RuntimeError(f"latency workflow did not complete: {result.alert}")

    breakdown = clock.breakdown()
    rabit_seconds = sum(v for k, v in breakdown.items() if k.startswith("rabit"))
    name = "unmonitored"
    if monitored:
        name = "rabit+es" if use_es else "rabit"
        if use_es and bypass_gui:
            name = "rabit+es-headless"
    return LatencyReport(
        configuration=name,
        commands=len(trace),
        experiment_seconds=breakdown.get("experiment", 0.0),
        rabit_seconds=rabit_seconds,
    )


def measure_workflow_latency(compiled: bool = True) -> Dict[str, LatencyReport]:
    """Run the experiment in all four configurations.

    Returns reports keyed by configuration: ``unmonitored``, ``rabit``
    (the 1.5 % row), ``rabit+es`` (the 112 % row), and
    ``rabit+es-headless`` (the paper's planned GUI-bypass deployment).
    ``compiled=False`` routes the monitored runs through the interpreted
    full-rulebase scan instead of the compiled decision lists; the
    virtual-clock figures are identical either way (dispatch affects
    host CPU time, never charged virtual time), which the differential
    suite pins.
    """
    return {
        report.configuration: report
        for report in (
            _run_once(monitored=False, use_es=False),
            _run_once(monitored=True, use_es=False, compiled=compiled),
            _run_once(monitored=True, use_es=True, compiled=compiled),
            _run_once(monitored=True, use_es=True, bypass_gui=True, compiled=compiled),
        )
    }
