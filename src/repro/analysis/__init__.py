"""Evaluation machinery: metrics, report tables, and the latency harness.

- :mod:`repro.analysis.metrics` -- detection/false-positive accounting.
- :mod:`repro.analysis.report` -- plain-text tables matching the paper's
  layout (the benchmark harness prints these).
- :mod:`repro.analysis.latency` -- the §II-C overhead experiment on the
  virtual clock.
"""

from repro.analysis.metrics import DetectionStats, false_positive_check
from repro.analysis.report import format_table, format_severity_table
from repro.analysis.latency import LatencyReport, measure_workflow_latency
from repro.analysis.concurrency import MakespanComparison, compare_makespans
from repro.analysis.session_report import (
    SessionSummary,
    render_session_report,
    summarize_session,
)

__all__ = [
    "DetectionStats",
    "false_positive_check",
    "format_table",
    "format_severity_table",
    "LatencyReport",
    "measure_workflow_latency",
    "MakespanComparison",
    "compare_makespans",
    "SessionSummary",
    "render_session_report",
    "summarize_session",
]
