"""Plain-text tables for the benchmark harness.

The benches print tables shaped like the paper's (Tables I-V), so a
side-by-side comparison with the PDF is a visual diff.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


_SEVERITY_TITLES = {
    "low": "Low: wasting chemical materials",
    "medium_low": "Medium-Low: breakage of glassware",
    "medium_high": "Medium-High: harm to environment / inexpensive objects",
    "high": "High: breaking expensive equipment",
}


def format_severity_table(rows: Sequence[Tuple[str, int, int]]) -> str:
    """Render Table V: severity band, total bugs, detected bugs."""
    display = [
        (_SEVERITY_TITLES.get(sev, sev), total, detected)
        for sev, total, detected in rows
    ]
    display.append(
        (
            "Total",
            sum(r[1] for r in rows),
            sum(r[2] for r in rows),
        )
    )
    return format_table(
        ["Severity of Bugs", "Total", "Detected"],
        display,
        title="Table V — severity of bugs vs. RABIT detection",
    )
