"""Detection-rate and false-positive metrics for campaign results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.devices.world import DamageSeverity
from repro.faults.campaign import CampaignResult
from repro.faults.montecarlo import MonteCarloReport


@dataclass(frozen=True)
class DetectionStats:
    """Summary of one configuration's campaign performance."""

    config: str
    total: int
    detected: int

    @property
    def rate(self) -> float:
        """Detection rate in [0, 1]."""
        return self.detected / self.total if self.total else 0.0

    @property
    def percent(self) -> int:
        """Detection rate as the paper reports it (rounded percent)."""
        return round(self.rate * 100)


def campaign_stats(result: CampaignResult, config: str) -> DetectionStats:
    """Detection stats for one configuration of a campaign run."""
    outcomes = [o for o in result.outcomes if o.config == config]
    return DetectionStats(
        config=config,
        total=len(outcomes),
        detected=sum(1 for o in outcomes if o.detected),
    )


def severity_rows(
    result: CampaignResult, config: str
) -> List[Tuple[str, int, int]]:
    """Table V rows for *config*: (severity, total, detected), in the
    paper's low-to-high order."""
    table = result.by_severity(config)
    rows: List[Tuple[str, int, int]] = []
    for severity in (
        DamageSeverity.LOW,
        DamageSeverity.MEDIUM_LOW,
        DamageSeverity.MEDIUM_HIGH,
        DamageSeverity.HIGH,
    ):
        total, detected = table.get(severity, (0, 0))
        rows.append((severity.value, total, detected))
    return rows


#: §IV's four unsafe-behaviour categories, in the paper's order.
CATEGORY_TITLES = {
    1: "Interactions with the dosing device door",
    2: "Collisions between two robot arms",
    3: "Experiments without a vial",
    4: "Changing position coordinates",
}


def category_rows(
    result: CampaignResult, config: str
) -> List[Tuple[int, str, int, int]]:
    """§IV category rows for *config*: (number, title, total, detected)."""
    rows: List[Tuple[int, str, int, int]] = []
    for number in sorted(CATEGORY_TITLES):
        outcomes = [
            o
            for o in result.outcomes
            if o.config == config and o.bug.category == number
        ]
        rows.append(
            (
                number,
                CATEGORY_TITLES[number],
                len(outcomes),
                sum(1 for o in outcomes if o.detected),
            )
        )
    return rows


@dataclass(frozen=True)
class ConfusionStats:
    """Confusion matrix of a Monte Carlo mutant sweep."""

    true_positive: int
    false_negative: int
    false_positive: int
    true_negative: int
    detection_rate: float
    false_alarm_rate: float

    @property
    def total(self) -> int:
        """Mutants scored."""
        return (
            self.true_positive
            + self.false_negative
            + self.false_positive
            + self.true_negative
        )

    @property
    def harmful(self) -> int:
        """Mutants whose unmonitored run caused damage."""
        return self.true_positive + self.false_negative

    @property
    def benign(self) -> int:
        """Mutants that changed nothing safety-relevant."""
        return self.false_positive + self.true_negative


def montecarlo_stats(report: MonteCarloReport) -> ConfusionStats:
    """Confusion stats for one Monte Carlo sweep."""
    return ConfusionStats(
        true_positive=report.count("true_positive"),
        false_negative=report.count("false_negative"),
        false_positive=report.count("false_positive"),
        true_negative=report.count("true_negative"),
        detection_rate=report.detection_rate,
        false_alarm_rate=report.false_alarm_rate,
    )


def montecarlo_rows(report: MonteCarloReport) -> List[List[str]]:
    """Confusion-matrix table rows for the CLI / benchmark summaries."""
    stats = montecarlo_stats(report)
    return [
        ["sampled mutants", str(stats.total), "single naive-programmer edits"],
        ["harmful (ground truth)", str(stats.harmful), "unmonitored run caused damage"],
        ["detected (true positives)", str(stats.true_positive), ""],
        ["missed (false negatives)", str(stats.false_negative),
         "sensing gaps: Bug-C-class, arm-arm"],
        ["benign mutants", str(stats.benign), ""],
        ["false alarms", str(stats.false_positive), "paper's claim: zero"],
        ["estimated detection rate", f"{stats.detection_rate * 100:.0f} %",
         "paper's 16-bug estimate: 75 %"],
        ["estimated false-alarm rate", f"{stats.false_alarm_rate * 100:.0f} %",
         "paper: 0 %"],
    ]


def false_positive_check(alerts: Sequence, workflow_completed: bool) -> bool:
    """The paper's no-false-alarms property for one safe run:
    the workflow completed and RABIT raised nothing."""
    return workflow_completed and len(alerts) == 0
