"""Post-run session audit reports.

A deployed safety monitor needs an audit trail: what ran, what RABIT
vetoed and why, what (if anything) physically went wrong.  This module
assembles that report from the three artifacts every monitored run
already produces — the RATracer-style command trace, the monitor's alert
log, and the ground-truth damage log — as a plain-text document suitable
for a lab notebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import Alert
from repro.core.interceptor import CommandRecord
from repro.devices.world import LabWorld
from repro.obs import OBS, Observability


@dataclass(frozen=True)
class SessionSummary:
    """The numbers the report leads with."""

    commands: int
    vetoed: int
    alerts: int
    damage_events: int
    virtual_duration: float

    @property
    def clean(self) -> bool:
        """A clean session: nothing vetoed, nothing broken."""
        return self.alerts == 0 and self.damage_events == 0


def summarize_session(
    trace: Sequence[CommandRecord],
    alerts: Sequence[Alert],
    world: LabWorld,
) -> SessionSummary:
    """Aggregate a run's artifacts into the headline numbers."""
    vetoed = sum(1 for record in trace if record.alert is not None)
    duration = trace[-1].time if trace else 0.0
    return SessionSummary(
        commands=len(trace),
        vetoed=vetoed,
        alerts=len(alerts),
        damage_events=len(world.damage_log),
        virtual_duration=duration,
    )


def render_session_report(
    trace: Sequence[CommandRecord],
    alerts: Sequence[Alert],
    world: LabWorld,
    title: str = "RABIT session report",
    command_window: int = 12,
    observability: Optional[Observability] = None,
) -> str:
    """Render the audit document.

    ``command_window`` bounds how many trailing commands are echoed in
    full; the alert and damage sections are always complete.  When the
    run was observed (``observability`` passed explicitly, or the global
    :data:`~repro.obs.OBS` runtime recorded spans), an "Observability"
    section summarizes interception counters, rule-cache efficiency, and
    the hottest span names.
    """
    summary = summarize_session(trace, alerts, world)
    lines: List[str] = [title, "=" * len(title), ""]

    verdict = "CLEAN" if summary.clean else "ATTENTION REQUIRED"
    lines += [
        f"verdict:            {verdict}",
        f"commands executed:  {summary.commands}",
        f"commands vetoed:    {summary.vetoed}",
        f"alerts raised:      {summary.alerts}",
        f"damage events:      {summary.damage_events}",
        f"virtual duration:   {summary.virtual_duration:.1f} s",
        "",
    ]

    if alerts:
        lines.append("Alerts")
        lines.append("------")
        for i, alert in enumerate(alerts, 1):
            lines.append(f"{i}. {alert}")
            if alert.command:
                lines.append(f"   command: {alert.command}")
        lines.append("")

    if world.damage_log:
        lines.append("Ground-truth damage")
        lines.append("-------------------")
        for i, event in enumerate(world.damage_log, 1):
            lines.append(f"{i}. {event}")
        lines.append("")

    lines.append(f"Command trace (last {min(command_window, len(trace))} of {len(trace)})")
    lines.append("-" * 20)
    for record in list(trace)[-command_window:]:
        lines.append(str(record))

    per_device: Dict[str, int] = {}
    for record in trace:
        per_device[record.device] = per_device.get(record.device, 0) + 1
    if per_device:
        lines += ["", "Commands per device", "-" * 19]
        for device, count in sorted(per_device.items(), key=lambda kv: -kv[1]):
            lines.append(f"{device:20s} {count}")

    obs = observability if observability is not None else OBS
    if obs.collector.recorded:
        lines += ["", *_observability_section(obs)]

    return "\n".join(lines)


def _observability_section(obs: Observability) -> List[str]:
    """The audit report's runtime-observability digest."""
    summary = obs.summary()
    lines = ["Observability", "-" * 13]
    lines.append(f"commands intercepted:  {summary['commands_intercepted']:.0f}")
    for outcome, count in sorted(summary["verdicts"].items()):
        lines.append(f"  verdict {outcome:18s} {count:.0f}")
    hits, misses = summary["rule_cache_hits"], summary["rule_cache_misses"]
    if hits or misses:
        lines.append(
            f"rule cache:            {hits:.0f} hit / {misses:.0f} miss "
            f"({100.0 * summary['rule_cache_hit_rate']:.1f} %)"
        )
    if summary["collision_segments_swept"]:
        lines.append(
            f"collision sweep:       {summary['collision_segments_swept']:.0f} "
            f"segments over {summary['geometry_pair_checks']:.0f} pair checks"
        )
    lines.append(
        f"spans recorded:        {summary['spans_recorded']} "
        f"({summary['spans_dropped']} dropped)"
    )
    totals = obs.collector.totals_by_name()
    hottest = sorted(totals.items(), key=lambda kv: -kv[1]["wall_seconds"])[:5]
    for name, agg in hottest:
        lines.append(
            f"  {name:28s} x{agg['count']:<6.0f} {agg['wall_seconds'] * 1e3:8.2f} ms"
        )
    return lines
