"""RABIT's discrete lab state.

Table II's state variables are *discrete*: ``deviceDoorStatus``,
``robotArmInside``, ``robotArmHolding`` — notably **not** Cartesian robot
positions.  This is load-bearing for the evaluation: because RABIT tracks
moves only through discrete containment changes, a ViperX that silently
skips a move (§IV, category 4) leaves no state discrepancy for RABIT to
notice, and two arms colliding mid-space (category 2) changes no tracked
variable at all.

State variables fall into two classes:

- **observable** — reported by a device status command, so ``FetchState()``
  refreshes them and the expected-vs-actual comparison (Fig. 2 lines 13-15)
  covers them: door status, device active flags, action values, rotor
  red-dot, vial stoppers, dosing totals.
- **tracked** — carried forward from postconditions only, because no
  sensor reports them: what a gripper holds, what a vial contains, where a
  vial rests, which robot is inside which device.

``LabState`` stores both as ``var -> key -> value`` nested mappings.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Variables a status command can refresh.
OBSERVABLE_VARS = frozenset(
    {
        "door_status",  # device -> "open" | "closed"
        "device_active",  # device -> bool
        "action_value",  # device -> float
        "red_dot",  # centrifuge -> "N" | "E" | "S" | "W"
        "container_stopper",  # vial -> "on" | "off"
        "dispensed_mg",  # doser -> float
        "dispensed_ml",  # pump -> float
        "gripper",  # robot -> "open" | "closed"
        "zone_occupied",  # proximity sensor -> bool (§V-B extension)
    }
)

#: Variables only postconditions maintain (no sensor exists).
TRACKED_VARS = frozenset(
    {
        "robot_holding",  # robot -> vial name | None
        "robot_inside",  # robot -> device name | None
        "robot_entry_door",  # robot -> named door it entered through | None
        "container_at",  # vial -> location name | None
        "container_solid",  # vial -> mg (believed)
        "container_liquid",  # vial -> mL (believed)
    }
)

#: Observable variables that change *spontaneously* (no command drives
#: them): sensor readings.  They are refreshed by FetchState like any
#: observable, but excluded from the expected-vs-actual malfunction
#: comparison — a person stepping into a zone is not a device fault.
VOLATILE_VARS = frozenset({"zone_occupied"})

ALL_VARS = OBSERVABLE_VARS | TRACKED_VARS

#: Absolute tolerance when comparing float-valued observables.
FLOAT_TOLERANCE = 1e-6

#: Sentinel distinguishing "no entry" from a stored ``None`` value when
#: maintaining the incremental fingerprint token.
_ABSENT = object()


class LabState:
    """One snapshot of every state variable of every device."""

    def __init__(self) -> None:
        self._vars: Dict[str, Dict[str, Any]] = {var: {} for var in ALL_VARS}
        #: Lazily computed content fingerprint; ``None`` means stale.
        self._fingerprint: Optional[Tuple] = None
        #: Incrementally maintained content token (see
        #: :meth:`fingerprint_token`): the XOR of ``hash((var, key,
        #: value))`` over every populated entry, updated in O(1) on each
        #: mutation instead of rebuilt from the full state.
        self._fp_token: int = 0

    # -- access ----------------------------------------------------------------

    def get(self, var: str, key: str, default: Any = None) -> Any:
        """Value of state variable *var* for device/vial/robot *key*."""
        self._check_var(var)
        return self._vars[var].get(key, default)

    def set(self, var: str, key: str, value: Any) -> None:
        """Set state variable *var* for *key* to *value*."""
        self._check_var(var)
        self._write(var, key, value)

    def _write(self, var: str, key: str, value: Any) -> None:
        """Store one entry, keeping the incremental token in sync.

        The token update is two integer XORs — no container is rebuilt,
        sorted, or even touched beyond the entry itself — which is what
        keeps cache-key construction off the guarded hot path."""
        entries = self._vars[var]
        old = entries.get(key, _ABSENT)
        if old is not _ABSENT:
            self._fp_token ^= hash((var, key, old))
        entries[key] = value
        self._fp_token ^= hash((var, key, value))
        self._fingerprint = None

    def entries(self, var: str) -> Dict[str, Any]:
        """All ``key -> value`` entries of one variable."""
        self._check_var(var)
        return dict(self._vars[var])

    def keys_where(self, var: str, value: Any) -> List[str]:
        """All keys whose *var* entry equals *value*."""
        self._check_var(var)
        return [k for k, v in self._vars[var].items() if v == value]

    def vial_at(self, location: str) -> Optional[str]:
        """Name of the vial RABIT believes rests at *location*."""
        matches = self.keys_where("container_at", location)
        return matches[0] if matches else None

    @staticmethod
    def _check_var(var: str) -> None:
        if var not in ALL_VARS:
            raise KeyError(f"unknown state variable {var!r}; known: {sorted(ALL_VARS)}")

    # -- snapshots --------------------------------------------------------------

    def copy(self) -> "LabState":
        """Deep copy of this snapshot."""
        dup = LabState()
        for var, entries in self._vars.items():
            dup._vars[var] = dict(entries)
        dup._fingerprint = self._fingerprint
        dup._fp_token = self._fp_token
        return dup

    def merge_observed(self, observed: "LabState") -> "LabState":
        """The paper's post-execution state: observed values override the
        expected values for observable variables; tracked variables carry
        forward unchanged (nothing can refresh them)."""
        merged = self.copy()
        for var in OBSERVABLE_VARS:
            for key, value in observed._vars[var].items():
                merged._write(var, key, value)
        return merged

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Populated variables as plain nested dicts (JSON-safe when the
        stored values are; the trace recorder canonicalizes this)."""
        return {
            var: dict(self._vars[var])
            for var in sorted(self._vars)
            if self._vars[var]
        }

    def delta_from(self, previous: "LabState") -> List[Tuple[str, str, Any]]:
        """Entries that changed since *previous*, as sorted triples.

        Returns ``(var, key, new_value)`` for every entry added or
        changed, and ``(var, key, None)`` for the (in practice unused)
        removal case — the state-delta stream a run trace records."""
        changes: List[Tuple[str, str, Any]] = []
        for var in sorted(ALL_VARS):
            mine = self._vars[var]
            theirs = previous._vars[var]
            for key in sorted(set(mine) | set(theirs)):
                if key not in mine:
                    changes.append((var, key, None))
                elif key not in theirs or mine[key] != theirs[key]:
                    changes.append((var, key, mine[key]))
        return changes

    # -- fingerprinting -----------------------------------------------------

    def fingerprint(self) -> Tuple:
        """A stable, hashable digest of the full state contents.

        Two snapshots with equal contents produce equal fingerprints, and
        any mutation through :meth:`set` / :meth:`merge_observed`
        invalidates the cached value.  The rule-verdict cache keys on this
        (plus the action call), so a verdict computed under one state can
        never be served under a different one — the digest is the actual
        content tuple, not a lossy hash, so collisions are impossible.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(
                (var, tuple(sorted(self._vars[var].items())))
                for var in sorted(self._vars)
                if self._vars[var]
            )
        return self._fingerprint

    def fingerprint_token(self) -> int:
        """The incremental content token — the compiled-dispatch cache key.

        The XOR of ``hash((var, key, value))`` over every stored entry,
        maintained entry-by-entry on mutation: content-equal snapshots
        produce equal tokens regardless of mutation history (XOR is
        commutative and self-inverse), and reading it costs one
        attribute access instead of the O(state) sorted-tuple rebuild
        :meth:`fingerprint` pays after every mutation.  Unlike the exact
        content tuple this is a lossy 64-bit digest — two *different*
        states colliding is possible in principle (~2^-64 per pair) —
        which is why the interpreted reference path keeps the exact
        tuple and the differential suite pins both paths to identical
        verdicts.
        """
        return self._fp_token

    # -- comparison ---------------------------------------------------------------

    def diff_observable(self, other: "LabState") -> List[Tuple[str, str, Any, Any]]:
        """Mismatches between two snapshots over observable variables.

        Compares only keys present in *both* snapshots — a device that
        reports an extra field is not a malfunction; a device whose
        expected value differs from its report is.  Returns tuples of
        ``(var, key, expected, actual)``.
        """
        mismatches: List[Tuple[str, str, Any, Any]] = []
        for var in sorted(OBSERVABLE_VARS - VOLATILE_VARS):
            mine = self._vars[var]
            theirs = other._vars[var]
            for key in sorted(set(mine) & set(theirs)):
                a, b = mine[key], theirs[key]
                if isinstance(a, float) or isinstance(b, float):
                    if abs(float(a) - float(b)) > FLOAT_TOLERANCE:
                        mismatches.append((var, key, a, b))
                elif a != b:
                    mismatches.append((var, key, a, b))
        return mismatches

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        populated = {
            var: entries for var, entries in self._vars.items() if entries
        }
        return f"LabState({populated!r})"
