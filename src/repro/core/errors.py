"""Alerts and the exception RABIT raises through the tracing layer.

Fig. 2 has three ``alertAndStop`` sites; each gets an :class:`AlertKind`:

- ``INVALID_COMMAND`` — a precondition failed (line 7, "Invalid Command!");
- ``INVALID_TRAJECTORY`` — the Extended Simulator predicts a collision
  (line 10, "Invalid trajectory!");
- ``DEVICE_MALFUNCTION`` — post-execution state differs from the expected
  state (line 15, "Device malfunction!").

The reconfigured tracer "raises a Python exception" when RABIT alerts
(§II-C); that exception is :class:`SafetyViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class AlertKind(Enum):
    """Which ``alertAndStop`` site fired."""

    INVALID_COMMAND = "invalid_command"
    INVALID_TRAJECTORY = "invalid_trajectory"
    DEVICE_MALFUNCTION = "device_malfunction"


@dataclass(frozen=True)
class Alert:
    """One safety alert raised by RABIT.

    ``rule_id`` names the violated rule for precondition alerts (e.g.
    ``"G1"`` for Table III rule 1); trajectory/malfunction alerts carry
    ``None``.  ``command`` is the textual form of the intercepted command.
    """

    kind: AlertKind
    message: str
    command: str = ""
    rule_id: Optional[str] = None
    involved: Tuple[str, ...] = ()

    def __str__(self) -> str:
        rule = f" [{self.rule_id}]" if self.rule_id else ""
        return f"{self.kind.value}{rule}: {self.message}"


class SafetyViolation(Exception):
    """Raised into the experiment script when RABIT stops the experiment."""

    def __init__(self, alert: Alert) -> None:
        super().__init__(str(alert))
        self.alert = alert
