"""The human-safety rule built on the §V-B sensor extension.

RABIT "in its current state ... does not consider nearby humans"; the
paper proposes responding "to sensor inputs that indicate a robot arm is
approaching the area that is occupied".  :func:`make_proximity_rule`
builds exactly that rule, registered at run time like any lab-specific
customization:

    **S1** — a robot arm may not move into (or through) a sensor-watched
    zone while the sensor reports it occupied.

The check consults only RABIT-visible information: the sensor's
observable status bit (refreshed by every ``FetchState``), the zone
cuboid from configuration, and — when robot handles are provided — the
arm's *reported* position for path sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.actions import ActionLabel
from repro.core.rulebase import CheckContext, Rule, RuleScope
from repro.devices.robot import RobotArmDevice
from repro.devices.sensor import ProximitySensor
from repro.geometry.collision import segment_cuboid_entry_time

_GUARDED_LABELS = frozenset(
    {
        ActionLabel.MOVE_ROBOT,
        ActionLabel.MOVE_ROBOT_INSIDE,
        ActionLabel.PICK_OBJECT,
        ActionLabel.PLACE_OBJECT,
    }
)


def make_proximity_rule(
    sensors: Dict[str, ProximitySensor],
    robots: Optional[Dict[str, RobotArmDevice]] = None,
    rule_id: str = "S1",
) -> Rule:
    """Build the occupied-zone precondition over *sensors*.

    The rule reads zone occupancy from RABIT's state (the observable
    ``zone_occupied`` variable), so a stuck sensor fools it exactly the
    way it would fool the real system — the false-alarm trade-off the
    Berlinguette Lab described.  Passing *robots* enables sweeping the
    straight tool path from each arm's reported position; otherwise only
    the commanded target is probed.
    """
    robot_handles = dict(robots or {})

    def check(ctx: CheckContext) -> Optional[str]:
        call = ctx.call
        if call.robot is None or call.target is None:
            return None
        robot_model = ctx.model.device(call.robot)
        frame = robot_model.frame or call.robot
        target = np.asarray(call.target, dtype=np.float64)
        for name, sensor in sensors.items():
            # Poll the sensor's status command at validation time — zone
            # occupancy changes spontaneously, so the snapshot taken after
            # the previous command may already be stale.
            if not sensor.status()["occupied"]:
                continue
            zone = sensor.zones.get(frame)
            if zone is None:
                continue
            if zone.contains(target):
                return (
                    f"sensor {name!r} reports its zone occupied; robot "
                    f"{call.robot!r} may not move into it"
                )
            robot = robot_handles.get(call.robot)
            if robot is not None:
                start = np.asarray(robot.status()["position"], dtype=np.float64)
                if segment_cuboid_entry_time(start, target, zone) is not None:
                    return (
                        f"sensor {name!r} reports its zone occupied; the path "
                        f"of {call.robot!r} would cross it"
                    )
        return None

    return Rule(
        rule_id=rule_id,
        scope=RuleScope.CUSTOM,
        description=(
            "Robot arm cannot move into a sensor-watched zone while the "
            "sensor reports it occupied (human-safety extension, §V-B)"
        ),
        labels=_GUARDED_LABELS,
        check=check,
    )
