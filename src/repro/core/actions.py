"""Action labels, intercepted calls, and the state-transition table.

§II-C: "We use the information from the JSON files to populate a state
transition table, which is a two-dimensional labeled data structure
similar to Table II."  :class:`TransitionTable` is that structure: for
each action label it stores the human-readable pre/postcondition strings
(regenerated verbatim by the Table II benchmark) and an executable
postcondition applier that turns the current state into the expected
state (Fig. 2 line 11, ``UpdateState``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.state import LabState


class ActionLabel(Enum):
    """Every action RABIT understands, across the four device types."""

    # Robot arm
    MOVE_ROBOT = "move_robot"
    MOVE_ROBOT_INSIDE = "move_robot_inside"
    PICK_OBJECT = "pick_object"
    PLACE_OBJECT = "place_object"
    #: Raw jaw commands, used by testbed script helpers.  Unlike the
    #: modeled pick/place wrapper commands, these carry no verifiable
    #: holding semantics (no gripper pressure sensor — §IV category 3), so
    #: they get best-effort postconditions and no holding preconditions.
    OPEN_GRIPPER = "open_gripper"
    CLOSE_GRIPPER = "close_gripper"
    GO_HOME = "go_home"
    GO_SLEEP = "go_sleep"
    # Doors
    OPEN_DOOR = "open_door"
    CLOSE_DOOR = "close_door"
    # Dosing systems
    START_DOSING = "start_dosing"
    DOSE_LIQUID = "dose_liquid"
    STOP_DOSING = "stop_dosing"
    # Action devices
    START_ACTION = "start_action"
    STOP_ACTION = "stop_action"
    SET_ACTION_VALUE = "set_action_value"
    ROTATE_ROTOR = "rotate_rotor"
    # Containers
    CAP = "cap"
    DECAP = "decap"


@dataclass(frozen=True)
class ActionCall:
    """One intercepted command, resolved to an action label plus context.

    ``device`` is the commanded device; ``robot`` is set for robot-arm
    actions; ``location`` is the resolved location *name* for moves and
    pick/place (None when the script passed raw coordinates or the
    position is implicit); ``target`` is the raw coordinate triple in the
    robot's own frame when known; ``value``/``quantity`` carry numeric
    arguments (setpoints, dose amounts).
    """

    label: ActionLabel
    device: str
    robot: Optional[str] = None
    location: Optional[str] = None
    target: Optional[Tuple[float, float, float]] = None
    value: Optional[float] = None
    quantity: Optional[float] = None
    direction: Optional[str] = None
    raw_command: str = ""

    def describe(self) -> str:
        """Short human-readable form for alerts and traces."""
        parts = [self.label.value, f"device={self.device}"]
        if self.location:
            parts.append(f"location={self.location}")
        if self.target is not None:
            x, y, z = self.target
            parts.append(f"target=({x:.3f}, {y:.3f}, {z:.3f})")
        if self.value is not None:
            parts.append(f"value={self.value:g}")
        if self.quantity is not None:
            parts.append(f"quantity={self.quantity:g}")
        return " ".join(parts)


PostconditionFn = Callable[[LabState, ActionCall, "TransitionContext"], None]


@dataclass
class TransitionContext:
    """Extra lab knowledge postconditions need (location kinds, ownership).

    Provided by :class:`repro.core.model.RabitLabModel`; kept abstract here
    so the transition table has no import cycle with the model.
    """

    #: location name -> owning device, for interior locations.
    interior_owner: Callable[[str], Optional[str]]
    #: device name -> load location name (where its vial sits), if any.
    load_location: Callable[[str], Optional[str]]
    #: location name -> named door guarding it (multi-door devices), if any.
    via_door: Callable[[str], Optional[str]] = lambda loc: None


@dataclass(frozen=True)
class TransitionRow:
    """One row of Table II: an action with its condition strings."""

    label: ActionLabel
    example: str
    preconditions: str
    postconditions: str
    apply: PostconditionFn


def _post_move(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    assert call.robot is not None
    state.set("robot_inside", call.robot, None)
    state.set("robot_entry_door", call.robot, None)


def _set_containment(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    assert call.robot is not None
    owner = ctx.interior_owner(call.location) if call.location else None
    state.set("robot_inside", call.robot, owner)
    state.set(
        "robot_entry_door",
        call.robot,
        ctx.via_door(call.location) if (owner and call.location) else None,
    )


def _post_move_inside(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    _set_containment(state, call, ctx)


def _post_pick(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    assert call.robot is not None
    vial = state.vial_at(call.location) if call.location else None
    if vial is not None:
        state.set("robot_holding", call.robot, vial)
        state.set("container_at", vial, None)
    # Picking at a device-interior location leaves the gripper inside the
    # device (same containment semantics as move_robot_inside).
    if call.location is not None:
        _set_containment(state, call, ctx)


def _post_place(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    assert call.robot is not None
    vial = state.get("robot_holding", call.robot)
    if vial is not None and call.location is not None:
        state.set("container_at", vial, call.location)
    state.set("robot_holding", call.robot, None)
    state.set("gripper", call.robot, "open")
    if call.location is not None:
        _set_containment(state, call, ctx)


def _post_pick_gripper(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    _post_pick(state, call, ctx)
    assert call.robot is not None
    state.set("gripper", call.robot, "closed")


def _post_open_door(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("door_status", call.device, "open")


def _post_close_door(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("door_status", call.device, "closed")


def _post_start_dosing(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("device_active", call.device, True)
    load = ctx.load_location(call.device)
    vial = state.vial_at(load) if load else None
    if vial is not None and call.quantity is not None:
        solid = float(state.get("container_solid", vial, 0.0))
        state.set("container_solid", vial, solid + call.quantity)
    if call.quantity is not None:
        prior = float(state.get("dispensed_mg", call.device, 0.0))
        state.set("dispensed_mg", call.device, prior + call.quantity)


def _post_dose_liquid(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    load = ctx.load_location(call.device)
    vial = state.vial_at(load) if load else None
    if vial is not None and call.quantity is not None:
        liquid = float(state.get("container_liquid", vial, 0.0))
        state.set("container_liquid", vial, liquid + call.quantity)
    if call.quantity is not None:
        prior = float(state.get("dispensed_ml", call.device, 0.0))
        state.set("dispensed_ml", call.device, prior + call.quantity)


def _post_stop_dosing(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("device_active", call.device, False)


def _post_start_action(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("device_active", call.device, True)
    if call.value is not None:
        state.set("action_value", call.device, float(call.value))


def _post_stop_action(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("device_active", call.device, False)


def _post_set_value(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    if call.value is not None:
        state.set("action_value", call.device, float(call.value))


def _post_rotate(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    if call.direction is not None:
        state.set("red_dot", call.device, call.direction)


def _post_cap(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("container_stopper", call.device, "on")


def _post_decap(state: LabState, call: ActionCall, ctx: TransitionContext) -> None:
    state.set("container_stopper", call.device, "off")


class TransitionTable:
    """Table II as an executable structure."""

    def __init__(self) -> None:
        self._rows: Dict[ActionLabel, TransitionRow] = {}
        for row in _default_rows():
            self._rows[row.label] = row

    def row(self, label: ActionLabel) -> TransitionRow:
        """The table row for *label*."""
        try:
            return self._rows[label]
        except KeyError:
            raise KeyError(f"no transition row for action {label!r}") from None

    def rows(self) -> List[TransitionRow]:
        """All rows, in declaration order."""
        return list(self._rows.values())

    def expected_state(
        self, current: LabState, call: ActionCall, ctx: TransitionContext
    ) -> LabState:
        """Fig. 2 line 11: ``S_expected <- UpdateState(S_current, a_next)``."""
        expected = current.copy()
        self.row(call.label).apply(expected, call, ctx)
        return expected


def _default_rows() -> List[TransitionRow]:
    return [
        TransitionRow(
            ActionLabel.MOVE_ROBOT,
            "Moving a robot arm to a deck location",
            "target location not occupied by any object",
            "robotArmInside[robot] = none",
            _post_move,
        ),
        TransitionRow(
            ActionLabel.MOVE_ROBOT_INSIDE,
            "Moving a robot arm inside a specific device",
            "deviceDoorStatus[device] = 1",
            "robotArmInside[robot][device] = 1",
            _post_move_inside,
        ),
        TransitionRow(
            ActionLabel.PICK_OBJECT,
            "Using a robot arm to pick up an object (a vial in this case)",
            "robotArmHolding[robot] = 0",
            "robotArmHolding[robot] = 1",
            _post_pick_gripper,
        ),
        TransitionRow(
            ActionLabel.PLACE_OBJECT,
            "Using a robot arm to place an object (a vial in this case)",
            "robotArmHolding[robot] = 1",
            "robotArmHolding[robot] = 0",
            _post_place,
        ),
        TransitionRow(
            ActionLabel.OPEN_GRIPPER,
            "Opening the gripper jaws (raw command)",
            "(always allowed — holding is not verifiable)",
            "robotArmHolding[robot] = 0; believed vial rests at nearest location",
            _post_place,
        ),
        TransitionRow(
            ActionLabel.CLOSE_GRIPPER,
            "Closing the gripper jaws (raw command)",
            "robotArmHolding[robot] = 0",
            "robotArmHolding[robot] = believed vial at matched location",
            _post_pick_gripper,
        ),
        TransitionRow(
            ActionLabel.GO_HOME,
            "Moving a robot arm to its home posture",
            "(always allowed)",
            "robotArmInside[robot] = none",
            _post_move,
        ),
        TransitionRow(
            ActionLabel.GO_SLEEP,
            "Moving a robot arm to its sleep posture",
            "(always allowed)",
            "robotArmInside[robot] = none",
            _post_move,
        ),
        TransitionRow(
            ActionLabel.OPEN_DOOR,
            "Opening a device's software-controlled door",
            "device not running",
            "deviceDoorStatus[device] = open",
            _post_open_door,
        ),
        TransitionRow(
            ActionLabel.CLOSE_DOOR,
            "Closing a device's software-controlled door",
            "no robot arm inside the device",
            "deviceDoorStatus[device] = closed",
            _post_close_door,
        ),
        TransitionRow(
            ActionLabel.START_DOSING,
            "Dosing solid into the loaded container",
            "door closed; container loaded, unstoppered, with capacity",
            "container solid += quantity; dispensed += quantity",
            _post_start_dosing,
        ),
        TransitionRow(
            ActionLabel.DOSE_LIQUID,
            "Dosing liquid into the container at the dispense location",
            "container loaded, unstoppered, already contains solid",
            "container liquid += volume; dispensed += volume",
            _post_dose_liquid,
        ),
        TransitionRow(
            ActionLabel.STOP_DOSING,
            "Stopping an in-progress dose",
            "(always allowed)",
            "deviceActive[device] = 0",
            _post_stop_dosing,
        ),
        TransitionRow(
            ActionLabel.START_ACTION,
            "Starting an action device (heat, stir, shake, spin, ...)",
            "container loaded and non-empty; door closed; value <= threshold",
            "deviceActive[device] = 1; actionValue[device] = value",
            _post_start_action,
        ),
        TransitionRow(
            ActionLabel.STOP_ACTION,
            "Stopping an action device",
            "(always allowed)",
            "deviceActive[device] = 0",
            _post_stop_action,
        ),
        TransitionRow(
            ActionLabel.SET_ACTION_VALUE,
            "Setting an action device's setpoint",
            "value <= threshold",
            "actionValue[device] = value",
            _post_set_value,
        ),
        TransitionRow(
            ActionLabel.ROTATE_ROTOR,
            "Indexing the centrifuge rotor",
            "device not running",
            "redDot[device] = direction",
            _post_rotate,
        ),
        TransitionRow(
            ActionLabel.CAP,
            "Putting the stopper on a container",
            "(always allowed)",
            "containerStopper[container] = on",
            _post_cap,
        ),
        TransitionRow(
            ActionLabel.DECAP,
            "Taking the stopper off a container",
            "(always allowed)",
            "containerStopper[container] = off",
            _post_decap,
        ),
    ]
