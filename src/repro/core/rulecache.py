"""Memoized rule verdicts — the monitor fast path.

Every intercepted command pays a full rulebase scan (Fig. 2 lines 6-7):
each applicable rule's precondition re-derives its answer from the same
discrete state.  Under heavy multi-user traffic the same safe commands
recur against unchanged state — door cycles, staging moves, repeated
dosing — and the scan is pure: a verdict is a deterministic function of
``(action call, lab state, rulebase, model beliefs)``.

:class:`RuleVerdictCache` memoizes exactly that function.  The key is

- the frozen :class:`~repro.core.actions.ActionCall` itself (label,
  device, target, quantity, ... — everything a rule can read off it),
- the :meth:`LabState.fingerprint` content digest (any state transition
  produces a different digest, so a stale verdict can never be served),
- the rulebase revision (rules added at run time invalidate everything),
- the model belief fingerprint (time multiplexing swapping obstacle
  cuboids, space multiplexing appending walls, workspace-bound edits).

The digest is the actual content tuple rather than a lossy hash, so two
different states can never share a key.  Extra preconditions registered on
the model (the multiplexing hook) are *not* cached by the monitor — they
may consult ambient context such as the virtual clock — only the pure
rulebase scan is.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from repro.obs import OBS

__all__ = ["RuleVerdictCache", "MISS"]

_OBS_LOOKUPS = OBS.registry.counter(
    "rabit_rule_cache_lookups_total",
    "Rule-verdict cache lookups by result.",
    labels=("result",),
)
_OBS_ENTRIES = OBS.registry.gauge(
    "rabit_rule_cache_entries", "Rule-verdict cache occupancy."
)
_OBS_EVICTIONS = OBS.registry.counter(
    "rabit_rule_cache_evictions_total", "LRU evictions from the rule-verdict cache."
)

#: Sentinel distinguishing "no cached entry" from a cached ``None`` verdict
#: (a passing command's verdict *is* ``None``, and is the common case).
MISS = object()


class RuleVerdictCache:
    """A bounded LRU cache of rulebase verdicts.

    Values are either ``None`` (all rules passed) or a
    ``(rule_id, message)`` pair describing the first violated rule —
    precisely what :meth:`Rabit._validate` needs to reproduce its answer
    without rescanning.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Optional[Tuple[Any, str]]]" = (
            OrderedDict()
        )
        #: Lookup counters, surfaced by the latency benchmarks.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Any:
        """The cached verdict for *key*, or the :data:`MISS` sentinel."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            if OBS.enabled:
                _OBS_LOOKUPS.inc(1, result="miss")
            return MISS
        self._entries.move_to_end(key)
        self.hits += 1
        if OBS.enabled:
            _OBS_LOOKUPS.inc(1, result="hit")
        return value

    def store(self, key: Hashable, verdict: Optional[Tuple[Any, str]]) -> None:
        """Record *verdict* for *key*, evicting the oldest entry if full."""
        self._entries[key] = verdict
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            if OBS.enabled:
                _OBS_EVICTIONS.inc(1)
        if OBS.enabled:
            _OBS_ENTRIES.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot for reports and benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }
