"""RABIT — the paper's primary contribution.

A rule-based safety monitor for self-driving labs.  The pieces map onto
the paper's sections:

- :mod:`repro.core.state` -- the discrete lab state (Table II's state
  variables: door status, robot containment, holding, contents, ...).
- :mod:`repro.core.actions` -- action labels and the state-transition
  table (Table II) of postconditions.
- :mod:`repro.core.rulebase` -- the 11 general rules (Table III) and the
  4 Hein Lab custom rules (Table IV) as checkable preconditions.
- :mod:`repro.core.model` -- RABIT's own model of the lab, populated from
  JSON configuration files (§II-C).
- :mod:`repro.core.config` -- JSON loading and schema validation (the
  pilot study's error classes).
- :mod:`repro.core.monitor` -- the Fig. 2 execution algorithm.
- :mod:`repro.core.interceptor` -- the RATracer-substitute command
  interception layer.
- :mod:`repro.core.multiplexing` -- time/space multiplexing of multiple
  robot arms (§IV, category 2).
"""

from repro.core.errors import Alert, AlertKind, SafetyViolation
from repro.core.clock import VirtualClock
from repro.core.state import LabState, OBSERVABLE_VARS, TRACKED_VARS
from repro.core.actions import ActionCall, ActionLabel, TransitionTable
from repro.core.model import (
    DeviceModel,
    ObstacleModel,
    RabitLabModel,
)
from repro.core.rulebase import Rule, RuleBase, RuleScope, build_default_rulebase
from repro.core.rulecache import RuleVerdictCache
from repro.core.monitor import Rabit, RabitOptions
from repro.core.interceptor import DeviceProxy, CommandRecord, instrument
from repro.core.multiplexing import TimeMultiplexer, SpaceMultiplexer

__all__ = [
    "Alert",
    "AlertKind",
    "SafetyViolation",
    "VirtualClock",
    "LabState",
    "OBSERVABLE_VARS",
    "TRACKED_VARS",
    "ActionCall",
    "ActionLabel",
    "TransitionTable",
    "DeviceModel",
    "ObstacleModel",
    "RabitLabModel",
    "Rule",
    "RuleBase",
    "RuleScope",
    "build_default_rulebase",
    "RuleVerdictCache",
    "Rabit",
    "RabitOptions",
    "DeviceProxy",
    "CommandRecord",
    "instrument",
    "TimeMultiplexer",
    "SpaceMultiplexer",
]
