"""Command interception — the RATracer substitute.

§II-C: "We use an open-source tracing framework RATracer, which
instruments the Python experiment scripts to intercept and trace all
device commands at run time.  We reconfigure RATracer such that every
time it traces a command, it first checks with RABIT if the command is
safe to run: if RABIT raises an alert, the experiment is halted (RATracer
raises a Python exception in this case); otherwise, the command is
forwarded to the device and executed."

:class:`DeviceProxy` is that reconfigured tracer: it wraps a device
object, resolves each method call into an :class:`ActionCall`, asks the
:class:`~repro.core.monitor.Rabit` monitor to guard it, and appends a
:class:`CommandRecord` to the shared trace.  Methods without an action
mapping (``status``, helpers) pass straight through, untraced — exactly
like the low-level calls RATracer does not instrument.

The proxy also charges the *baseline* execution time of every command to
the virtual clock, so the latency experiment can compute RABIT's
percentage overhead with and without the monitor in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import ActionCall, ActionLabel
from repro.core.clock import VirtualClock
from repro.core.errors import Alert, SafetyViolation
from repro.core.monitor import Rabit
from repro.devices.base import Device
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice, SyringePump
from repro.devices.multi_door import MultiDoorDosingDevice
from repro.devices.action_device import ActionDeviceBase, Decapper
from repro.devices.locations import LocationKind
from repro.devices.robot import RobotArmDevice
from repro.obs import OBS
from repro.trace.recorder import TRACE

_OBS_COMMANDS = OBS.registry.counter(
    "rabit_commands_intercepted_total",
    "Commands resolved and intercepted by the tracing proxy.",
    labels=("device", "label"),
)
_OBS_VERDICTS = OBS.registry.counter(
    "rabit_command_verdicts_total",
    "Interception outcomes: allowed, or the alert kind that fired.",
    labels=("outcome",),
)

#: Nominal execution time per action, in virtual seconds.  Robot moves
#: dominate (a few seconds of arm motion); everything else is quicker.
#: These are the baseline the §II-C overhead percentages divide by.
BASELINE_DURATION: Dict[ActionLabel, float] = {
    ActionLabel.MOVE_ROBOT: 2.0,
    ActionLabel.MOVE_ROBOT_INSIDE: 2.0,
    ActionLabel.PICK_OBJECT: 2.5,
    ActionLabel.PLACE_OBJECT: 2.5,
    ActionLabel.OPEN_GRIPPER: 0.5,
    ActionLabel.CLOSE_GRIPPER: 0.5,
    ActionLabel.GO_HOME: 2.0,
    ActionLabel.GO_SLEEP: 2.0,
    ActionLabel.OPEN_DOOR: 1.5,
    ActionLabel.CLOSE_DOOR: 1.5,
    ActionLabel.START_DOSING: 3.0,
    ActionLabel.DOSE_LIQUID: 3.0,
    ActionLabel.STOP_DOSING: 0.5,
    ActionLabel.START_ACTION: 1.0,
    ActionLabel.STOP_ACTION: 0.5,
    ActionLabel.SET_ACTION_VALUE: 0.5,
    ActionLabel.ROTATE_ROTOR: 1.0,
    ActionLabel.CAP: 1.0,
    ActionLabel.DECAP: 1.0,
}


@dataclass(frozen=True)
class CommandRecord:
    """One traced command (the RATracer trace line)."""

    time: float
    device: str
    method: str
    args: Tuple[Any, ...]
    label: Optional[ActionLabel]
    alert: Optional[Alert]
    #: Resolved location name for robot moves/picks/places, when known.
    location: Optional[str] = None

    def __str__(self) -> str:
        outcome = f" !! {self.alert}" if self.alert else ""
        args = ", ".join(repr(a) for a in self.args)
        return f"[{self.time:9.3f}s] {self.device}.{self.method}({args}){outcome}"


class DeviceProxy:
    """Wraps one device; intercepts, resolves, guards, and traces calls."""

    #: Max distance (m) between the arm's reported position and a
    #: location's coordinates for gripper commands to be attributed to it.
    LOCATION_MATCH_TOLERANCE = 0.05

    def __init__(
        self,
        device: Device,
        rabit: Optional[Rabit],
        trace: List[CommandRecord],
        clock: VirtualClock,
    ) -> None:
        self._device = device
        self._rabit = rabit
        self._trace = trace
        self._clock = clock

    # Expose identity for convenience in scripts/tests.
    @property
    def name(self) -> str:
        """Name of the wrapped device."""
        return self._device.name

    @property
    def wrapped(self) -> Device:
        """The underlying device object."""
        return self._device

    def __getattr__(self, attr: str) -> Any:
        attr_callable = getattr(self._device, attr)
        if not callable(attr_callable):
            return attr_callable
        resolver = _resolver_for(self._device, attr)
        if resolver is None:
            return attr_callable  # unmodeled method: pass through untraced

        def traced(*args: Any, **kwargs: Any) -> Any:
            call = resolver(self._device, args, kwargs)
            if OBS.enabled:
                _OBS_COMMANDS.inc(
                    1, device=self._device.name, label=call.label.value
                )
            self._clock.advance(
                self._device.connection.command_latency
                + BASELINE_DURATION.get(call.label, 1.0),
                "experiment",
            )
            alert: Optional[Alert] = None
            span_attrs = {
                "device": self._device.name,
                "method": attr,
                "label": call.label.value,
            }
            if TRACE.active:
                # Cross-link: every span of a recorded run carries the
                # trace id and the event seq the command will land at.
                span_attrs["trace_id"] = TRACE.trace_id
                span_attrs["trace_seq"] = TRACE.next_seq
            with OBS.span("intercept.command", **span_attrs) as span:
                try:
                    if self._rabit is None:
                        return attr_callable(*args, **kwargs)
                    before = self._rabit.alert_count
                    result = self._rabit.guard(
                        call, lambda: attr_callable(*args, **kwargs)
                    )
                    if self._rabit.alert_count > before:
                        alert = self._rabit.last_alert()
                    return result
                except SafetyViolation as violation:
                    alert = violation.alert
                    raise
                finally:
                    if OBS.enabled:
                        _OBS_VERDICTS.inc(
                            1,
                            outcome=alert.kind.value if alert else "allowed",
                        )
                    record = CommandRecord(
                        time=self._clock.now,
                        device=self._device.name,
                        method=attr,
                        args=args,
                        label=call.label,
                        alert=alert,
                        location=call.location,
                    )
                    self._trace.append(record)
                    if TRACE.active:
                        TRACE.record_command(
                            record,
                            obs_span_id=span.span_id if span is not None else None,
                        )

        return traced


# ---------------------------------------------------------------------------
# Resolvers: (device, args, kwargs) -> ActionCall
# ---------------------------------------------------------------------------

Resolver = Callable[[Device, tuple, dict], ActionCall]


def _nearest_location(robot: RobotArmDevice) -> Optional[str]:
    """Attribute a gripper command to the location the arm hovers over.

    Uses the robot's *status command* (its observable position) — the same
    information RABIT legitimately has via the device connection.  All
    candidate coordinates are packed into one ``(L, 3)`` array and ranked
    with a single vectorized distance computation instead of one norm per
    location (gripper commands fire on every pick/place, so this sits on
    the interception hot path)."""
    reported = np.asarray(robot.status()["position"], dtype=np.float64)
    names: List[str] = []
    coords: List[Tuple[float, float, float]] = []
    for loc in robot.world.locations:
        try:
            coords.append(loc.coord_for(robot.name))
        except KeyError:
            continue
        names.append(loc.name)
    if not names:
        return None
    dists = np.linalg.norm(
        np.asarray(coords, dtype=np.float64) - reported[None, :], axis=1
    )
    best = int(np.argmin(dists))
    if float(dists[best]) >= DeviceProxy.LOCATION_MATCH_TOLERANCE:
        return None
    return names[best]


def _move_call(robot: RobotArmDevice, ref: Any, method: str) -> ActionCall:
    target, location = robot.resolve_location(ref)
    label = ActionLabel.MOVE_ROBOT
    loc_name = None
    if location is not None:
        loc_name = location.name
        if location.kind is LocationKind.DEVICE_INTERIOR:
            label = ActionLabel.MOVE_ROBOT_INSIDE
    return ActionCall(
        label=label,
        device=robot.name,
        robot=robot.name,
        location=loc_name,
        target=(float(target[0]), float(target[1]), float(target[2])),
        raw_command=f"{robot.name}.{method}({ref!r})",
    )


def _pickplace_call(robot: RobotArmDevice, ref: Any, label: ActionLabel) -> ActionCall:
    target, location = robot.resolve_location(ref)
    return ActionCall(
        label=label,
        device=robot.name,
        robot=robot.name,
        location=location.name if location is not None else None,
        target=(float(target[0]), float(target[1]), float(target[2])),
        raw_command=f"{robot.name}.{label.value}({ref!r})",
    )


def resolve_action(
    device: Device, method: str, args: tuple = (), kwargs: Optional[dict] = None
) -> Optional[ActionCall]:
    """Resolve one concrete device call into its :class:`ActionCall`.

    The public face of the proxy's resolver table for callers that guard
    commands without wrapping the device in a :class:`DeviceProxy` — the
    serve front-end resolves each wire request through here so service
    and in-process paths classify commands identically.  Returns ``None``
    for unmodeled methods (which the proxy passes through untraced).
    """
    resolver = _resolver_for(device, method)
    if resolver is None:
        return None
    return resolver(device, args, kwargs or {})


def _resolver_for(device: Device, method: str) -> Optional[Resolver]:
    """Resolve a (device type, method) pair to an ActionCall factory."""
    if isinstance(device, RobotArmDevice):
        if method in ("move_to_location", "move_pose"):
            return lambda d, a, k: _move_call(d, a[0] if a else k["ref"], method)
        if method == "go_to_home_pose":
            return lambda d, a, k: ActionCall(
                ActionLabel.GO_HOME, d.name, robot=d.name, raw_command=f"{d.name}.go_to_home_pose()"
            )
        if method == "go_to_sleep_pose":
            return lambda d, a, k: ActionCall(
                ActionLabel.GO_SLEEP, d.name, robot=d.name, raw_command=f"{d.name}.go_to_sleep_pose()"
            )
        if method == "pick_up_vial":
            return lambda d, a, k: _pickplace_call(
                d, a[0] if a else k["ref"], ActionLabel.PICK_OBJECT
            )
        if method == "place_vial":
            return lambda d, a, k: _pickplace_call(
                d, a[0] if a else k["ref"], ActionLabel.PLACE_OBJECT
            )
        if method == "open_gripper":
            return lambda d, a, k: ActionCall(
                ActionLabel.OPEN_GRIPPER,
                d.name,
                robot=d.name,
                location=_nearest_location(d),
                raw_command=f"{d.name}.open_gripper()",
            )
        if method == "close_gripper":
            return lambda d, a, k: ActionCall(
                ActionLabel.CLOSE_GRIPPER,
                d.name,
                robot=d.name,
                location=_nearest_location(d),
                raw_command=f"{d.name}.close_gripper()",
            )
        return None

    if isinstance(device, SolidDosingDevice):
        if method == "set_door":
            return lambda d, a, k: ActionCall(
                ActionLabel.OPEN_DOOR
                if (a[1] if len(a) > 1 else k.get("state")) == "open"
                else ActionLabel.CLOSE_DOOR,
                d.name,
                raw_command=f"{d.name}.set_door{a!r}",
            )
        if method == "open_door":
            return lambda d, a, k: ActionCall(ActionLabel.OPEN_DOOR, d.name)
        if method == "close_door":
            return lambda d, a, k: ActionCall(ActionLabel.CLOSE_DOOR, d.name)
        if method in ("run_action", "dose_solid"):
            return lambda d, a, k: ActionCall(
                ActionLabel.START_DOSING,
                d.name,
                quantity=float(
                    k.get("quantity", k.get("amount_mg", a[1] if len(a) > 1 else (a[0] if a else 0.0)))
                ),
                raw_command=f"{d.name}.{method}{a!r}",
            )
        if method == "stop_action":
            return lambda d, a, k: ActionCall(ActionLabel.STOP_DOSING, d.name)
        return None

    if isinstance(device, MultiDoorDosingDevice):
        if method == "set_door":
            return lambda d, a, k: ActionCall(
                ActionLabel.OPEN_DOOR
                if (a[1] if len(a) > 1 else k.get("state")) == "open"
                else ActionLabel.CLOSE_DOOR,
                f"{d.name}:{a[0] if a else k.get('door_name')}",
                raw_command=f"{d.name}.set_door{a!r}",
            )
        if method in ("open_door", "close_door"):
            label = ActionLabel.OPEN_DOOR if method == "open_door" else ActionLabel.CLOSE_DOOR
            return lambda d, a, k, label=label: ActionCall(
                label,
                f"{d.name}:{a[0] if a else k.get('door_name')}",
                raw_command=f"{d.name}.{method}{a!r}",
            )
        if method == "dose_solid":
            return lambda d, a, k: ActionCall(
                ActionLabel.START_DOSING,
                d.name,
                quantity=float(a[0] if a else k.get("amount_mg", 0.0)),
                raw_command=f"{d.name}.dose_solid{a!r}",
            )
        if method == "stop_action":
            return lambda d, a, k: ActionCall(ActionLabel.STOP_DOSING, d.name)
        return None

    if isinstance(device, SyringePump):
        if method in ("dose_initial_solvent", "dose_solvent"):
            return lambda d, a, k: ActionCall(
                ActionLabel.DOSE_LIQUID,
                d.name,
                quantity=float(a[0] if a else k.get("volume_ml", 0.0)),
                raw_command=f"{d.name}.{method}{a!r}",
            )
        if method == "stop":
            return lambda d, a, k: ActionCall(ActionLabel.STOP_DOSING, d.name)
        return None

    if isinstance(device, Decapper):
        if method in ("cap", "decap"):
            label = ActionLabel.CAP if method == "cap" else ActionLabel.DECAP
            def resolve(d: Decapper, a: tuple, k: dict, label=label) -> ActionCall:
                vial = d.world.vial_inside_device(d.name)
                return ActionCall(
                    label,
                    vial.name if vial is not None else d.name,
                    raw_command=f"{d.name}.{method}()",
                )
            return resolve

    if isinstance(device, ActionDeviceBase):
        if method == "set_door":
            return lambda d, a, k: ActionCall(
                ActionLabel.OPEN_DOOR
                if (a[1] if len(a) > 1 else k.get("state")) == "open"
                else ActionLabel.CLOSE_DOOR,
                d.name,
                raw_command=f"{d.name}.set_door{a!r}",
            )
        if method == "open_door":
            return lambda d, a, k: ActionCall(ActionLabel.OPEN_DOOR, d.name)
        if method == "close_door":
            return lambda d, a, k: ActionCall(ActionLabel.CLOSE_DOOR, d.name)
        if method in ("start_action", "stir_solution", "shake"):
            return lambda d, a, k: ActionCall(
                ActionLabel.START_ACTION,
                d.name,
                value=float(a[0]) if a else k.get("value", k.get("temperature", k.get("speed_rpm"))),
                raw_command=f"{d.name}.{method}{a!r}",
            )
        if method == "set_action_value":
            return lambda d, a, k: ActionCall(
                ActionLabel.SET_ACTION_VALUE,
                d.name,
                value=float(a[0] if a else k.get("value", 0.0)),
                raw_command=f"{d.name}.set_action_value{a!r}",
            )
        if method == "stop_action":
            return lambda d, a, k: ActionCall(ActionLabel.STOP_ACTION, d.name)
        if method == "rotate_rotor":
            return lambda d, a, k: ActionCall(
                ActionLabel.ROTATE_ROTOR,
                d.name,
                direction=str(a[0] if a else k.get("direction")),
                raw_command=f"{d.name}.rotate_rotor{a!r}",
            )
        return None

    if isinstance(device, Vial):
        if method == "cap_vial":
            return lambda d, a, k: ActionCall(ActionLabel.CAP, d.name)
        if method == "decap_vial":
            return lambda d, a, k: ActionCall(ActionLabel.DECAP, d.name)
        return None

    return None


def instrument(
    devices: Dict[str, Device],
    rabit: Optional[Rabit],
    clock: Optional[VirtualClock] = None,
    trace: Optional[List[CommandRecord]] = None,
) -> Tuple[Dict[str, DeviceProxy], List[CommandRecord]]:
    """Wrap every device in a tracing proxy bound to *rabit*.

    Pass ``rabit=None`` to trace commands without any safety monitoring —
    the latency experiment's baseline configuration.  Returns the proxy
    map and the shared trace list.
    """
    the_clock = clock or (rabit.clock if rabit is not None else VirtualClock())
    the_trace: List[CommandRecord] = trace if trace is not None else []
    proxies = {
        name: DeviceProxy(device, rabit, the_trace, the_clock)
        for name, device in devices.items()
    }
    return proxies, the_trace
