"""The Fig. 2 execution algorithm.

:class:`Rabit` intercepts each command (via
:mod:`repro.core.interceptor`), and per Fig. 2:

1.  ``Valid(S_current, a_next)`` — evaluate every applicable rule's
    precondition; on failure, ``alertAndStop("Invalid Command!")``
    *before* execution (lines 6-7).
2.  For robot commands with a simulator attached,
    ``ValidTrajectory(a_next)`` — the Extended Simulator sweeps the
    actually-planned trajectory; on predicted collision,
    ``alertAndStop("Invalid trajectory!")`` (lines 8-10).
3.  ``S_expected <- UpdateState(S_current, a_next)`` via the transition
    table (line 11).
4.  Execute the command (line 12).
5.  ``S_actual <- FetchState()`` — one status round-trip per device
    (line 13).
6.  ``S_actual != S_expected`` over observable variables →
    ``alertAndStop("Device malfunction!")`` (lines 14-15).
7.  ``S_current <- S_actual`` (line 16).

:class:`RabitOptions` captures the paper's two deployed revisions:
``RabitOptions.initial()`` is RABIT as first evaluated (detects 8/16
campaign bugs); ``RabitOptions.modified()`` adds held-object geometry,
capacity enforcement, and workspace bounds (12/16); pairing either with
``use_extended_simulator=True`` adds full trajectory sweeps (13/16).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.core.actions import ActionCall, ActionLabel, TransitionTable
from repro.core.clock import VirtualClock
from repro.core.errors import Alert, AlertKind, SafetyViolation
from repro.core.model import RabitLabModel
from repro.core.rulebase import CheckContext, RuleBase, build_default_rulebase
from repro.core.rulecache import MISS, RuleVerdictCache
from repro.core.state import LabState
from repro.devices.base import Device
from repro.obs import OBS
from repro.trace.recorder import TRACE

_OBS_ALERTS = OBS.registry.counter(
    "rabit_alerts_total",
    "Alerts raised, by alertAndStop site (Fig. 2).",
    labels=("kind",),
)
_OBS_GUARD_SECONDS = OBS.registry.histogram(
    "rabit_guard_wall_seconds",
    "Real CPU seconds per guarded command (full Fig. 2 round-trip).",
    buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0),
)
_OBS_STATUS_REQUESTS = OBS.registry.counter(
    "device_status_requests_total",
    "FetchState status round-trips, by device.",
    labels=("device",),
)
_OBS_MALFUNCTION_CHECKS = OBS.registry.counter(
    "rabit_state_comparisons_total",
    "Expected-vs-actual state comparisons, by outcome.",
    labels=("outcome",),
)

#: Action labels that move a robot arm (Fig. 2's ``isRobotCommand``).
ROBOT_MOVE_LABELS = frozenset(
    {
        ActionLabel.MOVE_ROBOT,
        ActionLabel.MOVE_ROBOT_INSIDE,
        ActionLabel.PICK_OBJECT,
        ActionLabel.PLACE_OBJECT,
        ActionLabel.GO_HOME,
        ActionLabel.GO_SLEEP,
    }
)


class TrajectoryChecker(Protocol):
    """Interface the Extended Simulator implements (Fig. 2 line 9)."""

    def validate_trajectory(
        self, call: ActionCall, state: LabState, model: RabitLabModel,
        account_held_objects: bool,
    ) -> Optional[str]:
        """Reason the trajectory is invalid, or ``None`` if collision-free."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RabitOptions:
    """Feature flags distinguishing the paper's RABIT revisions."""

    #: Model held-object geometry in collision checks (post-Bug-D fix).
    account_held_objects: bool = True
    #: Enforce container capacities in Rule 8.
    enforce_capacity: bool = True
    #: Enforce per-frame workspace bounds (deck edges / walls).
    enforce_workspace_bounds: bool = True
    #: Consult the Extended Simulator for robot commands.
    use_extended_simulator: bool = False
    #: Stop the experiment on an alert (the Hein Lab's recommendation);
    #: False logs the alert and lets execution continue (fail-safe mode).
    preemptive_stop: bool = True
    #: Virtual seconds of RABIT bookkeeping per intercepted command.
    bookkeeping_latency: float = 0.004
    #: Virtual seconds per Extended Simulator invocation when its GUI is
    #: in the loop (§II-C measured ~2 s; "we plan to bypass the GUI").
    gui_latency: float = 2.0
    #: Whether the Extended Simulator's GUI is bypassed (deployment plan).
    bypass_gui: bool = False
    #: Max entries of the rule-verdict cache; 0 disables it (every command
    #: pays the full rulebase scan — the reference behaviour the cache's
    #: property tests compare against).
    rule_cache_size: int = 256
    #: Consult the compiled per-(device-type, action-label) dispatch
    #: tables (``RuleBase.compiled()``) and the incremental state
    #: fingerprint token on the cold path; ``False`` selects the
    #: interpreted full-scan reference path with the exact content-tuple
    #: cache key.  Verdicts are pinned identical across both settings by
    #: the compiled-vs-interpreted differential suite.
    compiled_dispatch: bool = True

    @classmethod
    def initial(cls, **overrides: Any) -> "RabitOptions":
        """RABIT as first deployed: bare-arm geometry only."""
        base = cls(
            account_held_objects=False,
            enforce_capacity=False,
            enforce_workspace_bounds=False,
        )
        return replace(base, **overrides)

    @classmethod
    def modified(cls, **overrides: Any) -> "RabitOptions":
        """RABIT after the §IV fixes."""
        return replace(cls(), **overrides)


class Rabit:
    """The RABIT monitor bound to one lab."""

    def __init__(
        self,
        model: RabitLabModel,
        devices: Dict[str, Device],
        options: Optional[RabitOptions] = None,
        rulebase: Optional[RuleBase] = None,
        trajectory_checker: Optional[TrajectoryChecker] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.model = model
        self.devices = dict(devices)
        self.options = options or RabitOptions.modified()
        self.rulebase = rulebase or build_default_rulebase(model.custom_rule_ids)
        self.trajectory_checker = trajectory_checker
        self.clock = clock or VirtualClock()
        self.transition_table = TransitionTable()
        self.state = LabState()
        #: Memoized rulebase verdicts (None when disabled via options).
        self.rule_cache: Optional[RuleVerdictCache] = (
            RuleVerdictCache(self.options.rule_cache_size)
            if self.options.rule_cache_size > 0
            else None
        )
        #: Every alert raised so far (kept even in fail-safe mode).
        self.alerts: List[Alert] = []
        #: Post-action observers (the time multiplexer registers here).
        self.observers: List[Callable[[ActionCall], None]] = []
        self._initialized = False

    # ------------------------------------------------------------------
    # Initialization (Fig. 2 lines 1-3)
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Acquire ``S_initial`` from status commands and set ``S_current``."""
        observed = self._fetch_state()
        self.state = self.state.merge_observed(observed)
        self._initialized = True

    def seed_tracked(self, var: str, key: str, value: Any) -> None:
        """Seed a tracked (unobservable) variable of the initial state.

        The researcher supplies the initial inventory — which vial starts
        where and what it contains — because no sensor can report it."""
        self.state.set(var, key, value)

    # ------------------------------------------------------------------
    # The guarded execution path (Fig. 2 lines 4-16)
    # ------------------------------------------------------------------

    def guard(self, call: ActionCall, execute: Callable[[], Any]) -> Any:
        """Validate *call*, run *execute*, verify the resulting state.

        Raises :class:`SafetyViolation` on any alert when
        ``preemptive_stop`` is set; otherwise records the alert and, for
        precondition/trajectory alerts, still skips the unsafe command.

        With observability enabled the round-trip is wrapped in a
        ``rabit.guard`` span (validate / execute / fetch_state children)
        and its real CPU cost lands in ``rabit_guard_wall_seconds``;
        disabled, the guard runs the bare Fig. 2 algorithm.
        """
        if not OBS.enabled:
            return self._guard_impl(call, execute)
        started = time.perf_counter()
        with OBS.span(
            "rabit.guard", label=call.label.value, device=call.device
        ) as span:
            try:
                result = self._guard_impl(call, execute)
            except SafetyViolation as violation:
                span.set(outcome="stopped", alert=str(violation.alert))
                raise
            finally:
                _OBS_GUARD_SECONDS.observe(time.perf_counter() - started)
            span.set(outcome="completed")
            return result

    def _guard_impl(self, call: ActionCall, execute: Callable[[], Any]) -> Any:
        """The Fig. 2 lines 4-16 algorithm (shared by both guard paths)."""
        reason = self._guard_prelude(call)
        if reason is not None:
            return self._precondition_alert(call, reason)

        # Lines 8-10: trajectory validation for robot commands.
        if self._wants_trajectory(call):
            problem = self.trajectory_checker.validate_trajectory(
                call,
                self.state,
                self.model,
                account_held_objects=self.options.account_held_objects,
            )
            if problem is not None:
                return self._trajectory_alert(call, problem)

        previous_state, expected = self._guard_expected(call)

        # Line 12: execute the (now believed-safe) command.
        with OBS.span("rabit.execute", device=call.device):
            result = execute()

        self._guard_postlude(call, expected, previous_state)
        return result

    async def guard_async(
        self,
        call: ActionCall,
        execute: Callable[[], Any],
        trajectory: Optional[Callable[[ActionCall], Any]] = None,
    ) -> Any:
        """The asynchronous Fig. 2 round-trip (the serve front-end path).

        *execute* is an async callable (device I/O the event loop can
        overlap across sessions); *trajectory*, when given, replaces the
        synchronous trajectory checker with an awaitable so the serve
        layer can route sweeps through the cross-session batcher.  The
        stages, their order, the clock charges, and the alert
        construction are shared with :meth:`guard` — the serve
        differential suite pins the two paths verdict-byte-identical.

        Spans are safe here: the runtime keeps its open-span stack in a
        ``contextvars`` variable, so concurrent sessions awaiting inside
        ``rabit.execute`` nest their spans per-task.
        """
        if not OBS.enabled:
            return await self._guard_async_impl(call, execute, trajectory)
        started = time.perf_counter()
        with OBS.span(
            "rabit.guard", label=call.label.value, device=call.device
        ) as span:
            try:
                result = await self._guard_async_impl(call, execute, trajectory)
            except SafetyViolation as violation:
                span.set(outcome="stopped", alert=str(violation.alert))
                raise
            finally:
                _OBS_GUARD_SECONDS.observe(time.perf_counter() - started)
            span.set(outcome="completed")
            return result

    async def _guard_async_impl(
        self,
        call: ActionCall,
        execute: Callable[[], Any],
        trajectory: Optional[Callable[[ActionCall], Any]],
    ) -> Any:
        reason = self._guard_prelude(call)
        if reason is not None:
            return self._precondition_alert(call, reason)

        if self._wants_trajectory(call):
            if trajectory is not None:
                problem = await trajectory(call)
            else:
                problem = self.trajectory_checker.validate_trajectory(
                    call,
                    self.state,
                    self.model,
                    account_held_objects=self.options.account_held_objects,
                )
            if problem is not None:
                return self._trajectory_alert(call, problem)

        previous_state, expected = self._guard_expected(call)

        with OBS.span("rabit.execute", device=call.device):
            result = await execute()

        self._guard_postlude(call, expected, previous_state)
        return result

    # -- Fig. 2 stages (shared between the sync and async guards) ------

    def _guard_prelude(self, call: ActionCall) -> Optional[tuple]:
        """Lines 4-7: clock charges and precondition validation.

        Returns the ``(rule_id, message)`` violation, or ``None``."""
        if not self._initialized:
            self.initialize()
        self.clock.advance(self.options.bookkeeping_latency, "rabit_bookkeeping")
        # With the Extended Simulator attached, its GUI (in a VM) mirrors
        # every command so the deck view stays in sync — this render loop
        # is the dominant §II-C cost ("invoked each time RABIT checks"),
        # and the one the paper plans to bypass for deployment.
        if (
            self.options.use_extended_simulator
            and self.trajectory_checker is not None
            and not self.options.bypass_gui
        ):
            self.clock.advance(self.options.gui_latency, "rabit_simulator_gui")

        # Lines 6-7: precondition validation.
        with OBS.span("rabit.validate", label=call.label.value):
            return self._validate(call)

    def _wants_trajectory(self, call: ActionCall) -> bool:
        """Fig. 2 line 8: is this a robot command with a simulator attached?"""
        return (
            call.label in ROBOT_MOVE_LABELS
            and self.options.use_extended_simulator
            and self.trajectory_checker is not None
        )

    def _precondition_alert(self, call: ActionCall, reason: tuple) -> None:
        rule_id, message = reason
        return self._alert(
            Alert(
                kind=AlertKind.INVALID_COMMAND,
                message=message,
                command=call.describe(),
                rule_id=rule_id,
            )
        )

    def _trajectory_alert(self, call: ActionCall, problem: str) -> None:
        return self._alert(
            Alert(
                kind=AlertKind.INVALID_TRAJECTORY,
                message=problem,
                command=call.describe(),
            )
        )

    def _guard_expected(self, call: ActionCall) -> tuple:
        """Line 11: expected state from postconditions."""
        previous_state = self.state if TRACE.active else None
        expected = self.transition_table.expected_state(
            self.state, call, self.model.transition_context()
        )
        return previous_state, expected

    def _guard_postlude(
        self, call: ActionCall, expected: LabState, previous_state: Optional[LabState]
    ) -> None:
        """Lines 13-16: fetch actual state, compare, adopt, notify."""
        observed = self._fetch_state()
        mismatches = expected.diff_observable(observed)
        if OBS.enabled:
            _OBS_MALFUNCTION_CHECKS.inc(
                1, outcome="mismatch" if mismatches else "match"
            )
        # Line 16: adopt the actual state (observed over expected).
        self.state = expected.merge_observed(observed)
        for observer in self.observers:
            observer(call)
        if previous_state is not None and TRACE.active:
            # Staged after the observers so multiplexing-driven state
            # edits land in the same event as the command that caused
            # them; consumed by the interceptor's record_command.
            TRACE.stage_state(previous_state, self.state)
        if mismatches:
            var, key, want, got = mismatches[0]
            self._alert(
                Alert(
                    kind=AlertKind.DEVICE_MALFUNCTION,
                    message=(
                        f"after {call.label.value}: expected {var}[{key}] = "
                        f"{want!r} but device reports {got!r}"
                    ),
                    command=call.describe(),
                    involved=(key,),
                )
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate(self, call: ActionCall) -> Optional[tuple]:
        verdict = self._rulebase_verdict(call)
        if verdict is not None:
            return verdict
        # Extra preconditions (the multiplexing hook) run uncached: they
        # may consult ambient context (e.g. the virtual clock) that the
        # cache key cannot see.
        for precondition in self.model.extra_preconditions:
            message = precondition(self.state, call)
            if message is not None:
                return None, message
        return None

    def _rulebase_verdict(self, call: ActionCall) -> Optional[tuple]:
        """First violated rule as ``(rule_id, message)``, memoized.

        The cache key covers everything the rulebase scan reads — the call,
        the full state contents, the rulebase revision, and the model's
        mutable beliefs — so repeated safe commands against unchanged state
        skip the scan entirely while any state transition, added rule, or
        model mutation forces a fresh evaluation.

        With ``compiled_dispatch`` set (the default) the *cold* path is
        cheap too: the scan runs against the rulebase's compiled
        per-label decision lists (recompiled whenever the rulebase
        revision moves) and the state contribution to the cache key is
        the O(1) incremental token instead of the full content-tuple
        rebuild.  Both substitutions are verdict-preserving; the
        interpreted scan plus exact tuple key remains selectable as the
        reference path.
        """
        compiled = self.options.compiled_dispatch
        dispatch = "compiled" if compiled else "interpreted"
        key = None
        if self.rule_cache is not None:
            key = (
                call,
                self.state.fingerprint_token() if compiled else self.state.fingerprint(),
                self.rulebase.revision,
                self.model.belief_fingerprint(),
            )
            cached = self.rule_cache.lookup(key)
            if cached is not MISS:
                if TRACE.active:
                    TRACE.stage_rule("hit", cached[0] if cached else None, dispatch)
                return cached
        ctx = CheckContext(
            state=self.state,
            call=call,
            model=self.model,
            account_held_objects=self.options.account_held_objects,
            enforce_workspace_bounds=self.options.enforce_workspace_bounds,
            enforce_capacity=self.options.enforce_capacity,
        )
        engine = self.rulebase.compiled() if compiled else self.rulebase
        hit = engine.check_action(ctx)
        verdict = None
        if hit is not None:
            rule, message = hit
            verdict = (rule.rule_id, message)
        if self.rule_cache is not None:
            self.rule_cache.store(key, verdict)
        if TRACE.active:
            TRACE.stage_rule(
                "miss" if self.rule_cache is not None else "disabled",
                verdict[0] if verdict else None,
                dispatch,
            )
        return verdict

    def _alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if OBS.enabled:
            _OBS_ALERTS.inc(1, kind=alert.kind.value)
        if self.options.preemptive_stop:
            raise SafetyViolation(alert)
        return None

    def _fetch_state(self) -> LabState:
        """Fig. 2's ``FetchState()``: one status round-trip per device."""
        with OBS.span("rabit.fetch_state", devices=len(self.devices)):
            return self._fetch_state_impl()

    def _fetch_state_impl(self) -> LabState:
        observed = LabState()
        for name, device in self.devices.items():
            self.clock.advance(device.connection.status_latency, "rabit_fetch_state")
            report = device.status()
            if OBS.enabled:
                _OBS_STATUS_REQUESTS.inc(1, device=name)
            for status_key, value in report.items():
                if status_key.startswith("door:"):
                    # Multi-door devices report one state per named door
                    # under the compound key "<device>:<door>" (§V-C).
                    observed.set(
                        "door_status", f"{name}:{status_key[len('door:'):]}", value
                    )
                    continue
                var = _STATUS_KEY_TO_VAR.get(status_key)
                if var is not None:
                    observed.set(var, name, value)
        return observed

    @property
    def alert_count(self) -> int:
        """Number of alerts raised so far."""
        return len(self.alerts)

    def last_alert(self) -> Optional[Alert]:
        """Most recent alert, if any."""
        return self.alerts[-1] if self.alerts else None


#: How device status-report keys map onto state variables.
_STATUS_KEY_TO_VAR: Dict[str, str] = {
    "door": "door_status",
    "active": "device_active",
    "action_value": "action_value",
    "red_dot": "red_dot",
    "stopper": "container_stopper",
    "dispensed_mg": "dispensed_mg",
    "dispensed_ml": "dispensed_ml",
    "gripper": "gripper",
    "occupied": "zone_occupied",
    # "position" is intentionally unmapped: Cartesian position is not one
    # of RABIT's discrete state variables (Table II), which is why silent
    # skips and mid-space collisions produce no state discrepancy.
}
