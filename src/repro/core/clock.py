"""A virtual lab clock for deterministic latency accounting.

The paper's §II-C overhead numbers (0.03 s / 1.5 % without the Extended
Simulator; ~2 s / 112 % with its GUI) are wall-clock measurements on real
hardware.  Reproducing them with real sleeps would make the benchmark
suite take hours and be machine-dependent, so every latency source in the
reproduction charges time to a :class:`VirtualClock` instead: device
command execution, per-device status round-trips, RABIT bookkeeping, and
the simulated Extended Simulator GUI invocation.

The latency benchmark then reports virtual seconds, which reproduces the
paper's *ratios* exactly and deterministically.
"""

from __future__ import annotations

from typing import Dict


class VirtualClock:
    """Accumulates virtual elapsed time, tagged by category."""

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float, category: str = "other") -> None:
        """Charge *seconds* of virtual time to *category*."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        self._by_category[category] = self._by_category.get(category, 0.0) + seconds

    def spent(self, category: str) -> float:
        """Total virtual seconds charged to *category*."""
        return self._by_category.get(category, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """Virtual seconds per category."""
        return dict(self._by_category)

    def reset(self) -> None:
        """Zero the clock and all categories."""
        self._now = 0.0
        self._by_category.clear()
