"""The RABIT rulebase: Table III, Table IV, and Table II preconditions.

Every rule is a checkable precondition attached to one or more action
labels.  A central design convention, taken from the paper's evaluation:

    **alarm only on provable violations.**

RABIT tracks some variables (who holds what, which vial is where) purely
through command postconditions; when that belief is missing — for example
on the testbed, where pick/place decompose into untracked gripper-level
commands — a rule that would need the missing information *passes* rather
than alarms.  This is why the paper reports **zero false positives**
throughout testing, and simultaneously why Bug C (a vial that was never
picked up) is invisible: there is no observation that contradicts any
tracked variable.

Rule identifiers:

- ``G1`` .. ``G11`` — the general rules of Table III, descriptions verbatim.
- ``C1`` .. ``C4``  — the Hein Lab's customized rules of Table IV.
- ``T2-place``      — Table II's place-object precondition
  (``robotArmHolding[robot] = 1``), which applies to the modeled
  ``place_object`` wrapper command but *not* to raw ``open_gripper``.

Geometric checks (rule G3) honour two revision flags from
:class:`~repro.core.monitor.RabitOptions`:

- ``account_held_objects`` — the post-Bug-D modification: the check also
  sweeps the held vial's extent ("a robot arm's dimensions may change if
  it is holding an object");
- ``enforce_workspace_bounds`` — the post-campaign modification adding
  per-frame workspace limits (walls / deck edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import ActionCall, ActionLabel
from repro.core.model import RabitLabModel
from repro.core.state import LabState


class RuleScope(Enum):
    """Where a rule comes from."""

    GENERAL = "general"  # Table III — applies to most self-driving labs
    CUSTOM = "custom"  # Table IV — specific to one lab
    ACTION = "action"  # Table II action preconditions


@dataclass
class CheckContext:
    """Everything a rule check can consult."""

    state: LabState
    call: ActionCall
    model: RabitLabModel
    #: Modified-RABIT flag: model held-object geometry (post Bug D).
    account_held_objects: bool = False
    #: Modified-RABIT flag: enforce per-frame workspace bounds.
    enforce_workspace_bounds: bool = False
    #: Modified-RABIT flag: enforce container capacities (Rule 8's
    #: "empty or partially filled receiving container").
    enforce_capacity: bool = False


CheckFn = Callable[[CheckContext], Optional[str]]


@dataclass(frozen=True)
class Rule:
    """One rule: identifier, provenance, paper text, and its check."""

    rule_id: str
    scope: RuleScope
    description: str
    labels: FrozenSet[ActionLabel]
    check: CheckFn

    def applies_to(self, label: ActionLabel) -> bool:
        """Whether this rule constrains actions with *label*."""
        return label in self.labels


class RuleBase:
    """An ordered collection of rules, queried per action label.

    :meth:`check_action` is the *interpreted* reference path: it walks
    the full rule list and asks each rule whether it applies to the
    command's label before invoking its check.  :meth:`compiled`
    memoizes a :class:`CompiledRuleBase` — per-label dispatch tables
    built once at registration time — and recompiles whenever
    :attr:`revision` moves, exactly like the geometry engines
    invalidate on the model's geometry revision.
    """

    def __init__(self, rules: Sequence[Rule] = ()) -> None:
        self._rules: List[Rule] = list(rules)
        #: Bumped on every mutation; the rule-verdict cache keys on it so
        #: adding a rule at run time invalidates all cached verdicts, and
        #: the compiled dispatch tables recompile against it.
        self.revision: int = 0
        self._compiled: Optional["CompiledRuleBase"] = None
        #: Rules *visited* per check_action call (the applies_to scan) —
        #: the cost the compiled dispatch removes; cold-path benchmarks
        #: compare this counter across the two paths.
        self.rules_considered: int = 0
        #: Rule checks actually invoked (applicable rules walked until
        #: the first violation) — identical across both paths.
        self.checks_invoked: int = 0

    def add(self, rule: Rule) -> None:
        """Register an additional rule (lab-specific customization)."""
        if any(r.rule_id == rule.rule_id for r in self._rules):
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules.append(rule)
        self.revision += 1

    def rules(self, scope: Optional[RuleScope] = None) -> Tuple[Rule, ...]:
        """All rules, optionally filtered by scope."""
        if scope is None:
            return tuple(self._rules)
        return tuple(r for r in self._rules if r.scope is scope)

    def get(self, rule_id: str) -> Rule:
        """Look up a rule by identifier."""
        for rule in self._rules:
            if rule.rule_id == rule_id:
                return rule
        raise KeyError(f"unknown rule {rule_id!r}")

    def check_action(self, ctx: CheckContext) -> Optional[Tuple[Rule, str]]:
        """First violated rule for this action, with its reason."""
        for rule in self._rules:
            self.rules_considered += 1
            if not rule.applies_to(ctx.call.label):
                continue
            self.checks_invoked += 1
            reason = rule.check(ctx)
            if reason is not None:
                return rule, reason
        return None

    def compile(self) -> "CompiledRuleBase":
        """Build a fresh compiled form of the current rule list.

        The snapshot is pinned to the current :attr:`revision`; it does
        *not* follow later :meth:`add` calls.  Use :meth:`compiled` for
        the self-invalidating accessor the monitor consults.
        """
        return CompiledRuleBase(self)

    def compiled(self) -> "CompiledRuleBase":
        """The memoized compiled form, recompiled on revision change."""
        engine = self._compiled
        if engine is None or engine.revision != self.revision:
            engine = self._compiled = CompiledRuleBase(self)
        return engine


class CompiledRuleBase:
    """Per-label decision lists compiled from a :class:`RuleBase`.

    Compilation resolves, once, the question the interpreted scan
    re-answers on every command — *which rules constrain this action
    label?* — into a ``label -> ((rule, check), ...)`` dispatch table.
    ``check_action`` then walks only the (typically 1-6 entry) decision
    list for the command's label instead of consulting ``applies_to``
    on all ~16 registered rules.  Registration order is preserved
    within each list, so the first-violation verdict (rule id *and*
    reason string) is byte-identical to the interpreted scan — the
    differential suite pins this across the Monte Carlo mutant corpus
    and the golden traces.
    """

    __slots__ = ("revision", "size", "_dispatch", "rules_considered", "checks_invoked")

    def __init__(self, rulebase: RuleBase) -> None:
        #: Revision of the source rulebase this table was compiled from.
        self.revision = rulebase.revision
        #: Number of rules compiled in.
        self.size = len(rulebase.rules())
        dispatch: Dict[ActionLabel, List[Tuple[Rule, CheckFn]]] = {}
        for rule in rulebase.rules():
            for label in rule.labels:
                dispatch.setdefault(label, []).append((rule, rule.check))
        self._dispatch: Dict[ActionLabel, Tuple[Tuple[Rule, CheckFn], ...]] = {
            label: tuple(entries) for label, entries in dispatch.items()
        }
        #: Same counters as the interpreted path; here every decision-list
        #: entry visited is also a check invocation candidate.
        self.rules_considered: int = 0
        self.checks_invoked: int = 0

    def decision_list(self, label: ActionLabel) -> Tuple[Tuple[Rule, CheckFn], ...]:
        """The precomputed ``(rule, check)`` entries for *label*, in
        registration (first-violation) order."""
        return self._dispatch.get(label, ())

    def labels(self) -> FrozenSet[ActionLabel]:
        """Every action label with a non-empty decision list."""
        return frozenset(self._dispatch)

    def check_action(self, ctx: CheckContext) -> Optional[Tuple[Rule, str]]:
        """First violated rule for this action — same contract (and same
        verdict) as :meth:`RuleBase.check_action`, minus the scan."""
        entries = self._dispatch.get(ctx.call.label, ())
        for rule, check in entries:
            self.rules_considered += 1
            self.checks_invoked += 1
            reason = check(ctx)
            if reason is not None:
                return rule, reason
        return None


# ---------------------------------------------------------------------------
# Helpers shared by rule checks
# ---------------------------------------------------------------------------

_MOVE_LABELS = frozenset(
    {
        ActionLabel.MOVE_ROBOT,
        ActionLabel.MOVE_ROBOT_INSIDE,
        ActionLabel.PICK_OBJECT,
        ActionLabel.PLACE_OBJECT,
        ActionLabel.OPEN_GRIPPER,  # occupancy sub-check only (no target)
    }
)

_DOSE_LABELS = frozenset({ActionLabel.START_DOSING, ActionLabel.DOSE_LIQUID})

_ENTRY_LABELS = frozenset(
    {ActionLabel.MOVE_ROBOT_INSIDE, ActionLabel.PICK_OBJECT, ActionLabel.PLACE_OBJECT}
)

_PLACE_LABELS = frozenset({ActionLabel.PLACE_OBJECT, ActionLabel.OPEN_GRIPPER})
_PICK_LABELS = frozenset({ActionLabel.PICK_OBJECT, ActionLabel.CLOSE_GRIPPER})


def _doored_target_device(ctx: CheckContext) -> Optional[str]:
    """Door-status key guarding the target interior location, if any.

    Single-door devices use the device name itself; multi-door devices
    (§V-C) use the compound ``"<device>:<door>"`` key named by the
    location's ``via_door``."""
    owner = ctx.model.interior_owner(ctx.call.location)
    if owner is None or not ctx.model.has_device(owner):
        return None
    device = ctx.model.device(owner)
    if not device.has_door:
        return None
    if ctx.call.location is not None:
        via = ctx.model.location(ctx.call.location).via_door
        if via is not None:
            return f"{owner}:{via}"
    return owner


def _door_base(device_key: str) -> str:
    """The device name part of a (possibly compound) door-status key."""
    return device_key.split(":", 1)[0]


def _load_vial(ctx: CheckContext, device: str) -> Optional[str]:
    """The vial RABIT believes sits at *device*'s load/dispense location."""
    load = ctx.model.load_location(device)
    if load is None:
        return None
    return ctx.state.vial_at(load)


def _held_vial(ctx: CheckContext) -> Optional[str]:
    """The vial RABIT believes the acting robot holds."""
    if ctx.call.robot is None:
        return None
    return ctx.state.get("robot_holding", ctx.call.robot)


def _placing_into(ctx: CheckContext) -> Optional[str]:
    """Device the robot is believed to be placing a held vial into."""
    if ctx.call.label not in _PLACE_LABELS:
        return None
    if _held_vial(ctx) is None:
        return None
    return ctx.model.interior_owner(ctx.call.location)


# ---------------------------------------------------------------------------
# General rules (Table III)
# ---------------------------------------------------------------------------


def _g1_door_open_before_entry(ctx: CheckContext) -> Optional[str]:
    door_key = _doored_target_device(ctx)
    if door_key is None:
        return None
    if ctx.state.get("door_status", door_key) == "open":
        return None
    return f"robot {ctx.call.robot!r} would enter {door_key!r} whose door is closed"


def _g2_no_close_on_robot(ctx: CheckContext) -> Optional[str]:
    base = _door_base(ctx.call.device)
    inside = ctx.state.keys_where("robot_inside", base)
    if ":" in ctx.call.device:
        # Multi-door device: only the door a robot entered through is
        # blocked — the point of multiple doors is simultaneous access.
        # An unknown entry door is treated conservatively (blocked).
        door_name = ctx.call.device.split(":", 1)[1]
        inside = [
            r
            for r in inside
            if ctx.state.get("robot_entry_door", r) in (door_name, None)
        ]
    if not inside:
        return None
    return (
        f"door of {ctx.call.device!r} cannot close: robot arm(s) "
        f"{', '.join(sorted(inside))} still inside"
    )


def _g3_target_collision(ctx: CheckContext) -> Optional[str]:
    """Rule 3's operational form without the Extended Simulator: "only the
    target location is checked for potential collisions" (§II-B)."""
    call = ctx.call
    if call.robot is None:
        return None

    # (a) Occupancy by a tracked object: placing a vial onto a slot that
    #     RABIT believes already holds one (the §I footnote scenario — a
    #     new vial dropped onto the uncollected previous one).  Plain
    #     moves are exempt: a legitimate pick stages the gripper at the
    #     occupied slot before closing.
    if call.location is not None and call.label in (
        ActionLabel.PLACE_OBJECT,
        ActionLabel.OPEN_GRIPPER,
    ):
        if call.label is ActionLabel.PLACE_OBJECT or _held_vial(ctx) is not None:
            occupant = ctx.state.vial_at(call.location)
            if occupant is not None:
                return (
                    f"target location {call.location!r} is already occupied by "
                    f"{occupant!r}"
                )

    # (b) Geometric target check against configured cuboids, in the acting
    #     robot's own coordinate frame.
    if call.target is None:
        return None
    robot_model = ctx.model.device(call.robot)
    frame = robot_model.frame or call.robot
    target = np.asarray(call.target, dtype=np.float64)

    exclude: List[str] = []
    owner = ctx.model.interior_owner(call.location)
    if owner is not None and ctx.state.get("door_status", owner, "open") == "open":
        exclude.append(owner)
    currently_inside = ctx.state.get("robot_inside", call.robot)
    if currently_inside is not None:
        exclude.append(currently_inside)
    if call.location is not None:
        # The owning structure of a grid slot (the grid itself) tolerates
        # the gripper dipping to its slots.
        loc = ctx.model.location(call.location)
        if loc.kind == "grid_slot" and loc.device:
            exclude.append(loc.device)

    obstacles = ctx.model.obstacles_for_frame(frame, exclude=exclude)
    surfaces = ctx.model.surfaces_for_frame(frame, exclude=exclude)

    probes: List[Tuple[str, np.ndarray, bool]] = [
        ("target point", target, False),
        (
            "gripper tip",
            target - np.array([0.0, 0.0, robot_model.gripper_clearance]),
            True,
        ),
    ]
    if ctx.account_held_objects and _held_vial(ctx) is not None:
        probes.append(
            (
                f"held vial (bottom {robot_model.held_drop * 100:.0f} cm below gripper)",
                target - np.array([0.0, 0.0, robot_model.held_drop]),
                True,
            )
        )

    for label, point, include_surfaces in probes:
        boxes = list(obstacles) + (list(surfaces) if include_surfaces else [])
        for box in boxes:
            if box.contains(point):
                return (
                    f"{label} of {call.robot!r} at "
                    f"({point[0]:.3f}, {point[1]:.3f}, {point[2]:.3f}) would be "
                    f"inside {box.name!r}"
                )

    # (c) Software walls (space multiplexing) and workspace bounds
    #     (modified RABIT) in this robot's frame.
    for wall in ctx.model.walls.get(frame, []):
        if not wall.allows(target):
            return (
                f"target of {call.robot!r} crosses software wall {wall.name!r}"
            )
    if ctx.enforce_workspace_bounds:
        bounds = getattr(ctx.model, "workspace_bounds", {}).get(frame)
        if bounds is not None and not bounds.contains(target):
            return (
                f"target of {call.robot!r} lies outside the configured "
                f"workspace {bounds.name!r}"
            )
    return None


def _g4_pick_requires_free_gripper(ctx: CheckContext) -> Optional[str]:
    held = _held_vial(ctx)
    if held is None:
        return None
    return f"robot {ctx.call.robot!r} is already holding {held!r}"


def _g5_container_inside(ctx: CheckContext) -> Optional[str]:
    device_model = ctx.model.device(ctx.call.device)
    if not device_model.requires_container:
        return None
    if _load_vial(ctx, ctx.call.device) is not None:
        return None
    # Provable only when this lab's container tracking is reliable.
    if not getattr(ctx.model, "reliable_container_tracking", False):
        return None
    return f"no container is inside {ctx.call.device!r}"


def _g6_container_not_empty(ctx: CheckContext) -> Optional[str]:
    device_model = ctx.model.device(ctx.call.device)
    if not device_model.requires_container:
        return None
    vial = _load_vial(ctx, ctx.call.device)
    if vial is None:
        return None  # G5's concern, not G6's
    solid = float(ctx.state.get("container_solid", vial, 0.0))
    liquid = float(ctx.state.get("container_liquid", vial, 0.0))
    if solid > 0.0 or liquid > 0.0:
        return None
    if not getattr(ctx.model, "reliable_container_tracking", False):
        return None
    return f"container {vial!r} inside {ctx.call.device!r} is empty"


def _g7_no_stopper_during_transfer(ctx: CheckContext) -> Optional[str]:
    vial = _load_vial(ctx, ctx.call.device)
    if vial is None:
        return None
    if ctx.state.get("container_stopper", vial, "off") != "on":
        return None
    return (
        f"cannot transfer into {vial!r}: it has a stopper on "
        f"(receiving container must be open)"
    )


def _g8_receiving_capacity(ctx: CheckContext) -> Optional[str]:
    if not ctx.enforce_capacity:
        return None
    vial = _load_vial(ctx, ctx.call.device)
    if vial is None or ctx.call.quantity is None:
        return None
    if ctx.call.label is ActionLabel.START_DOSING:
        capacity = ctx.model.device(vial).capacity_solid_mg if ctx.model.has_device(vial) else None
        believed = float(ctx.state.get("container_solid", vial, 0.0))
        unit = "mg"
    else:
        capacity = ctx.model.device(vial).capacity_liquid_ml if ctx.model.has_device(vial) else None
        believed = float(ctx.state.get("container_liquid", vial, 0.0))
        unit = "mL"
    if capacity is None:
        return None
    if believed + ctx.call.quantity <= capacity + 1e-9:
        return None
    return (
        f"dosing {ctx.call.quantity:g} {unit} into {vial!r} would exceed its "
        f"capacity ({believed:g} + {ctx.call.quantity:g} > {capacity:g} {unit})"
    )


def _g9_door_closed_to_run(ctx: CheckContext) -> Optional[str]:
    device_model = ctx.model.device(ctx.call.device)
    if not device_model.has_door:
        return None
    door_keys = (
        [f"{ctx.call.device}:{name}" for name in device_model.door_names]
        if device_model.door_names
        else [ctx.call.device]
    )
    for key in door_keys:
        if ctx.state.get("door_status", key) != "closed":
            return (
                f"{ctx.call.device!r} cannot start: door {key!r} must be "
                f"closed while dosing/acting"
            )
    return None


def _g10_door_stays_closed_while_running(ctx: CheckContext) -> Optional[str]:
    if not ctx.state.get("device_active", _door_base(ctx.call.device), False):
        return None
    return f"door of {ctx.call.device!r} cannot open while the device is running"


def _g11_threshold(ctx: CheckContext) -> Optional[str]:
    device_model = ctx.model.device(ctx.call.device)
    if device_model.threshold is None or ctx.call.value is None:
        return None
    if ctx.call.value <= device_model.threshold:
        return None
    return (
        f"action value {ctx.call.value:g} for {ctx.call.device!r} exceeds its "
        f"predefined threshold {device_model.threshold:g}"
    )


# ---------------------------------------------------------------------------
# Customized rules (Table IV — Hein Lab)
# ---------------------------------------------------------------------------


def _c1_solid_before_liquid(ctx: CheckContext) -> Optional[str]:
    vial = _load_vial(ctx, ctx.call.device)
    if vial is None:
        return None
    solid = float(ctx.state.get("container_solid", vial, 0.0))
    if solid > 0.0:
        return None
    return f"cannot add liquid to {vial!r}: the container has no solid yet"


def _c2_both_phases_for_centrifuge(ctx: CheckContext) -> Optional[str]:
    device = _placing_into(ctx)
    if device is None or not _is_centrifuge(ctx.model, device):
        return None
    vial = _held_vial(ctx)
    assert vial is not None
    solid = float(ctx.state.get("container_solid", vial, 0.0))
    liquid = float(ctx.state.get("container_liquid", vial, 0.0))
    if solid > 0.0 and liquid > 0.0:
        return None
    return (
        f"container {vial!r} must hold both a solid and a liquid before it "
        f"goes into {device!r}"
    )


def _c3_red_dot_north(ctx: CheckContext) -> Optional[str]:
    device = _placing_into(ctx)
    if device is None or not _is_centrifuge(ctx.model, device):
        return None
    dot = ctx.state.get("red_dot", device, "N")
    if dot == "N":
        return None
    return f"red dot on {device!r} faces {dot}, not North"


def _c4_stopper_for_centrifuge(ctx: CheckContext) -> Optional[str]:
    device = _placing_into(ctx)
    if device is None or not _is_centrifuge(ctx.model, device):
        return None
    vial = _held_vial(ctx)
    assert vial is not None
    if ctx.state.get("container_stopper", vial, "off") == "on":
        return None
    return f"container {vial!r} must have its stopper on before centrifuging"


def _is_centrifuge(model: RabitLabModel, device: str) -> bool:
    return model.has_device(device) and model.device(device).class_name == "Centrifuge"


# ---------------------------------------------------------------------------
# Table II action preconditions
# ---------------------------------------------------------------------------


def _t2_place_requires_holding(ctx: CheckContext) -> Optional[str]:
    if _held_vial(ctx) is not None:
        return None
    return f"robot {ctx.call.robot!r} is not holding anything to place"


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

GENERAL_RULES: Tuple[Rule, ...] = (
    Rule(
        "G1",
        RuleScope.GENERAL,
        "Robot arm cannot move into a device whose door is closed",
        _ENTRY_LABELS,
        _g1_door_open_before_entry,
    ),
    Rule(
        "G2",
        RuleScope.GENERAL,
        "Device door cannot be closed when the robot is inside the device",
        frozenset({ActionLabel.CLOSE_DOOR}),
        _g2_no_close_on_robot,
    ),
    Rule(
        "G3",
        RuleScope.GENERAL,
        "Robot arm can move to any location not occupied by any object",
        _MOVE_LABELS,
        _g3_target_collision,
    ),
    Rule(
        "G4",
        RuleScope.GENERAL,
        "Robot arm can pick up an object when it isn't holding something",
        _PICK_LABELS,
        _g4_pick_requires_free_gripper,
    ),
    Rule(
        "G5",
        RuleScope.GENERAL,
        "Action device can perform actions when a container is inside it",
        frozenset({ActionLabel.START_ACTION}),
        _g5_container_inside,
    ),
    Rule(
        "G6",
        RuleScope.GENERAL,
        "Action device can perform actions when a container is not empty",
        frozenset({ActionLabel.START_ACTION}),
        _g6_container_not_empty,
    ),
    Rule(
        "G7",
        RuleScope.GENERAL,
        "A substance can be transferred from a delivering container to a "
        "receiving container when neither has a stopper on it",
        _DOSE_LABELS,
        _g7_no_stopper_during_transfer,
    ),
    Rule(
        "G8",
        RuleScope.GENERAL,
        "A substance can be transferred from a filled delivering container "
        "to an empty or partially filled receiving container",
        _DOSE_LABELS,
        _g8_receiving_capacity,
    ),
    Rule(
        "G9",
        RuleScope.GENERAL,
        "Dosing systems or action devices with doors should start dosing or "
        "performing an action, respectively, only when their doors are closed",
        frozenset({ActionLabel.START_DOSING, ActionLabel.START_ACTION}),
        _g9_door_closed_to_run,
    ),
    Rule(
        "G10",
        RuleScope.GENERAL,
        "The door of the dosing systems or action devices with doors should "
        "be closed when they are running",
        frozenset({ActionLabel.OPEN_DOOR}),
        _g10_door_stays_closed_while_running,
    ),
    Rule(
        "G11",
        RuleScope.GENERAL,
        "The action value, such as temperature or stirring speed, for a "
        "given action device should not exceed its predefined threshold",
        frozenset({ActionLabel.START_ACTION, ActionLabel.SET_ACTION_VALUE}),
        _g11_threshold,
    ),
)

HEIN_CUSTOM_RULES: Tuple[Rule, ...] = (
    Rule(
        "C1",
        RuleScope.CUSTOM,
        "Add liquid to a container only if the container already has solid",
        frozenset({ActionLabel.DOSE_LIQUID}),
        _c1_solid_before_liquid,
    ),
    Rule(
        "C2",
        RuleScope.CUSTOM,
        "Place the container in the centrifuge only if the container "
        "contains both a solid and a liquid",
        _PLACE_LABELS,
        _c2_both_phases_for_centrifuge,
    ),
    Rule(
        "C3",
        RuleScope.CUSTOM,
        "Place the container in the centrifuge only if the red dot on "
        "centrifuge faces North",
        _PLACE_LABELS,
        _c3_red_dot_north,
    ),
    Rule(
        "C4",
        RuleScope.CUSTOM,
        "Place the container in the centrifuge only if the container has a "
        "stopper on it",
        _PLACE_LABELS,
        _c4_stopper_for_centrifuge,
    ),
)

ACTION_PRECONDITIONS: Tuple[Rule, ...] = (
    Rule(
        "T2-place",
        RuleScope.ACTION,
        "Using a robot arm to place an object requires "
        "robotArmHolding[robot] = 1 (Table II)",
        frozenset({ActionLabel.PLACE_OBJECT}),
        _t2_place_requires_holding,
    ),
)


def build_default_rulebase(
    custom_rule_ids: Sequence[str] = (), exclude: Sequence[str] = ()
) -> RuleBase:
    """Assemble the rulebase: all general rules, Table II preconditions,
    and whichever Table IV custom rules the configuration enables.

    *exclude* drops rules by id — the knob the rule-knockout ablation
    benchmark turns to show which detections each rule carries."""
    enabled_custom = [
        rule for rule in HEIN_CUSTOM_RULES if rule.rule_id in set(custom_rule_ids)
    ]
    excluded = set(exclude)
    return RuleBase(
        [
            rule
            for rule in (*GENERAL_RULES, *ACTION_PRECONDITIONS, *enabled_custom)
            if rule.rule_id not in excluded
        ]
    )
