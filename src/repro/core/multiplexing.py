"""Time and space multiplexing of multiple robot arms (§IV, category 2).

The paper could not detect arm-arm collisions directly (no common frame of
reference with acceptable error), so it *prevents* them instead:

    "we multiplex robot arm movements in either time or space.  To
    multiplex in time, we ensure that, at any given time, only one robot
    is in motion whereas other robot arms are in their sleep position and
    modeled as 3D cuboid spaces (identically to other devices). ...  For
    space multiplexing, we add a software-defined wall between the two
    robot arms in their environments, providing each robot with its own
    dedicated space in which it can move, while allowing to let them move
    concurrently."

Both policies plug into RABIT exactly the way the paper describes —
"we modify RABIT to add preconditions to enforce this behavior":

- :class:`TimeMultiplexer` registers an extra precondition that rejects a
  move by robot A while robot B is awake, and swaps per-frame sleep-pose
  cuboids for sleeping arms in and out of the obstacle model;
- :class:`SpaceMultiplexer` registers a software wall per frame, which
  rule G3 (and the Extended Simulator sweep) then enforce.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.actions import ActionCall, ActionLabel
from repro.core.model import ObstacleModel
from repro.core.monitor import ROBOT_MOVE_LABELS, Rabit
from repro.core.state import LabState
from repro.geometry.shapes import Cuboid
from repro.geometry.walls import SoftwareWall

_WAKE_LABELS = ROBOT_MOVE_LABELS - {ActionLabel.GO_SLEEP}


class TimeMultiplexer:
    """Only one robot moves at a time; sleeping arms become cuboids.

    ``sleep_footprints`` maps each robot name to its sleep-pose cuboid
    *per frame* — e.g. "Ned2's shape and sleep position in ViperX's
    environment (and vice versa)".  All robots are assumed asleep when the
    multiplexer attaches; wake/sleep transitions are observed from the
    guarded action stream.
    """

    def __init__(
        self,
        rabit: Rabit,
        sleep_footprints: Dict[str, Dict[str, Cuboid]],
    ) -> None:
        self._rabit = rabit
        self._model = rabit.model
        self._sleep_footprints = dict(sleep_footprints)
        self._awake: Set[str] = set()
        self._robot_names = {r.name for r in self._model.robots()}
        unknown = set(self._sleep_footprints) - self._robot_names
        if unknown:
            raise ValueError(f"sleep footprints for unknown robots: {sorted(unknown)}")
        for robot in self._robot_names & set(self._sleep_footprints):
            self._add_sleep_obstacle(robot)
        rabit.model.extra_preconditions.append(self._precondition)
        rabit.observers.append(self._observe)

    # -- the added precondition ---------------------------------------------

    def _precondition(self, state: LabState, call: ActionCall) -> Optional[str]:
        if call.label not in _WAKE_LABELS or call.robot is None:
            return None
        others_awake = sorted(
            (self._awake | self._implicitly_awake()) - {call.robot}
        )
        if not others_awake:
            return None
        return (
            f"time multiplexing: robot {call.robot!r} may not move while "
            f"{', '.join(repr(r) for r in others_awake)} is not in its sleep "
            f"position"
        )

    def _implicitly_awake(self) -> Set[str]:
        """Robots with no sleep footprint configured are always 'awake'
        only once they have moved; before that they are treated as parked."""
        return set()

    # -- observation of the guarded stream ------------------------------------

    def _observe(self, call: ActionCall) -> None:
        if call.robot is None or call.robot not in self._robot_names:
            return
        if call.label is ActionLabel.GO_SLEEP:
            self._awake.discard(call.robot)
            self._add_sleep_obstacle(call.robot)
        elif call.label in _WAKE_LABELS:
            if call.robot not in self._awake:
                self._awake.add(call.robot)
                self._remove_sleep_obstacle(call.robot)

    # -- obstacle bookkeeping ----------------------------------------------------

    def _obstacle_name(self, robot: str) -> str:
        return f"sleeping_{robot}"

    def _add_sleep_obstacle(self, robot: str) -> None:
        frames = self._sleep_footprints.get(robot)
        if not frames:
            return
        name = self._obstacle_name(robot)
        self._model.remove_obstacle(name)
        self._model.add_obstacle(
            ObstacleModel(
                name=name,
                frames={f: box.renamed(name) for f, box in frames.items()},
            )
        )

    def _remove_sleep_obstacle(self, robot: str) -> None:
        self._model.remove_obstacle(self._obstacle_name(robot))

    @property
    def awake(self) -> Tuple[str, ...]:
        """Robots currently considered out of their sleep position."""
        return tuple(sorted(self._awake))


class SpaceMultiplexer:
    """Partition the deck with a software wall; arms move concurrently.

    ``walls`` maps each robot frame to the :class:`SoftwareWall` bounding
    that robot's side of the deck (each robot gets the wall expressed in
    its own coordinate system, with the permitted half-space facing its
    own base).
    """

    def __init__(self, rabit: Rabit, walls: Dict[str, SoftwareWall]) -> None:
        self._rabit = rabit
        frames = {r.frame or r.name for r in rabit.model.robots()}
        unknown = set(walls) - frames
        if unknown:
            raise ValueError(f"walls for unknown robot frames: {sorted(unknown)}")
        for frame, wall in walls.items():
            rabit.model.walls.setdefault(frame, []).append(wall)

    @staticmethod
    def dividing_wall_for_frames(
        axis: int,
        boundary_in_frame: Dict[str, float],
        keep_below: Dict[str, bool],
        name: str = "divider",
    ) -> Dict[str, SoftwareWall]:
        """Build one physical wall expressed in several frames.

        *boundary_in_frame* gives the wall's coordinate along *axis* in
        each frame; *keep_below* says whether that frame's robot must stay
        on the low side of the axis.
        """
        walls: Dict[str, SoftwareWall] = {}
        for frame, boundary in boundary_in_frame.items():
            normal = [0.0, 0.0, 0.0]
            if keep_below.get(frame, True):
                normal[axis] = 1.0
                walls[frame] = SoftwareWall(tuple(normal), boundary, name=name)
            else:
                normal[axis] = -1.0
                walls[frame] = SoftwareWall(tuple(normal), -boundary, name=name)
        return walls
