"""RABIT's own model of the lab, populated from JSON configuration.

This is *RABIT's belief*, distinct from the ground-truth
:class:`~repro.devices.world.LabWorld`.  The researcher describes their
deck in JSON (§II-C): each device's type, class name, door, thresholds,
load location, plus the named locations and the 3D cuboids of every
obstacle **per robot-arm frame** (the paper keeps separate coordinate
systems per arm and specifies, e.g., "Ned2's shape and sleep position in
ViperX's environment").

The model also carries ``extra_preconditions`` — the hook the paper used
when it "modif[ied] RABIT to add preconditions" for time multiplexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionCall, TransitionContext
from repro.core.state import LabState
from repro.devices.base import DeviceKind
from repro.geometry.shapes import Cuboid
from repro.geometry.walls import SoftwareWall

#: An extra precondition: returns a violation message or ``None``.
ExtraPrecondition = Callable[[LabState, ActionCall], Optional[str]]


@dataclass
class DeviceModel:
    """What the JSON config says about one device."""

    name: str
    kind: DeviceKind
    class_name: str
    has_door: bool = False
    #: Named doors for multi-door devices (§V-C); empty means the single
    #: unnamed door when ``has_door`` is set.
    door_names: Tuple[str, ...] = ()
    #: Safety threshold for action devices (Rule 11); ``None`` if not applicable.
    threshold: Optional[float] = None
    #: Whether Rules 5/6 apply (the device acts *on* a loaded container).
    requires_container: bool = True
    #: Location name where this device's container sits, if any.
    load_location: Optional[str] = None
    #: For dosing systems that dispense at a fixed deck point (syringe pump).
    dispense_location: Optional[str] = None
    #: Container capacities (Rule 8 / the Fig. 1(b) amount check).
    capacity_solid_mg: Optional[float] = None
    capacity_liquid_ml: Optional[float] = None
    # Robot-arm geometry RABIT uses for collision preconditions:
    frame: Optional[str] = None
    gripper_clearance: float = 0.025
    held_drop: float = 0.06
    link_radius: float = 0.04


@dataclass
class ObstacleModel:
    """A 3D cuboid obstacle, expressed in one or more arm frames.

    ``surface=True`` marks support slabs (deck platform, trays): these are
    checked against gripper/held-object *tips* only, since arms are mounted
    on them (see :mod:`repro.devices.robot` for the ground-truth analogue).
    """

    name: str
    frames: Dict[str, Cuboid]
    surface: bool = False

    def in_frame(self, frame: str) -> Optional[Cuboid]:
        """The obstacle's cuboid in *frame*, if configured."""
        return self.frames.get(frame)


@dataclass
class LocationModel:
    """What the config says about one named location."""

    name: str
    kind: str  # "free" | "device_interior" | "device_approach" | "grid_slot"
    device: Optional[str] = None
    #: Named door guarding this interior on multi-door devices.
    via_door: Optional[str] = None
    coords: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)


class RabitLabModel:
    """RABIT's complete view of a lab, assembled from configuration."""

    def __init__(self, lab_name: str = "lab") -> None:
        self.lab_name = lab_name
        self._devices: Dict[str, DeviceModel] = {}
        self._obstacles: Dict[str, ObstacleModel] = {}
        self._locations: Dict[str, LocationModel] = {}
        #: Additional preconditions registered at run time (multiplexing).
        self.extra_preconditions: List[ExtraPrecondition] = []
        #: Software walls per robot frame (space multiplexing).
        self.walls: Dict[str, List[SoftwareWall]] = {}
        #: Enabled custom rule ids (Table IV subset).
        self.custom_rule_ids: List[str] = []
        #: Whether modeled pick/place wrapper commands keep container
        #: positions trustworthy (production Hein deck: True; testbed with
        #: raw gripper commands: False).  Presence-requiring rules only
        #: alarm on *provable* violations, so they skip when this is False
        #: and the needed belief is missing.
        self.reliable_container_tracking: bool = False
        #: Per-frame reachable-workspace cuboids, enforced only by
        #: modified RABIT (the post-campaign wall/deck-edge fix).
        self.workspace_bounds: Dict[str, Cuboid] = {}
        #: Bumped on every structural mutation (devices, obstacles,
        #: locations).  The rule-verdict cache and the Extended Simulator's
        #: packed-engine cache key on it, so time multiplexing swapping a
        #: sleeping arm's cuboid in or out invalidates both.
        self.geometry_revision: int = 0

    # -- population -------------------------------------------------------------

    def add_device(self, device: DeviceModel) -> DeviceModel:
        """Register a device description."""
        if device.name in self._devices:
            raise ValueError(f"duplicate device {device.name!r} in configuration")
        self._devices[device.name] = device
        self.geometry_revision += 1
        return device

    def add_obstacle(self, obstacle: ObstacleModel) -> ObstacleModel:
        """Register an obstacle description."""
        if obstacle.name in self._obstacles:
            raise ValueError(f"duplicate obstacle {obstacle.name!r} in configuration")
        self._obstacles[obstacle.name] = obstacle
        self.geometry_revision += 1
        return obstacle

    def remove_obstacle(self, name: str) -> None:
        """Drop an obstacle (time multiplexing swaps arm cuboids in and out)."""
        if self._obstacles.pop(name, None) is not None:
            self.geometry_revision += 1

    def add_location(self, location: LocationModel) -> LocationModel:
        """Register a location description."""
        if location.name in self._locations:
            raise ValueError(f"duplicate location {location.name!r} in configuration")
        self._locations[location.name] = location
        self.geometry_revision += 1
        return location

    def invalidate_caches(self) -> None:
        """Force-bump the revision after an out-of-band mutation.

        Call this after editing model structures in place (e.g. mutating an
        :class:`ObstacleModel`'s frames directly) so revision-keyed caches
        (rule verdicts, packed collision engines) drop their entries.
        """
        self.geometry_revision += 1

    def belief_fingerprint(self) -> Tuple:
        """Everything rule checks read from the model that can change at
        run time, digested for the rule-verdict cache key.

        Walls are appended per frame by space multiplexing without going
        through a mutator, so the (frozen, hashable) walls themselves are
        folded in here alongside the structural revision counter, as are
        the workspace-bound corners.
        """
        return (
            self.geometry_revision,
            self.reliable_container_tracking,
            tuple(sorted((frame, tuple(ws)) for frame, ws in self.walls.items())),
            tuple(
                sorted(
                    (frame, c.min_corner, c.max_corner)
                    for frame, c in self.workspace_bounds.items()
                )
            ),
        )

    # -- queries -----------------------------------------------------------------

    def device(self, name: str) -> DeviceModel:
        """Device description by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(
                f"device {name!r} not in configuration; known: {sorted(self._devices)}"
            ) from None

    def has_device(self, name: str) -> bool:
        """Whether the configuration describes *name*."""
        return name in self._devices

    def devices(self) -> Tuple[DeviceModel, ...]:
        """All configured devices."""
        return tuple(self._devices.values())

    def robots(self) -> Tuple[DeviceModel, ...]:
        """All configured robot arms."""
        return tuple(
            d for d in self._devices.values() if d.kind is DeviceKind.ROBOT_ARM
        )

    def location(self, name: str) -> LocationModel:
        """Location description by name."""
        try:
            return self._locations[name]
        except KeyError:
            raise KeyError(
                f"location {name!r} not in configuration; known: {sorted(self._locations)}"
            ) from None

    def locations(self) -> Tuple[LocationModel, ...]:
        """All configured locations."""
        return tuple(self._locations.values())

    def interior_owner(self, location_name: Optional[str]) -> Optional[str]:
        """Owning device of an interior location (None otherwise)."""
        if location_name is None or location_name not in self._locations:
            return None
        loc = self._locations[location_name]
        return loc.device if loc.kind == "device_interior" else None

    def load_location(self, device_name: str) -> Optional[str]:
        """Where *device_name*'s container sits (load or dispense point)."""
        if device_name not in self._devices:
            return None
        dev = self._devices[device_name]
        return dev.load_location or dev.dispense_location

    def obstacles_for_frame(
        self, frame: str, exclude: Sequence[str] = ()
    ) -> List[Cuboid]:
        """Non-surface obstacle cuboids expressed in *frame*."""
        out: List[Cuboid] = []
        for obstacle in self._obstacles.values():
            if obstacle.surface or obstacle.name in exclude:
                continue
            box = obstacle.in_frame(frame)
            if box is not None:
                out.append(box)
        return out

    def surfaces_for_frame(
        self, frame: str, exclude: Sequence[str] = ()
    ) -> List[Cuboid]:
        """Surface slabs expressed in *frame*."""
        out: List[Cuboid] = []
        for obstacle in self._obstacles.values():
            if not obstacle.surface or obstacle.name in exclude:
                continue
            box = obstacle.in_frame(frame)
            if box is not None:
                out.append(box)
        return out

    def location_via_door(self, location_name: Optional[str]) -> Optional[str]:
        """Named door guarding *location_name* (multi-door devices)."""
        if location_name is None or location_name not in self._locations:
            return None
        return self._locations[location_name].via_door

    def transition_context(self) -> TransitionContext:
        """Adapter handed to the transition table's postconditions."""
        return TransitionContext(
            interior_owner=self.interior_owner,
            load_location=self.load_location,
            via_door=self.location_via_door,
        )
