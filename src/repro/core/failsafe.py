"""Fail-safe response policies (§II-B).

"RABIT stops an experiment preemptively based on the Hein Lab's
recommendation.  However, this can be dangerous at times, e.g., if a
robot arm is left holding a volatile substance, a person can bump into
it.  In such cases, a fail-safe scenario may be recommended instead."

:class:`FailSafePolicy` implements that recommendation as an alert
handler: when RABIT stops an experiment, the policy drives the deck into
a configured safe posture — set any held vial down at its designated
safe location, retract every arm to its sleep pose, close doors, and
stop running devices — executing each recovery command *through the
monitor* (guarded like any other command), falling back to skipping a
recovery step if it is itself vetoed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import Alert, SafetyViolation
from repro.core.interceptor import DeviceProxy
from repro.devices.robot import RobotArmDevice


@dataclass
class RecoveryReport:
    """What the fail-safe policy managed to do after an alert."""

    triggering_alert: Alert
    steps: List[Tuple[str, str]] = field(default_factory=list)  # (action, outcome)

    @property
    def fully_recovered(self) -> bool:
        """Whether every recovery step succeeded."""
        return all(outcome == "ok" for _, outcome in self.steps)


class FailSafePolicy:
    """Drive the deck to a safe state after a RABIT stop.

    ``safe_drop_locations`` maps each robot to the location where a held
    vial should be set down before retracting (typically its grid slot's
    safe-approach pair); robots without an entry retract directly —
    carrying the vial with them, which the report flags.
    """

    def __init__(
        self,
        proxies: Dict[str, DeviceProxy],
        safe_drop_locations: Optional[Dict[str, Tuple[str, str]]] = None,
    ) -> None:
        self._proxies = dict(proxies)
        self._safe_drops = dict(safe_drop_locations or {})

    def recover(self, alert: Alert) -> RecoveryReport:
        """Execute the fail-safe scenario; never raises."""
        report = RecoveryReport(triggering_alert=alert)
        for name, proxy in self._proxies.items():
            device = proxy.wrapped
            if isinstance(device, RobotArmDevice):
                self._recover_arm(name, proxy, device, report)
            else:
                self._quiesce_device(name, proxy, device, report)
        return report

    # ------------------------------------------------------------------

    def _attempt(self, report: RecoveryReport, action: str, fn) -> bool:
        try:
            fn()
        except SafetyViolation as stop:
            report.steps.append((action, f"vetoed: {stop.alert}"))
            return False
        except Exception as exc:  # noqa: BLE001 - recovery must not raise
            report.steps.append((action, f"failed: {exc}"))
            return False
        report.steps.append((action, "ok"))
        return True

    def _recover_arm(
        self, name: str, proxy: DeviceProxy, device: RobotArmDevice, report: RecoveryReport
    ) -> None:
        if device.holding is not None:
            drop = self._safe_drops.get(name)
            if drop is not None:
                safe, slot = drop
                self._attempt(report, f"{name}: stage at {safe}", lambda: proxy.move_to_location(safe))
                self._attempt(report, f"{name}: set vial down at {slot}", lambda: proxy.place_vial(slot))
                self._attempt(report, f"{name}: clear {safe}", lambda: proxy.move_to_location(safe))
            else:
                report.steps.append(
                    (f"{name}: holding {device.holding!r}", "no safe drop configured")
                )
        self._attempt(report, f"{name}: go to sleep pose", proxy.go_to_sleep_pose)

    def _quiesce_device(self, name: str, proxy: DeviceProxy, device, report: RecoveryReport) -> None:
        if getattr(device, "active", False):
            stopper = getattr(proxy, "stop_action", None) or getattr(proxy, "stop", None)
            if stopper is not None:
                self._attempt(report, f"{name}: stop", stopper)
