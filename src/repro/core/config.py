"""JSON configuration: schema validation and model construction.

§II-C: "The lab researcher configures RABIT for their lab by instantiating
their devices in the JSON files that we provide.  They must categorize
each device into its device type and enter its properties, including the
class name that provides the device's APIs and additional properties
(such as the presence and position of a door)."

The pilot study (§V-A) found two recurring error classes while
participant P authored these files: **JSON syntax errors** and **sign /
value errors** ("P accidentally entered a negative sign instead of a
positive sign in a location").  The paper concludes that "more precise
JSON schema specifications could have helped avoid sign errors" —
:func:`validate_config` is that more-precise validator, and the pilot
benchmark measures which error classes it catches.

Expected document shape::

    {
      "lab": "hein",
      "devices": [
        {"name": "dosing_device", "type": "dosing_system",
         "class": "SolidDosingDevice",
         "door": {"present": true, "initial": "closed"},
         "load_location": "dosing_interior",
         "capacity_solid_mg": 10.0},
        {"name": "ur3e", "type": "robot_arm", "class": "RobotArmDevice",
         "frame": "ur3e", "link_radius": 0.045},
        ...
      ],
      "locations": [
        {"name": "grid_nw_pickup", "kind": "grid_slot", "device": "grid",
         "coords": {"ur3e": [0.537, 0.018, 0.12]}},
        ...
      ],
      "obstacles": [
        {"name": "grid", "surface": false,
         "frames": {"ur3e": {"min": [0.4, -0.1, 0.0], "max": [0.7, 0.1, 0.05]}}},
        ...
      ],
      "custom_rules": ["C1", "C2", "C3", "C4"]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.core.model import (
    DeviceModel,
    LocationModel,
    ObstacleModel,
    RabitLabModel,
)
from repro.devices.base import DeviceKind
from repro.geometry.richshapes import shape_from_spec
from repro.geometry.shapes import Cuboid

VALID_DEVICE_TYPES = {k.value for k in DeviceKind}
VALID_LOCATION_KINDS = {"free", "device_interior", "device_approach", "grid_slot"}

#: Device classes the reproduction ships; the config's "class" field must
#: name one of these (the paper's "class name that provides the device's
#: APIs").
KNOWN_CLASSES = {
    "RobotArmDevice",
    "SolidDosingDevice",
    "SyringePump",
    "Hotplate",
    "Centrifuge",
    "Thermoshaker",
    "Decapper",
    "SpinCoater",
    "UltrasonicNozzle",
    "XRFStation",
    "Vial",
    "ProximitySensor",
    "MultiDoorDosingDevice",
}


@dataclass(frozen=True)
class ConfigIssue:
    """One problem found while validating a configuration document."""

    severity: str  # "error" | "warning"
    path: str  # JSON-pointer-ish location, e.g. "devices[2].door"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.path}: {self.message}"


class ConfigError(Exception):
    """Raised when a configuration cannot be loaded into a model."""

    def __init__(self, issues: Sequence[ConfigIssue]) -> None:
        summary = "; ".join(str(i) for i in issues if i.severity == "error")
        super().__init__(f"invalid RABIT configuration: {summary}")
        self.issues = list(issues)


def parse_config_text(text: str) -> Dict[str, Any]:
    """Parse raw JSON text, converting syntax errors into ConfigError.

    This is the error class a "JSON-aware editor" would have prevented in
    the pilot study."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(
            [ConfigIssue("error", f"line {exc.lineno}", f"JSON syntax error: {exc.msg}")]
        ) from exc
    if not isinstance(document, dict):
        raise ConfigError([ConfigIssue("error", "$", "top level must be an object")])
    return document


def _check_triple(value: Any, path: str, issues: List[ConfigIssue]) -> bool:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 3
        or not all(isinstance(x, (int, float)) for x in value)
    ):
        issues.append(ConfigIssue("error", path, f"expected [x, y, z] numbers, got {value!r}"))
        return False
    return True


def validate_config(document: Dict[str, Any]) -> List[ConfigIssue]:
    """Validate a parsed configuration document.

    Returns all issues found.  ``severity == "error"`` issues block model
    construction; warnings (like the below-deck sign check) are surfaced
    to the researcher but do not block.
    """
    issues: List[ConfigIssue] = []

    devices = document.get("devices")
    if not isinstance(devices, list) or not devices:
        issues.append(ConfigIssue("error", "devices", "must be a non-empty list"))
        devices = []

    device_names = set()
    frames = set()
    for i, dev in enumerate(devices):
        path = f"devices[{i}]"
        if not isinstance(dev, dict):
            issues.append(ConfigIssue("error", path, "must be an object"))
            continue
        name = dev.get("name")
        if not isinstance(name, str) or not name:
            issues.append(ConfigIssue("error", f"{path}.name", "missing device name"))
        elif name in device_names:
            issues.append(ConfigIssue("error", f"{path}.name", f"duplicate device {name!r}"))
        else:
            device_names.add(name)

        dtype = dev.get("type")
        if dtype not in VALID_DEVICE_TYPES:
            issues.append(
                ConfigIssue(
                    "error",
                    f"{path}.type",
                    f"unknown device type {dtype!r}; must be one of {sorted(VALID_DEVICE_TYPES)}",
                )
            )
        cls = dev.get("class")
        if cls is not None and cls not in KNOWN_CLASSES:
            issues.append(
                ConfigIssue(
                    "error",
                    f"{path}.class",
                    f"unknown device class {cls!r}; no API wrapper with this name",
                )
            )
        if dtype == "robot_arm":
            frame = dev.get("frame")
            if not isinstance(frame, str) or not frame:
                issues.append(
                    ConfigIssue("error", f"{path}.frame", "robot arms need a coordinate frame name")
                )
            else:
                frames.add(frame)
        threshold = dev.get("threshold")
        if threshold is not None and (
            not isinstance(threshold, (int, float)) or threshold <= 0
        ):
            issues.append(
                ConfigIssue("error", f"{path}.threshold", f"threshold must be positive, got {threshold!r}")
            )
        door = dev.get("door")
        if door is not None:
            if not isinstance(door, dict) or "present" not in door:
                issues.append(
                    ConfigIssue("error", f"{path}.door", "door must be an object with a 'present' flag")
                )
            elif door.get("initial") not in (None, "open", "closed"):
                issues.append(
                    ConfigIssue(
                        "error", f"{path}.door.initial", f"must be 'open' or 'closed', got {door.get('initial')!r}"
                    )
                )

    location_names = set()
    for i, loc in enumerate(document.get("locations", [])):
        path = f"locations[{i}]"
        if not isinstance(loc, dict):
            issues.append(ConfigIssue("error", path, "must be an object"))
            continue
        name = loc.get("name")
        if not isinstance(name, str) or not name:
            issues.append(ConfigIssue("error", f"{path}.name", "missing location name"))
        elif name in location_names:
            issues.append(ConfigIssue("error", f"{path}.name", f"duplicate location {name!r}"))
        else:
            location_names.add(name)
        kind = loc.get("kind")
        if kind not in VALID_LOCATION_KINDS:
            issues.append(
                ConfigIssue(
                    "error",
                    f"{path}.kind",
                    f"unknown location kind {kind!r}; must be one of {sorted(VALID_LOCATION_KINDS)}",
                )
            )
        device = loc.get("device")
        if device is not None and device_names and device not in device_names:
            # Obstacles (grid, platform) are legitimate owners too; only
            # warn so researchers notice typos without being blocked.
            issues.append(
                ConfigIssue("warning", f"{path}.device", f"owner {device!r} is not a configured device")
            )
        coords = loc.get("coords", {})
        if not isinstance(coords, dict) or not coords:
            issues.append(ConfigIssue("error", f"{path}.coords", "need at least one frame's coordinates"))
            coords = {}
        for frame, triple in coords.items():
            cpath = f"{path}.coords.{frame}"
            if not _check_triple(triple, cpath, issues):
                continue
            # The pilot study's sign-error class: a reachable deck location
            # can never be below the deck plane.
            if triple[2] < 0:
                issues.append(
                    ConfigIssue(
                        "warning",
                        cpath,
                        f"z = {triple[2]} is below the deck plane — "
                        f"possible sign error (pilot-study error class)",
                    )
                )

    for i, obs in enumerate(document.get("obstacles", [])):
        path = f"obstacles[{i}]"
        if not isinstance(obs, dict):
            issues.append(ConfigIssue("error", path, "must be an object"))
            continue
        if not isinstance(obs.get("name"), str):
            issues.append(ConfigIssue("error", f"{path}.name", "missing obstacle name"))
        frames_spec = obs.get("frames")
        if not isinstance(frames_spec, dict) or not frames_spec:
            issues.append(ConfigIssue("error", f"{path}.frames", "need at least one frame's cuboid"))
            continue
        for frame, box in frames_spec.items():
            bpath = f"{path}.frames.{frame}"
            if not isinstance(box, dict):
                issues.append(ConfigIssue("error", bpath, "shape spec must be an object"))
                continue
            if box.get("type", "cuboid") != "cuboid" or ("min" not in box and "max" not in box):
                # Refined shape (§V-C extension): validate by construction.
                try:
                    shape_from_spec(box, name=str(obs.get("name", "?")))
                except (KeyError, TypeError, ValueError) as exc:
                    issues.append(
                        ConfigIssue("error", bpath, f"invalid shape spec: {exc}")
                    )
                continue
            if "min" not in box or "max" not in box:
                issues.append(ConfigIssue("error", bpath, "cuboid needs 'min' and 'max' corners"))
                continue
            ok_min = _check_triple(box["min"], f"{bpath}.min", issues)
            ok_max = _check_triple(box["max"], f"{bpath}.max", issues)
            if ok_min and ok_max and any(
                lo > hi for lo, hi in zip(box["min"], box["max"])
            ):
                issues.append(
                    ConfigIssue(
                        "error",
                        bpath,
                        "min corner exceeds max corner — possible sign error "
                        "(pilot-study error class)",
                    )
                )

    for i, rule in enumerate(document.get("custom_rules", [])):
        if not isinstance(rule, str):
            issues.append(ConfigIssue("error", f"custom_rules[{i}]", f"rule id must be a string, got {rule!r}"))

    return issues


def build_model(document: Dict[str, Any]) -> RabitLabModel:
    """Construct a :class:`RabitLabModel` from a validated document.

    Raises :class:`ConfigError` if validation finds any errors.
    """
    issues = validate_config(document)
    if any(i.severity == "error" for i in issues):
        raise ConfigError(issues)

    model = RabitLabModel(lab_name=document.get("lab", "lab"))
    for dev in document["devices"]:
        door = dev.get("door") or {}
        model.add_device(
            DeviceModel(
                name=dev["name"],
                kind=DeviceKind(dev["type"]),
                class_name=dev.get("class", ""),
                has_door=bool(door.get("present", False)),
                door_names=tuple(door.get("names", ())),
                threshold=dev.get("threshold"),
                requires_container=bool(dev.get("requires_container", True)),
                load_location=dev.get("load_location"),
                dispense_location=dev.get("dispense_location"),
                capacity_solid_mg=dev.get("capacity_solid_mg"),
                capacity_liquid_ml=dev.get("capacity_liquid_ml"),
                frame=dev.get("frame"),
                gripper_clearance=float(dev.get("gripper_clearance", 0.025)),
                held_drop=float(dev.get("held_drop", 0.06)),
                link_radius=float(dev.get("link_radius", 0.04)),
            )
        )
    for loc in document.get("locations", []):
        model.add_location(
            LocationModel(
                name=loc["name"],
                kind=loc["kind"],
                device=loc.get("device"),
                via_door=loc.get("via_door"),
                coords={
                    frame: tuple(float(x) for x in triple)
                    for frame, triple in loc.get("coords", {}).items()
                },
            )
        )
    for obs in document.get("obstacles", []):
        model.add_obstacle(
            ObstacleModel(
                name=obs["name"],
                surface=bool(obs.get("surface", False)),
                frames={
                    frame: shape_from_spec(box, name=obs["name"])
                    for frame, box in obs["frames"].items()
                },
            )
        )
    model.custom_rule_ids = list(document.get("custom_rules", []))
    model.reliable_container_tracking = bool(
        document.get("reliable_container_tracking", False)
    )
    for frame, box in document.get("workspace", {}).items():
        model.workspace_bounds[frame] = Cuboid(
            tuple(box["min"]), tuple(box["max"]), name=f"workspace[{frame}]"
        )
    return model


def load_model(source: Union[str, Path, Dict[str, Any]]) -> RabitLabModel:
    """Load a model from a JSON file path, raw JSON text, or a parsed dict."""
    if isinstance(source, dict):
        return build_model(source)
    text = str(source)
    if not text.lstrip().startswith(("{", "[")):
        # Looks like a path, not JSON text.
        path = Path(source)
        if path.exists():
            return build_model(parse_config_text(path.read_text()))
    return build_model(parse_config_text(text))
