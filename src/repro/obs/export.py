"""File exporters: JSONL trace, Prometheus text, JSON metrics snapshot.

Thin wrappers so callers (the CLI, tests, notebook users) write artifacts
without knowing the internals.  Paths are created with UTF-8 encoding and
a trailing newline, matching what Prometheus scrapers and ``jq`` expect.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.obs.runtime import Observability

__all__ = ["export_trace_jsonl", "export_metrics_prometheus", "export_metrics_json"]

PathLike = Union[str, Path]


def export_trace_jsonl(obs: Observability, path: PathLike) -> int:
    """Write the retained spans as JSONL; returns the span count."""
    return obs.collector.write_jsonl(path)


def export_metrics_prometheus(obs: Observability, path: PathLike) -> int:
    """Write the registry in Prometheus text format; returns bytes written."""
    text = obs.registry.to_prometheus()
    Path(path).write_text(text, encoding="utf-8")
    return len(text.encode("utf-8"))


def export_metrics_json(obs: Observability, path: PathLike) -> Dict:
    """Write the JSON metrics snapshot; returns the snapshot dict."""
    snapshot = obs.registry.snapshot()
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return snapshot
