"""``repro.obs`` — the runtime observability layer.

The paper deploys RABIT behind the RATracer tracing framework; the
reproduction's equivalent is this zero-dependency subsystem: span-based
tracing with virtual- and wall-clock timestamps, a metrics registry
(counters, gauges, fixed-bucket histograms) exportable as Prometheus text
or a JSON snapshot, and a ring-buffered in-process span collector with a
JSONL exporter.

Everything hangs off the process-wide :data:`OBS` singleton, which is
**disabled by default**: every instrumentation site in the hot path
guards on ``OBS.enabled`` (a single attribute read), so the §II-C latency
reproduction and the collision-throughput gate are unaffected unless a
caller opts in via :func:`enable` (the ``python -m repro metrics``
subcommand does).

This package imports nothing from the rest of :mod:`repro` — the core
modules import *it*, never the reverse.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import OBS, Observability, disable, enable, enabled, span
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "OBS",
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanCollector",
    "enable",
    "disable",
    "enabled",
    "span",
]
