"""Spans and the ring-buffered in-process collector.

A :class:`Span` is one timed region of the interception pipeline — a
guarded command, a rulebase check, a collision sweep.  Spans nest: each
records the id of the span that was open when it started, so an exported
trace reconstructs the call tree of every intercepted command.

Two clocks are recorded per span.  The *wall* clock
(:func:`time.perf_counter`) measures real CPU cost — what a perf PR wants
to shrink.  The *virtual* clock (when one is bound to the runtime) is the
deterministic lab clock the §II-C latency experiment charges; recording
both lets a trace correlate "where the virtual seconds were charged" with
"where the real microseconds went".

The collector is a bounded ring: under heavy traffic old spans fall off
the back rather than growing memory without bound, and the drop count is
reported so a truncated trace is never mistaken for a complete one.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanCollector"]


@dataclass
class Span:
    """One timed region; finished spans are immutable by convention."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_wall: float
    start_virtual: Optional[float] = None
    end_wall: Optional[float] = None
    end_virtual: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_wall(self) -> Optional[float]:
        """Wall-clock seconds spent in the span (``None`` while open)."""
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    @property
    def duration_virtual(self) -> Optional[float]:
        """Virtual seconds charged while the span was open."""
        if self.end_virtual is None or self.start_virtual is None:
            return None
        return self.end_virtual - self.start_virtual

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (the JSONL export line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "duration_wall": self.duration_wall,
            "start_virtual": self.start_virtual,
            "end_virtual": self.end_virtual,
            "duration_virtual": self.duration_virtual,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
        }


def _jsonable(value: Any) -> Any:
    """Coerce attribute values JSON can't represent to strings."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class SpanCollector:
    """A bounded ring buffer of finished spans.

    ``capacity`` bounds retained spans; once full, recording a new span
    silently evicts the oldest and bumps :attr:`dropped`.  Spans are kept
    in completion order; :meth:`spans` re-sorts by start order (span ids
    are monotonic), which is the order a trace viewer wants.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        #: Spans recorded over the collector's lifetime (incl. dropped).
        self.recorded = 0
        #: Spans evicted from the ring to make room.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, span: Span) -> None:
        """Add a finished span, evicting the oldest when full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)
        self.recorded += 1

    def spans(self) -> List[Span]:
        """Retained spans in start order."""
        return sorted(self._ring, key=lambda s: s.span_id)

    def clear(self) -> None:
        """Drop every retained span and zero the counters."""
        self._ring.clear()
        self.recorded = 0
        self.dropped = 0

    # -- export ------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        """One compact JSON document per retained span, start order."""
        for span in self.spans():
            yield json.dumps(span.to_dict(), sort_keys=True)

    def write_jsonl(self, path: Any) -> int:
        """Write the JSONL trace to *path*; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.to_jsonl_lines():
                fh.write(line + "\n")
        return len(spans)

    # -- aggregation -------------------------------------------------------

    def totals_by_name(self) -> Dict[str, Dict[str, float]]:
        """Per span name: count and cumulative/max wall seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self._ring:
            bucket = out.setdefault(
                span.name, {"count": 0, "wall_seconds": 0.0, "max_wall_seconds": 0.0}
            )
            bucket["count"] += 1
            duration = span.duration_wall or 0.0
            bucket["wall_seconds"] += duration
            bucket["max_wall_seconds"] = max(bucket["max_wall_seconds"], duration)
        return out
