"""The process-wide observability runtime and its on/off switch.

:data:`OBS` is the singleton every instrumented module consults.  The
contract with the hot path is strict: when disabled (the default), an
instrumentation site costs one attribute read (``OBS.enabled``) and, for
span sites, one call returning a shared no-op context manager — nothing
is allocated, recorded, or timed, and the virtual clock is never touched.
The benchmark suite gates that promise (≤ 2 % on the collision-throughput
workload); the differential suite gates the stronger one, that enabling
observability changes no monitor verdicts.

Typical use (what ``python -m repro metrics`` does)::

    from repro.obs import OBS

    OBS.enable()
    OBS.bind_clock(rabit.clock)      # stamps spans with virtual time too
    ... run the workload ...
    OBS.collector.write_jsonl("trace.jsonl")
    print(OBS.registry.to_prometheus())
    OBS.disable(); OBS.reset()
"""

from __future__ import annotations

import contextvars
import functools
import time
from typing import Any, Callable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanCollector

__all__ = ["OBS", "Observability", "enable", "disable", "enabled", "span"]


class _NullSpan:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a real span on the runtime's stack."""

    __slots__ = ("_obs", "_name", "_attrs", "_span")

    def __init__(self, obs: "Observability", name: str, attrs: dict) -> None:
        self._obs = obs
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._obs._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._obs._close(self._span)
        return False


#: The open-span stack, held in a :mod:`contextvars` variable rather than
#: a plain list on the runtime.  Under asyncio each task sees its own
#: copy of the context, so two guard sessions interleaving awaits build
#: independent span trees instead of silently cross-parenting (the
#: guard-as-a-service front-end runs many sessions on one event loop).
#: The value is an immutable tuple — pushes and pops *set* a new tuple —
#: because a shared mutable list would leak edits across tasks that
#: inherited it.  Plain synchronous code is unaffected: it runs in the
#: one ambient context and sees the exact old behaviour.
_SPAN_STACK: contextvars.ContextVar[Tuple[Span, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


class Observability:
    """Span collector + metrics registry behind one enable switch."""

    def __init__(self, capacity: int = 4096) -> None:
        #: The hot-path guard.  Instrumented modules read this attribute
        #: directly; everything else in the subsystem is behind it.
        self.enabled: bool = False
        self.registry = MetricsRegistry()
        self.collector = SpanCollector(capacity)
        self._clock: Optional[Any] = None
        self._next_id: int = 1

    # -- switch ------------------------------------------------------------

    def enable(self) -> "Observability":
        """Turn instrumentation on; returns self for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        """Turn instrumentation off (the default state)."""
        self.enabled = False
        return self

    def bind_clock(self, clock: Optional[Any]) -> None:
        """Stamp future spans with *clock*'s virtual time (``clock.now``).

        Pass ``None`` to unbind.  The clock is only ever read, never
        advanced — observability must not perturb the latency accounting.
        """
        self._clock = clock

    def reset(self) -> None:
        """Clear spans, zero metrics, drop the clock and any open stack."""
        self.collector.clear()
        self.registry.reset()
        self._clock = None
        _SPAN_STACK.set(())
        self._next_id = 1

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Context manager timing a region; no-op while disabled.

        Yields the open :class:`Span` (or ``None`` when disabled — guard
        before touching it)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attributes)

    def traced(
        self, name: Optional[str] = None, **attributes: Any
    ) -> Callable[[Callable], Callable]:
        """Decorator form of :meth:`span` (span per call)."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def _virtual_now(self) -> Optional[float]:
        clock = self._clock
        return clock.now if clock is not None else None

    def _open(self, name: str, attributes: dict) -> Span:
        stack = _SPAN_STACK.get()
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=stack[-1].span_id if stack else None,
            start_wall=time.perf_counter(),
            start_virtual=self._virtual_now(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        _SPAN_STACK.set(stack + (span,))
        return span

    def _close(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        span.end_virtual = self._virtual_now()
        # Tolerate exception-skewed exits: close everything above *span*
        # (only this task's stack is touched — siblings on other tasks
        # keep their own open spans).
        stack = _SPAN_STACK.get()
        for i, open_span in enumerate(stack):
            if open_span is span:
                _SPAN_STACK.set(stack[:i])
                break
        self.collector.record(span)

    # -- summaries ---------------------------------------------------------

    def summary(self) -> dict:
        """The headline numbers a report or CLI table leads with."""
        reg = self.registry

        def total(name: str) -> float:
            metric = reg.get(name)
            return metric.total() if metric is not None else 0.0

        lookups = reg.get("rabit_rule_cache_lookups_total")
        hits = lookups.value(result="hit") if lookups is not None else 0.0
        misses = lookups.value(result="miss") if lookups is not None else 0.0
        return {
            "commands_intercepted": total("rabit_commands_intercepted_total"),
            "verdicts": _by_label(reg, "rabit_command_verdicts_total"),
            "alerts": _by_label(reg, "rabit_alerts_total"),
            "rule_cache_hits": hits,
            "rule_cache_misses": misses,
            "rule_cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "trajectory_checks": _by_label(reg, "es_trajectory_checks_total"),
            "collision_segments_swept": total("es_segments_swept_total"),
            "geometry_pair_checks": total("geometry_pair_checks_total"),
            "device_commands": total("device_commands_total"),
            "parallel_mutants_dispatched": total("parallel_mutants_dispatched_total"),
            "parallel_mutants_completed": total("parallel_mutants_completed_total"),
            "spans_recorded": self.collector.recorded,
            "spans_dropped": self.collector.dropped,
        }


def _by_label(registry: MetricsRegistry, name: str) -> dict:
    """Counter series of *name* flattened to {joined-labels: value}."""
    metric = registry.get(name)
    if metric is None:
        return {}
    snap = metric.snapshot()
    out = {}
    for entry in snap["values"]:
        key = ",".join(str(v) for v in entry["labels"].values()) or "total"
        out[key] = entry["value"]
    return out


#: The process-wide runtime every instrumented module imports.
OBS = Observability()


def enable() -> Observability:
    """Enable the global runtime; returns it."""
    return OBS.enable()


def disable() -> Observability:
    """Disable the global runtime; returns it."""
    return OBS.disable()


def enabled() -> bool:
    """Whether the global runtime is currently enabled."""
    return OBS.enabled


def span(name: str, **attributes: Any):
    """Module-level shorthand for ``OBS.span``."""
    return OBS.span(name, **attributes)
