"""Counters, gauges, fixed-bucket histograms, and their exporters.

A deliberately small subset of the Prometheus client data model, enough
to answer the perf questions the ROADMAP keeps asking: how many commands
were intercepted and with what verdicts, how often the rule-verdict cache
hits, how many collision segments each sweep touched, which sweep path
(batch or scalar) ran.

Metrics are registered get-or-create by name so instrumented modules can
hold module-level handles; :meth:`MetricsRegistry.reset` zeroes values
*in place* without invalidating those handles.  Export formats:

- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, escaped label values,
  cumulative ``_bucket{le=...}`` series for histograms);
- :meth:`MetricsRegistry.snapshot` — a JSON-safe nested dict for
  programmatic consumers (the CLI summary, the session report).

Concurrency: per-series updates (``inc``/``set``/``observe``) run no
``await`` and therefore execute atomically with respect to other asyncio
tasks on the same event loop — the guard-as-a-service front-end relies on
this, and the interleaved-session regression test pins it.  Registration
(``registry.counter(...)`` etc.) *is* guarded by a lock, because module
import and worker threads may race to get-or-create the same metric; the
hot update path stays lock-free.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like the Prometheus client).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value per the text exposition format."""
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    """Render a bucket upper bound for the ``le`` label."""
    if bound == float("inf"):
        return "+Inf"
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


class _Metric:
    """Shared name/help/label plumbing for the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _series(self, key: Tuple[str, ...]) -> str:
        if not key:
            return self.name
        pairs = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, key)
        )
        return f"{self.name}{{{pairs}}}"


class Counter(_Metric):
    """A monotonically increasing sum, keyed by label values."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add *amount* (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0.0 if never touched)."""
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labelled series."""
        return sum(self._values.values())

    def reset(self) -> None:
        self._values.clear()

    def expose(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} counter",
        ]
        for key in sorted(self._values):
            lines.append(f"{self._series(key)} {_format_value(self._values[key])}")
        if not self._values and not self.label_names:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        return {
            "help": self.help,
            "values": [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Gauge(_Metric):
    """A value that can go up and down (cache occupancy, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to *value*."""
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add *amount* (may be negative) to the labelled series."""
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0.0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def reset(self) -> None:
        self._values.clear()

    def expose(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} gauge",
        ]
        for key in sorted(self._values):
            lines.append(f"{self._series(key)} {_format_value(self._values[key])}")
        if not self._values and not self.label_names:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        return {
            "help": self.help,
            "values": [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Histogram(_Metric):
    """Fixed upper-bound buckets with the Prometheus ``le`` convention.

    An observation lands in every bucket whose upper bound is ``>=`` the
    value (cumulative exposition); a terminal ``+Inf`` bucket is always
    present, so ``_bucket{le="+Inf"}`` equals ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        #: Finite upper bounds; +Inf is implicit as the final bucket.
        self.buckets: Tuple[float, ...] = tuple(bounds)
        # Per labelled series: [per-finite-bucket counts..., inf count, sum, count]
        self._series_data: Dict[Tuple[str, ...], List[float]] = {}

    def _slot(self, key: Tuple[str, ...]) -> List[float]:
        data = self._series_data.get(key)
        if data is None:
            data = [0.0] * (len(self.buckets) + 3)
            self._series_data[key] = data
        return data

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        value = float(value)
        data = self._slot(self._key(labels))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                data[i] += 1.0
                break
        else:
            data[len(self.buckets)] += 1.0  # +Inf bucket only
        data[-2] += value  # sum
        data[-1] += 1.0  # count

    def counts(self, **labels: Any) -> Dict[str, float]:
        """Non-cumulative per-bucket counts plus sum/count for tests."""
        data = self._slot(self._key(labels))
        out = {_format_le(b): data[i] for i, b in enumerate(self.buckets)}
        out["+Inf"] = data[len(self.buckets)]
        out["sum"] = data[-2]
        out["count"] = data[-1]
        return out

    def reset(self) -> None:
        self._series_data.clear()

    def expose(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} histogram",
        ]
        for key in sorted(self._series_data):
            data = self._series_data[key]
            cumulative = 0.0
            for i, bound in enumerate(self.buckets):
                cumulative += data[i]
                lines.append(
                    f"{self._bucket_series(key, _format_le(bound))} "
                    f"{_format_value(cumulative)}"
                )
            cumulative += data[len(self.buckets)]
            lines.append(
                f"{self._bucket_series(key, '+Inf')} {_format_value(cumulative)}"
            )
            suffix_key = self._series(key)
            base, _, labelpart = suffix_key.partition("{")
            labelpart = "{" + labelpart if labelpart else ""
            lines.append(f"{base}_sum{labelpart} {_format_value(data[-2])}")
            lines.append(f"{base}_count{labelpart} {_format_value(data[-1])}")
        return lines

    def _bucket_series(self, key: Tuple[str, ...], le: str) -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, key)
        ]
        pairs.append(f'le="{le}"')
        return f"{self.name}_bucket{{{','.join(pairs)}}}"

    def snapshot(self) -> Dict[str, Any]:
        return {
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": dict(zip(self.label_names, key)),
                    "counts": data[: len(self.buckets) + 1],
                    "sum": data[-2],
                    "count": data[-1],
                }
                for key, data in sorted(self._series_data.items())
            ],
        }


MetricType = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home of every metric, with the two exporters."""

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricType] = {}
        # Registration is the one cross-thread entry point (module import
        # order, worker pools); series updates stay lock-free and rely on
        # event-loop atomicity instead.
        self._register_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(
        self, cls: type, name: str, help: str, labels: Sequence[str], **kwargs: Any
    ) -> MetricType:
        with self._register_lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if tuple(labels) != existing.label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """The counter named *name*, created on first use."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """The gauge named *name*, created on first use."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram named *name*, created on first use."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[MetricType]:
        """The metric named *name*, or ``None``."""
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every metric's values in place (handles stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe nested dict of every metric, grouped by kind."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        group = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[group[metric.kind]][name] = metric.snapshot()
        return out
