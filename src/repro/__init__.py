"""repro — a reproduction of RABIT (DSN 2024).

RABIT is a rule-based safety monitor for self-driving laboratories: it
intercepts every device command an experiment script issues, validates it
against a rulebase of device types, state variables, and
pre/postconditions, and stops the experiment before an unsafe command
executes.

Most users want one of the prebuilt labs plus the monitor wiring:

    >>> from repro.lab.hein import build_hein_deck, make_hein_rabit
    >>> deck = build_hein_deck()
    >>> rabit, proxies, trace = make_hein_rabit(deck)
    >>> proxies["dosing_device"].open_door()

Package map (bottom-up): :mod:`repro.geometry` and
:mod:`repro.kinematics` are the math substrates; :mod:`repro.devices`
models the lab hardware with ground-truth physics; :mod:`repro.core` is
RABIT itself; :mod:`repro.simulator` is the Extended Simulator;
:mod:`repro.lab`, :mod:`repro.testbed` are the concrete decks;
:mod:`repro.rad`, :mod:`repro.faults`, :mod:`repro.analysis` are the
evaluation machinery.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
