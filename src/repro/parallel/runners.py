"""Fault-injection adapters over the sharded engine.

Each workload maps onto :func:`repro.parallel.engine.run_sharded` with a
module-level task function (it must cross the ``fork`` boundary) and a
per-process warm-up that amortizes setup a sequential run pays once:

- :func:`run_monte_carlo_sharded` — tasks are ``(base_seed, index)``
  pairs; workers warm the reference workflow's line-id list once per
  process, then score mutants with the same pure
  :func:`~repro.faults.montecarlo.score_mutant` the sequential loop uses;
- :func:`run_campaign_sharded` — tasks are ``(config, bug)`` pairs in
  canonical configuration-major order (bug builders are module-level
  functions, so :class:`~repro.faults.campaign.InjectedBug` pickles by
  reference);
- :func:`run_bug_matrix` — the ablation shape: arbitrary
  ``(bug, config, exclude_rules)`` triples, e.g. the rule-knockout sweep.

Merging is positional, so every result list is in task order no matter
which worker finished first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.campaign import BugOutcome, CampaignResult, InjectedBug, run_bug
from repro.faults.montecarlo import (
    MonteCarloReport,
    MutantOutcome,
    reference_line_ids,
    score_mutant,
)
from repro.parallel.engine import run_sharded

__all__ = [
    "run_monte_carlo_sharded",
    "run_dag_fuzz_sharded",
    "run_campaign_sharded",
    "run_bug_matrix",
]

#: Per-process warm state, populated by the pool initializer (or lazily
#: on first task).  Forked workers inherit an empty dict and fill it once.
_WARM: Dict[str, object] = {}


def _warm_montecarlo_worker() -> None:
    """Build the reference line-id list once per worker process."""
    if "line_ids" not in _WARM:
        _WARM["line_ids"] = reference_line_ids()


def _montecarlo_task(task: Tuple[int, int]) -> MutantOutcome:
    base_seed, index = task
    _warm_montecarlo_worker()
    return score_mutant(index, base_seed, _WARM["line_ids"])


def run_monte_carlo_sharded(
    samples: int, seed: int, workers: Optional[int]
) -> MonteCarloReport:
    """The Monte Carlo sweep fanned over a process pool.

    Exact-merge guarantee: outcome *i* is :func:`score_mutant`\\ ``(i,
    seed, ...)`` regardless of worker count, chunk size, or completion
    order, so the report equals the sequential one byte for byte."""
    outcomes = run_sharded(
        [(seed, index) for index in range(samples)],
        _montecarlo_task,
        workers=workers,
        kind="montecarlo",
        initializer=_warm_montecarlo_worker,
    )
    return MonteCarloReport(outcomes=list(outcomes))


def _dag_task(task: Tuple[int, int]) -> MutantOutcome:
    base_seed, index = task
    from repro.workflow.fuzz import score_dag

    return score_dag(index, base_seed)


def run_dag_fuzz_sharded(
    samples: int, seed: int, workers: Optional[int]
) -> MonteCarloReport:
    """The random-DAG fuzz sweep fanned over a process pool.

    Same exact-merge guarantee as the mutant sweep: case *i* is
    :func:`repro.workflow.fuzz.score_dag`\\ ``(i, seed)`` regardless of
    worker count or completion order."""
    outcomes = run_sharded(
        [(seed, index) for index in range(samples)],
        _dag_task,
        workers=workers,
        kind="montecarlo",
    )
    return MonteCarloReport(outcomes=list(outcomes))


def _campaign_task(task: Tuple[str, InjectedBug]) -> BugOutcome:
    config, bug = task
    return run_bug(bug, config)


def run_campaign_sharded(
    configs: Sequence[str],
    bugs: Sequence[InjectedBug],
    workers: Optional[int],
) -> CampaignResult:
    """The bug campaign fanned over a process pool, merged in the
    sequential runner's canonical order (configuration-major)."""
    outcomes = run_sharded(
        [(config, bug) for config in configs for bug in bugs],
        _campaign_task,
        workers=workers,
        kind="campaign",
    )
    return CampaignResult(outcomes=list(outcomes))


def _knockout_task(task: Tuple[InjectedBug, str, Tuple[str, ...]]) -> BugOutcome:
    bug, config, exclude_rules = task
    return run_bug(bug, config, exclude_rules=exclude_rules)


def run_bug_matrix(
    specs: Sequence[Tuple[InjectedBug, str, Tuple[str, ...]]],
    workers: Optional[int] = 1,
) -> List[BugOutcome]:
    """Run arbitrary ``(bug, config, exclude_rules)`` triples, results in
    spec order — the ablation sweeps' fan-out point."""
    return run_sharded(
        list(specs),
        _knockout_task,
        workers=workers,
        kind="knockout",
    )
