"""Sharded process-pool execution with a deterministic merge.

The fault-injection workloads (Monte Carlo mutant sweeps, the 16-bug
campaign, rule-knockout ablations) are embarrassingly parallel: every
task builds its own deck and world, so tasks share nothing but code.
This engine fans an indexed task list out over a ``fork`` process pool
and reassembles the results **in canonical task order**, so callers see
output that is bit-for-bit independent of worker count, chunk size, and
completion order.  Determinism is the caller's half of the contract:
a task's result must be a pure function of the task value itself (the
Monte Carlo runner guarantees this by deriving each mutant's RNG from
``(base_seed, sample_index)`` — see :mod:`repro.faults.montecarlo`).

Mechanics:

- workers are forked **once** per run (``initializer`` warms per-process
  state such as the reference workflow's line ids) and tasks are handed
  out in chunks, so the per-task dispatch cost is a queue hop, not a
  process start;
- results stream back unordered (``imap_unordered``) and are merged by
  task index, so a slow shard never stalls collection;
- the engine falls back to an in-process sequential loop when the
  effective worker count is 1, the task list is trivial, or the platform
  lacks a ``fork`` start method (Windows / some macOS configurations —
  task functions close over module state that ``spawn`` would re-import
  cold, and correctness beats a cold-start pool);
- progress and timing flow through the existing :mod:`repro.obs`
  registry — counters for tasks dispatched/completed (completion labeled
  per worker pid) and a histogram of per-task wall seconds — recorded in
  the *parent* process so one scrape sees the whole run.
"""

from __future__ import annotations

import functools
import math
import multiprocessing
import os
import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.obs import OBS

__all__ = ["fork_pool_available", "resolve_workers", "run_sharded"]

_OBS_DISPATCHED = OBS.registry.counter(
    "parallel_mutants_dispatched_total",
    "Fault-injection tasks handed to the parallel engine.",
    labels=("kind",),
)
_OBS_COMPLETED = OBS.registry.counter(
    "parallel_mutants_completed_total",
    "Fault-injection tasks completed, by worker pid.",
    labels=("kind", "worker"),
)
_OBS_WALL = OBS.registry.histogram(
    "parallel_mutant_wall_seconds",
    "Per-task wall time as measured inside the worker.",
    labels=("kind",),
    buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0),
)
_OBS_POOL = OBS.registry.gauge(
    "parallel_pool_workers",
    "Worker processes used by the most recent parallel run.",
    labels=("kind",),
)


def fork_pool_available() -> bool:
    """Whether this platform offers the ``fork`` start method.

    The engine only uses ``fork`` pools: task functions rely on warm
    module state inherited from the parent, which ``spawn``/``forkserver``
    would rebuild from a cold import per worker."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive: exotic platforms
        return False


def resolve_workers(workers: Optional[int], task_count: int) -> int:
    """Effective worker count: ``None``/``0`` means one per CPU, and a
    pool never outnumbers its tasks."""
    if workers is None or workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 or None, got {workers}")
    return max(1, min(int(workers), max(task_count, 1)))


def _timed_call(
    task_fn: Callable[[Any], Any], indexed: Tuple[int, Any]
) -> Tuple[int, int, float, Any]:
    """Run one task; returns ``(index, worker_pid, wall_seconds, value)``."""
    index, task = indexed
    start = time.perf_counter()
    value = task_fn(task)
    return index, os.getpid(), time.perf_counter() - start, value


def _record_completion(kind: str, pid: int, wall_seconds: float) -> None:
    if not OBS.enabled:
        return
    _OBS_COMPLETED.inc(kind=kind, worker=str(pid))
    _OBS_WALL.observe(wall_seconds, kind=kind)


def run_sharded(
    tasks: Iterable[Any],
    task_fn: Callable[[Any], Any],
    *,
    workers: Optional[int] = 1,
    kind: str = "task",
    initializer: Optional[Callable[[], None]] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Map *task_fn* over *tasks*, results in task order.

    *task_fn* (and *initializer*) must be module-level callables and each
    task value picklable — they cross the process boundary.  *kind* labels
    the obs metrics.  *chunk_size* overrides the dispatch granularity
    (default: enough chunks for ~4 hand-outs per worker, balancing queue
    overhead against tail latency on uneven tasks).
    """
    task_list: Sequence[Any] = list(tasks)
    count = len(task_list)
    effective = resolve_workers(workers, count)
    if OBS.enabled:
        _OBS_DISPATCHED.inc(count, kind=kind)
        _OBS_POOL.set(effective, kind=kind)

    if effective <= 1 or count <= 1 or not fork_pool_available():
        if initializer is not None:
            initializer()
        values: List[Any] = []
        for indexed in enumerate(task_list):
            _, pid, wall, value = _timed_call(task_fn, indexed)
            _record_completion(kind, pid, wall)
            values.append(value)
        return values

    chunk = chunk_size or max(1, math.ceil(count / (effective * 4)))
    merged: dict = {}
    ctx = multiprocessing.get_context("fork")
    pool = ctx.Pool(processes=effective, initializer=initializer)
    try:
        bound = functools.partial(_timed_call, task_fn)
        for index, pid, wall, value in pool.imap_unordered(
            bound, enumerate(task_list), chunksize=chunk
        ):
            _record_completion(kind, pid, wall)
            merged[index] = value
        pool.close()
        pool.join()
    finally:
        pool.terminate()
    return [merged[i] for i in range(count)]
