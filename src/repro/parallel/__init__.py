"""``repro.parallel`` — sharded fault-injection execution.

A process-pool engine (:mod:`repro.parallel.engine`) plus workload
adapters (:mod:`repro.parallel.runners`) that fan the embarrassingly
parallel fault-injection studies — Monte Carlo mutant sweeps, the 16-bug
campaign, rule-knockout ablations — across ``fork`` workers with
deterministic seed partitioning and an exact positional merge: results
are identical to the sequential path for every worker count.

Callers normally reach this through ``workers=`` on
:func:`repro.faults.montecarlo.run_monte_carlo` and
:func:`repro.faults.campaign.run_campaign` (or the CLI's ``--workers``),
not by importing it directly.  This package imports :mod:`repro.faults`
and :mod:`repro.obs`; the faults runners import it lazily, keeping the
dependency cycle out of module import time.
"""

from repro.parallel.engine import fork_pool_available, resolve_workers, run_sharded
from repro.parallel.runners import (
    run_bug_matrix,
    run_campaign_sharded,
    run_monte_carlo_sharded,
)

__all__ = [
    "fork_pool_available",
    "resolve_workers",
    "run_sharded",
    "run_bug_matrix",
    "run_campaign_sharded",
    "run_monte_carlo_sharded",
]
