#!/usr/bin/env python3
"""Replay the §IV naive-programmer campaign: 16 bugs x 3 RABIT revisions.

Prints each bug's outcome per configuration and the paper's headline
numbers: 8/16 (50 %) for initial RABIT, 12/16 (75 %) after the
modifications, 13/16 (81 %) with the Extended Simulator — plus Table V.

Run:  python examples/bug_campaign.py
"""

from repro.analysis.metrics import campaign_stats, severity_rows
from repro.analysis.report import format_severity_table, format_table
from repro.faults.campaign import run_campaign


def main() -> None:
    print("Running the 16-bug campaign under all three configurations")
    print("(each bug runs on a fresh simulated testbed)...\n")
    result = run_campaign()

    rows = []
    for bug_id in [o.bug.bug_id for o in result.outcomes if o.config == "initial"]:
        per_config = {
            o.config: o for o in result.outcomes if o.bug.bug_id == bug_id
        }
        bug = per_config["initial"].bug
        rows.append(
            (
                bug_id,
                bug.severity.value,
                "yes" if per_config["initial"].detected else "no",
                "yes" if per_config["modified"].detected else "no",
                "yes" if per_config["modified_es"].detected else "no",
                bug.title[:58],
            )
        )
    print(
        format_table(
            ["bug", "severity", "initial", "modified", "+ES", "description"],
            rows,
            title="Per-bug detection",
        )
    )

    print()
    for config in ("initial", "modified", "modified_es"):
        stats = campaign_stats(result, config)
        print(
            f"{config:12s}: {stats.detected}/{stats.total} detected "
            f"({stats.percent} %)"
        )

    print()
    print(format_severity_table(severity_rows(result, "modified")))

    mismatches = result.mismatches()
    print(
        f"\nOutcomes matching the paper: "
        f"{len(result.outcomes) - len(mismatches)}/{len(result.outcomes)}"
    )


if __name__ == "__main__":
    main()
