#!/usr/bin/env python3
"""The three-stage deployment framework (§II, Table I) as a process.

A lab engineer edits a workflow (here: a bad z coordinate in the
location table, the Bug-D edit class) and climbs it through RABIT's
stages: simulation first, then the low-fidelity testbed analog, then
production.  The defect is caught at the simulator stage — before
anything physical could break — while the safe baseline is promoted all
the way.

Run:  python examples/three_stage_validation.py
"""

from repro.lab.pipeline import ThreeStageValidator
from repro.lab.workflows import build_solubility_workflow


def bad_edit(deck) -> None:
    """The candidate change under test: grid pickup z 0.12 -> 0.02."""
    deck.world.locations.get("grid_a1").set_coord("ur3e", [0.30, -0.05, 0.02])


def main() -> None:
    validator = ThreeStageValidator()

    print("Climbing the SAFE workflow through the stages:")
    safe = validator.validate(build_solubility_workflow)
    for outcome in safe.outcomes:
        print(f"  {outcome.describe()}")
    print(f"  promoted to production: {safe.promoted_to_production}\n")

    print("Climbing the DEFECTIVE edit (grid pickup z -> 0.02):")
    defective = validator.validate(build_solubility_workflow, mutate_deck=bad_edit)
    for outcome in defective.outcomes:
        print(f"  {outcome.describe()}")
    print(
        f"  rejected at: {defective.rejected_at.value}, "
        f"risk exposure: {defective.total_risk_exposure:g} "
        f"(zero — nothing physical ever ran the bad move)"
    )


if __name__ == "__main__":
    main()
