#!/usr/bin/env python3
"""Multi-arm safety: Bug B, and the time/space multiplexing workarounds.

Reproduces §IV category 2: two testbed arms in separate coordinate
frames collide when a buggy script parks one next to the other — RABIT
cannot see it (no common frame of reference) — and then shows both of
the paper's preventive policies stopping the same bug, plus the
calibration experiment explaining *why* a common frame was abandoned
(~3 cm of irreducible error).

Run:  python examples/multi_robot.py
"""

from repro.faults.campaign import CAMPAIGN_BUGS, _prepare_deck
from repro.faults.mutation import apply_mutations
from repro.lab.workflows import build_testbed_workflow, run_workflow
from repro.testbed.calibration import run_calibration_experiment
from repro.testbed.deck import (
    attach_space_multiplexing,
    attach_time_multiplexing,
    make_testbed_rabit,
)

BUG_B = next(bug for bug in CAMPAIGN_BUGS if bug.bug_id == "MH4")


def run_bug_b(attach=None) -> None:
    deck = _prepare_deck("fig5")
    rabit, proxies, _ = make_testbed_rabit(deck)
    if attach is not None:
        attach(rabit, deck)
    lines = apply_mutations(
        build_testbed_workflow(proxies), deck.world, BUG_B.mutations(proxies)
    )
    result = run_workflow(lines)
    label = attach.__name__ if attach else "plain RABIT"
    if result.stopped_by_rabit:
        print(f"  {label}: PREVENTED — {result.alert}")
    else:
        collisions = [d for d in deck.world.damage_log if d.kind == "arm_collision"]
        print(
            f"  {label}: NOT DETECTED — ground truth recorded "
            f"{len(collisions)} arm collision(s)"
        )


def main() -> None:
    print("Why no common frame?  The calibration experiment:")
    calibration = run_calibration_experiment()
    print(
        f"  fitted Ned2->ViperX transform leaves a mean residual of "
        f"{calibration.mean_error * 100:.1f} cm "
        f"(max {calibration.max_error * 100:.1f} cm) — the paper measured ~3 cm\n"
    )

    print("Bug B (Ned2 commanded next to the grid while ViperX is parked there):")
    run_bug_b()  # plain RABIT: misses it, arms collide
    run_bug_b(attach_time_multiplexing)
    run_bug_b(attach_space_multiplexing)

    print(
        "\nBoth multiplexing policies are ordinary RABIT preconditions/"
        "obstacles — formalized versions of the lab's safety practice."
    )


if __name__ == "__main__":
    main()
