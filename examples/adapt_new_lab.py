#!/usr/bin/env python3
"""Adapting RABIT to a new lab: the Berlinguette deck (§V-B) end-to-end.

Shows the full adaptation path the paper describes for a second
self-driving lab: categorize every device into the four RABIT types,
author the JSON configuration (validated by the schema checker the pilot
study wished for), run a spray-coating workflow under the *general*
rulebase only, and mine the lab's own traces for candidate rules.

Run:  python examples/adapt_new_lab.py
"""

import json

from repro.analysis.report import format_table
from repro.core.config import parse_config_text, validate_config
from repro.lab.berlinguette import (
    build_berlinguette_deck,
    build_spray_coating_workflow,
    make_berlinguette_rabit,
)
from repro.lab.workflows import run_workflow
from repro.rad.generator import generate_combined
from repro.rad.mining import mine_and_classify, mine_door_rules


def main() -> None:
    deck = build_berlinguette_deck()

    # 1. Device categorization — every device fits the four types.
    print(
        format_table(
            ["device", "RABIT type"],
            sorted(deck.categorization().items()),
            title="Berlinguette device categorization (the §V-B mapping)",
        )
    )

    # 2. The JSON configuration round-trips through the validator.
    document = parse_config_text(json.dumps(deck.config))
    issues = validate_config(document)
    errors = [i for i in issues if i.severity == "error"]
    print(f"\nconfig validation: {len(errors)} errors, {len(issues)} issues total")

    # 3. A spray-coating run under the unchanged *general* rulebase.
    rabit, proxies, _ = make_berlinguette_rabit(deck)
    result = run_workflow(build_spray_coating_workflow(proxies))
    print(
        f"spray-coating workflow: completed={result.completed}, "
        f"alerts={rabit.alert_count} (general rules only, no Hein customs)"
    )

    # 4. Mine both labs' traces; the Hein-only invariant shows up custom.
    print("\nMining traces from both labs (takes a few seconds)...")
    dataset = generate_combined(hein_sessions=5, berlinguette_sessions=4)
    rules = mine_and_classify(dataset)
    custom = [r for r in rules if r.scope == "custom" and r.lab == "hein"]
    solid_before_liquid = [
        r
        for r in custom
        if r.antecedent[0] == "start_dosing" and r.consequent[0] == "dose_liquid"
    ]
    print(f"  mined {len(rules)} classified rules; {len(custom)} custom to Hein")
    for rule in solid_before_liquid:
        print(f"  headline custom rule recovered: {rule.describe()}")
    for door_rule in mine_door_rules(dataset):
        print(f"  door invariant: {door_rule.describe()}")


if __name__ == "__main__":
    main()
