#!/usr/bin/env python3
"""Quickstart: put RABIT between an experiment script and a lab deck.

Builds the Hein Lab production deck, attaches the RABIT monitor through
the tracing proxies, runs a safe command sequence, and then shows RABIT
vetoing an unsafe one (driving the arm into the dosing device while its
door is closed — Table III rule 1).

Run:  python examples/quickstart.py
"""

from repro.core.errors import SafetyViolation
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.simulator.render import render_topdown


def main() -> None:
    # 1. Build the deck (ground truth) and wire RABIT onto it.  The JSON
    #    configuration a researcher would author is deck.config; it is
    #    validated and loaded through the same path the pilot study used.
    deck = build_hein_deck()
    rabit, proxies, trace = make_hein_rabit(deck)
    ur3e = proxies["ur3e"]
    dosing = proxies["dosing_device"]

    print("The deck, as RABIT's configuration describes it:")
    print(render_topdown(deck.model, "ur3e", robot=deck.ur3e, width=56, height=20))
    print()

    # 2. A safe prefix: open the door, fetch the vial, put it inside.
    print("Running a safe command sequence...")
    dosing.open_door()
    ur3e.move_to_location("grid_a1_safe")
    ur3e.pick_up_vial("grid_a1")
    ur3e.move_to_location("grid_a1_safe")
    ur3e.move_to_location("dosing_approach")
    ur3e.place_vial("dosing_interior")
    ur3e.move_to_location("dosing_approach")
    dosing.close_door()
    print(f"  ok - {len(trace)} commands executed, {rabit.alert_count} alerts")

    # 3. Now the §I footnote bug: try to reach back in without reopening
    #    the door.  RABIT stops the command *before* it executes.
    print("Attempting to enter the dosing device with its door closed...")
    try:
        ur3e.move_to_location("dosing_interior")
    except SafetyViolation as stop:
        print(f"  RABIT stopped the experiment: {stop.alert}")

    # 4. Nothing was damaged, because the command never reached the arm.
    print(f"Ground-truth damage events: {len(deck.world.damage_log)}")
    print("\nCommand trace:")
    for record in trace[-5:]:
        print(f"  {record}")


if __name__ == "__main__":
    main()
