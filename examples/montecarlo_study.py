#!/usr/bin/env python3
"""The large-bug-dataset study the paper could not run (§IV).

"without exhaustive testing (which requires generating large bug
datasets — a challenging task in itself), we do not know if these
numbers are representative" — on a simulated deck, we can generate that
dataset.  Samples random naive-programmer edits of the Fig. 5 workflow,
scores modified RABIT against unmonitored ground truth, and prints the
confusion matrix.

Run:  python examples/montecarlo_study.py          (~1 minute, 10 mutants)
      python examples/montecarlo_study.py 40       (bigger sample)
      python examples/montecarlo_study.py 40 4     (same sweep, 4 workers)
"""

import sys

from repro.faults.montecarlo import run_monte_carlo


def main(samples: int = 10, workers: int = 1) -> None:
    print(f"Sampling {samples} random single-edit mutants of the Fig. 5 workflow")
    print("(each runs twice: unmonitored ground truth, then under RABIT)...\n")
    report = run_monte_carlo(samples=samples, seed=2024, workers=workers)

    for outcome in report.outcomes:
        marker = {
            "true_positive": "DETECTED ",
            "false_negative": "MISSED   ",
            "true_negative": "benign   ",
            "false_positive": "FALSE+!  ",
        }[outcome.classification]
        damage = f"  [{', '.join(outcome.damage_kinds)}]" if outcome.damage_kinds else ""
        print(f"  {marker} {outcome.description}{damage}")

    print()
    print(f"harmful mutants:       {report.harmful_total}/{len(report.outcomes)}")
    print(
        f"estimated detection:   {report.detection_rate * 100:.0f} % "
        f"(the 16-bug campaign measured 75 % under the same revision)"
    )
    print(
        f"false-alarm rate:      {report.false_alarm_rate * 100:.0f} % "
        f"(the paper reports zero false positives)"
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 10,
        int(sys.argv[2]) if len(sys.argv) > 2 else 1,
    )
