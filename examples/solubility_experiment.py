#!/usr/bin/env python3
"""The automated solubility measurement of Fig. 1(b), under RABIT.

Runs the full production workflow — solid dosing behind the glass door,
solvent dosing on the hotplate, the dissolution loop, and the
centrifugation leg that exercises the Hein Lab's custom rules — and
prints the resulting chemistry and the (empty) alert and damage logs.

Run:  python examples/solubility_experiment.py
"""

from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import build_solubility_workflow, run_workflow


def main() -> None:
    deck = build_hein_deck()
    rabit, proxies, trace = make_hein_rabit(deck)

    workflow = build_solubility_workflow(
        proxies,
        amount_mg=5.0,
        initial_solvent_ml=4.0,
        temperature=60.0,
        dissolution_rounds=2,
        centrifuge_rpm=3000.0,
    )
    print(f"Executing {len(workflow)} script lines...")
    result = run_workflow(workflow)

    print(f"completed: {result.completed}")
    print(f"RABIT alerts: {rabit.alert_count}  (the paper: zero false positives)")
    print(f"damage events: {len(deck.world.damage_log)}")

    vial = deck.vials["vial_1"]
    print(
        f"vial_1: {vial.contents.solid_mg:g} mg solid, "
        f"{vial.contents.liquid_ml:g} mL solvent, resting at {vial.resting_at}, "
        f"stoppered: {vial.stoppered}"
    )

    print("\nLast few traced commands:")
    for record in trace[-6:]:
        print(f"  {record}")


if __name__ == "__main__":
    main()
