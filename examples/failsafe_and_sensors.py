#!/usr/bin/env python3
"""The extension features: fail-safe recovery and proximity sensors.

Demonstrates the two behaviours the paper recommends beyond its deployed
system:

1. §II-B — "a fail-safe scenario may be recommended instead" of a bare
   preemptive stop: after RABIT halts an experiment mid-carry, the
   :class:`FailSafePolicy` sets the held vial down safely and retracts
   the arm to its sleep pose, every recovery command still guarded.
2. §V-B — "sensors, which could be treated as a new device class":
   a proximity sensor watches a zone; the runtime-registered S1 rule
   vetoes arm motion into it while a person is present.

Run:  python examples/failsafe_and_sensors.py
"""

from repro.core.errors import SafetyViolation
from repro.core.failsafe import FailSafePolicy
from repro.core.sensor_rule import make_proximity_rule
from repro.devices.sensor import ProximitySensor
from repro.geometry.shapes import Cuboid
from repro.lab.hein import build_hein_deck, make_hein_rabit


def failsafe_demo() -> None:
    print("--- Fail-safe recovery (§II-B) ---")
    deck = build_hein_deck()
    rabit, proxies, _ = make_hein_rabit(deck)
    ur3e = proxies["ur3e"]

    ur3e.move_to_location("grid_a1_safe")
    ur3e.pick_up_vial("grid_a1")
    ur3e.move_to_location("grid_a1_safe")
    print("arm is now carrying vial_1...")

    try:
        ur3e.move_to_location("dosing_interior")  # door closed: G1 stop
    except SafetyViolation as stop:
        print(f"RABIT stopped the run: {stop.alert}")
        policy = FailSafePolicy(
            proxies, safe_drop_locations={"ur3e": ("grid_a1_safe", "grid_a1")}
        )
        report = policy.recover(stop.alert)
        for action, outcome in report.steps:
            print(f"  recovery: {action} -> {outcome}")
        vial = deck.vials["vial_1"]
        print(
            f"vial_1 back at {vial.resting_at}, intact: {not vial.broken}; "
            f"arm parked in sleep pose.\n"
        )


def sensor_demo() -> None:
    print("--- Proximity sensor as a fifth device class (§V-B) ---")
    deck = build_hein_deck()
    rabit, proxies, _ = make_hein_rabit(deck)
    sensor = ProximitySensor(
        "curtain", zones={"ur3e": Cuboid((0.2, -0.2, 0.0), (0.5, 0.2, 0.5), name="zone")}
    )
    deck.world.add_device(sensor)
    rabit.devices["curtain"] = sensor
    rabit.rulebase.add(
        make_proximity_rule({"curtain": sensor}, robots={"ur3e": deck.ur3e})
    )
    rabit.initialize()

    proxies["ur3e"].move_to_location("grid_a1_safe")
    print("zone empty: move into the shared zone allowed")

    sensor.person_enters()
    try:
        proxies["ur3e"].move_to_location("grid_a1")
    except SafetyViolation as stop:
        print(f"person in the zone: {stop.alert}")
    sensor.person_leaves()
    proxies["ur3e"].move_to_location("grid_a1_safe")
    print("person left: motion resumes")


if __name__ == "__main__":
    failsafe_demo()
    sensor_demo()
