# Convenience targets for the RABIT reproduction.

.PHONY: install lint test bench fk-bench examples campaign latency metrics montecarlo replay check clean

install:
	pip install -e .[dev]

# Byte-compiles everything unconditionally; runs ruff when it is on PATH
# (CI installs it — the runtime container deliberately has no extra deps).
lint:
	python -m compileall -q src tests benchmarks examples
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipped style checks (compileall ran)"; \
	fi

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

fk-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_fk_throughput.py

examples:
	python examples/quickstart.py
	python examples/solubility_experiment.py
	python examples/multi_robot.py
	python examples/three_stage_validation.py
	python examples/failsafe_and_sensors.py

campaign:
	python -m repro campaign

latency:
	python -m repro latency

metrics:
	python -m repro metrics

montecarlo:
	python -m repro montecarlo --samples 40 --workers 0

# Replay the committed golden traces: any byte-level divergence in the
# verdict/state-delta stream fails the target (and prints the first
# diff).
replay:
	PYTHONPATH=src python -m repro replay --diff tests/fixtures/traces/*.trace.jsonl

# The CI gate: full tier-1 suite, the scalar-vs-batch / parallel-vs-
# sequential differential and cache-parity harnesses explicitly, the
# golden-trace replay gate, and a latency smoke run proving the §II-C
# virtual-clock figures still reproduce.
check:
	PYTHONPATH=src python -m pytest -x -q tests/
	PYTHONPATH=src python -m pytest -q tests/test_collision_differential.py tests/test_kinematics_differential.py tests/test_stateful_no_false_positives.py tests/test_obs_differential.py tests/test_parallel_differential.py
	$(MAKE) replay
	PYTHONPATH=src python -m pytest -q benchmarks/test_collision_throughput.py benchmarks/test_fk_throughput.py benchmarks/test_latency_overhead.py benchmarks/test_obs_overhead.py benchmarks/test_montecarlo_throughput.py

clean:
	rm -rf .pytest_cache benchmarks/results __pycache__
	find . -name "__pycache__" -type d -exec rm -rf {} +
